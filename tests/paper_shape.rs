//! The paper's headline result shapes, asserted at calibrated scale
//! (paper-default 12+12 cluster, 64 KiB strips, the Fig. 11 setup
//! scaled from GB to MiB per DESIGN.md).

use das::prelude::*;
use das::runtime::sweep::figure_workload;

/// One modest calibrated-scale run per scheme (8 MiB keeps debug-mode
/// CI fast; EXPERIMENTS.md records the full 24–60 MiB sweeps).
fn fig11_runs(kernel: &str) -> (RunReport, RunReport, RunReport) {
    let cfg = ClusterConfig::paper_default();
    let input = figure_workload(8, 2012);
    let k = kernel_by_name(kernel).unwrap();
    (
        run_scheme(&cfg, SchemeKind::Ts, k.as_ref(), &input),
        run_scheme(&cfg, SchemeKind::Nas, k.as_ref(), &input),
        run_scheme(&cfg, SchemeKind::Das, k.as_ref(), &input),
    )
}

#[test]
fn fig11_ordering_das_fastest_nas_slowest() {
    for kernel in ["flow-routing", "flow-accumulation", "gaussian-filter"] {
        let (ts, nas, das) = fig11_runs(kernel);
        assert!(
            das.exec_time < ts.exec_time && ts.exec_time < nas.exec_time,
            "{kernel}: expected DAS < TS < NAS, got DAS={} TS={} NAS={}",
            das.exec_time,
            ts.exec_time,
            nas.exec_time
        );
    }
}

#[test]
fn fig11_magnitudes_roughly_match_paper() {
    // Paper: DAS ≥ ~30% over TS and ~60% over NAS. Accept a band
    // around those factors — the shape, not the third digit.
    let (ts, nas, das) = fig11_runs("flow-routing");
    let das_vs_ts = 1.0 - das.exec_secs() / ts.exec_secs();
    let das_vs_nas = 1.0 - das.exec_secs() / nas.exec_secs();
    assert!(
        (0.15..=0.55).contains(&das_vs_ts),
        "DAS improvement over TS = {das_vs_ts:.2}, expected ≈ 0.30"
    );
    assert!(
        (0.40..=0.75).contains(&das_vs_nas),
        "DAS improvement over NAS = {das_vs_nas:.2}, expected ≈ 0.60"
    );
}

#[test]
fn fig14_bandwidth_ordering_and_gain() {
    // Paper Fig. 14: DAS has the highest sustained bandwidth, NAS the
    // lowest. (The paper quotes "nearly one fold" over TS, which is
    // arithmetically inconsistent with its own Fig. 11 time gain of
    // ~30%; EXPERIMENTS.md discusses this. We assert the ordering and
    // a solid gain.)
    let (ts, nas, das) = fig11_runs("flow-routing");
    let ratio = das.sustained_bandwidth_mib() / ts.sustained_bandwidth_mib();
    assert!(
        (1.15..=2.7).contains(&ratio),
        "DAS/TS bandwidth ratio = {ratio:.2}, expected well above 1"
    );
    assert!(nas.sustained_bandwidth_mib() < ts.sustained_bandwidth_mib());
}

#[test]
fn fig12_das_scales_most_gently_with_data_size() {
    // Growing the data must cost DAS the least *additional* time (it
    // pays disk bandwidth where the others pay network and service),
    // and DAS must also grow no faster than TS in relative terms.
    let cfg = ClusterConfig::paper_default();
    let run_pair = |scheme| {
        let points = size_sweep(&cfg, scheme, "flow-routing", &[4, 8], 99);
        (points[0].report.exec_secs(), points[1].report.exec_secs())
    };
    let (ts0, ts1) = run_pair(SchemeKind::Ts);
    let (nas0, nas1) = run_pair(SchemeKind::Nas);
    let (das0, das1) = run_pair(SchemeKind::Das);
    let (d_ts, d_nas, d_das) = (ts1 - ts0, nas1 - nas0, das1 - das0);
    assert!(
        d_das <= d_ts && d_das <= d_nas,
        "DAS Δt {d_das:.4}s must be the smallest (TS {d_ts:.4}s, NAS {d_nas:.4}s)"
    );
    assert!(
        das1 / das0 <= ts1 / ts0 + 1e-9,
        "DAS relative growth {:.2} must not exceed TS {:.2}",
        das1 / das0,
        ts1 / ts0
    );
}

#[test]
fn fig13_both_ts_and_das_scale_with_nodes() {
    // Paper Fig. 13: both schemes get faster as the cluster grows.
    let cfg = ClusterConfig::paper_default();
    for scheme in [SchemeKind::Ts, SchemeKind::Das] {
        let points = node_sweep(&cfg, scheme, "flow-routing", 8, &[8, 24], 5);
        assert!(
            points[1].report.exec_secs() < points[0].report.exec_secs(),
            "{}: 24 nodes must beat 8 nodes",
            scheme.name()
        );
    }
}
