//! End-to-end tests of the Fig. 3 decision workflow: offload
//! acceptance, the dynamic rejection fallback, and the successive-
//! operation layout reuse the paper motivates in Section I.

use das::kernels::{workload, ElemSource, Kernel};
use das::prelude::*;

/// A pathological operator: long vertical strides that no single-strip
/// replication can cover and whose strip-fetch cost dwarfs normal I/O.
#[derive(Debug, Clone, Copy)]
struct WideStride;

impl Kernel for WideStride {
    fn name(&self) -> &'static str {
        "wide-stride"
    }

    fn dependence_offsets(&self, img_width: u64) -> Vec<i64> {
        let w = img_width as i64;
        vec![-33 * w, -17 * w, -9 * w, 9 * w, 17 * w, 33 * w]
    }

    fn cost_per_element(&self) -> f64 {
        50.0
    }

    fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
        let mut acc = src.get(row as i64, col as i64).expect("center in bounds");
        for dr in [-33i64, -17, -9, 9, 17, 33] {
            if let Some(v) = src.get(row as i64 + dr, col as i64) {
                acc += v;
            }
        }
        acc
    }
}

#[test]
fn rejected_offload_falls_back_to_traditional_service() {
    // Small strips (one 64-element row each) make the wide strides
    // unsatisfiable and the per-strip fetching ruinous, so the Fig. 3
    // workflow must reject and serve as normal I/O.
    let mut cfg = ClusterConfig::small_test();
    cfg.strip_size = 64 * 4;
    cfg.storage_nodes = 8;
    cfg.compute_nodes = 8;
    let input = workload::fbm_dem(64, 2048, 77);

    let report = run_scheme(&cfg, SchemeKind::Das, &WideStride, &input);
    let das = report.das.as_ref().expect("outcome recorded");
    assert!(!das.offloaded, "wide strides must be rejected");
    // Fallback means a TS-shaped data path: client traffic, no
    // server-to-server dependence storm.
    assert!(report.bytes.net_client_server >= 2 * input.byte_len());
    assert_eq!(report.bytes.net_server_server, 0);
    // And the output is still correct.
    assert_eq!(report.output_fingerprint, WideStride.apply(&input).fingerprint());
}

#[test]
fn accepted_offload_keeps_work_on_servers() {
    // Width 256 → the small_test 2 KiB strips hold two rows, so the
    // improved layout fully covers the stencil and the offload sticks.
    let cfg = ClusterConfig::small_test();
    let input = workload::fbm_dem(256, 1024, 78);
    let report = run_scheme(&cfg, SchemeKind::Das, &GaussianFilter, &input);
    let das = report.das.as_ref().unwrap();
    assert!(das.offloaded);
    assert_eq!(report.bytes.net_client_server, 0);
}

#[test]
fn successive_operations_reconfigure_once_and_reuse() {
    // The paper's Section I pipeline: flow-accumulation always follows
    // flow-routing with the same 8-neighbor pattern. The first request
    // (successive=true) pays one redistribution; the second finds the
    // layout already suitable and moves nothing.
    let width = 256u64;
    let dem = workload::fbm_dem(width, 512, 5);
    let mut pfs = PfsCluster::new(6);
    let file = pfs
        .create("dem", &dem.to_bytes(), StripeSpec::new(8 * 1024), LayoutPolicy::RoundRobin)
        .unwrap();

    let client = ActiveStorageClient::with_builtin_features();
    let opts = RequestOptions { img_width: width, successive: true, ..Default::default() };

    let (d1, t1) = client.decide_and_prepare(&mut pfs, file, "flow-routing", &opts).unwrap();
    assert!(d1.is_offload());
    assert!(t1.bytes_moved() > 0, "first request reconfigures");
    pfs.verify(file).unwrap();

    let (d2, t2) = client
        .decide_and_prepare(&mut pfs, file, "flow-accumulation", &opts)
        .unwrap();
    assert!(d2.is_offload());
    assert_eq!(t2.bytes_moved(), 0, "second request reuses the layout");

    // After reconfiguration the file still reads back identically.
    let (bytes, _) = pfs.read(file, 0, dem.byte_len()).unwrap();
    assert_eq!(bytes, dem.to_bytes());
}

#[test]
fn registry_loaded_from_descriptor_files_drives_decisions() {
    // Descriptors can come from user-provided files in either format;
    // a kernel registered via XML must decide identically to the
    // built-in text record.
    let width = 128u64;
    let dem = workload::fbm_dem(width, 256, 4);
    let mut pfs = PfsCluster::new(4);
    let file = pfs
        .create("img", &dem.to_bytes(), StripeSpec::new(4 * 1024), LayoutPolicy::RoundRobin)
        .unwrap();

    let mut custom = ActiveStorageClient::new(FeatureRegistry::new());
    custom
        .registry_mut()
        .load_xml(
            "<kernel><name>my-filter</name>\
             <dependence>-imgWidth+1, -imgWidth, -imgWidth-1, -1, 1, \
             imgWidth-1, imgWidth, imgWidth+1</dependence></kernel>",
        )
        .unwrap();

    let builtin = ActiveStorageClient::with_builtin_features();
    let opts = RequestOptions { img_width: width, ..Default::default() };

    let d_custom = custom.decide(&pfs, file, "my-filter", &opts).unwrap();
    let d_builtin = builtin.decide(&pfs, file, "gaussian-filter", &opts).unwrap();
    assert_eq!(d_custom.is_offload(), d_builtin.is_offload());
    assert_eq!(
        d_custom.predicted().nas.bytes,
        d_builtin.predicted().nas.bytes,
        "same pattern, same prediction"
    );
}

#[test]
fn planned_layouts_keep_servers_balanced() {
    // The planner promises the busiest server stays within ~15% of the
    // mean; verify against the file system's own balance report for a
    // range of file sizes (including awkward strip counts).
    use das_core::{plan_distribution, PlanOptions};
    let width = 2048u64;
    let strip = 64 * 1024usize;
    for rows in [1024u64, 1344, 2048, 3072] {
        let dem = workload::fbm_dem(width, rows, 3);
        let offsets = FlowRouting.dependence_offsets(width);
        let plan = plan_distribution(
            &offsets,
            4,
            strip as u64,
            12,
            dem.byte_len(),
            PlanOptions::default(),
        );
        let mut pfs = PfsCluster::new(12);
        let f = pfs
            .create("dem", &dem.to_bytes(), StripeSpec::new(strip), plan.policy)
            .unwrap();
        let report = pfs.balance_report(f).unwrap();
        assert!(
            report.imbalance() <= 1.16,
            "{rows} rows: imbalance {:.3} with {:?}",
            report.imbalance(),
            plan.policy
        );
        if let LayoutPolicy::GroupedReplicated { group } = plan.policy {
            let expected = 1.0 + 2.0 / group as f64;
            assert!(
                (report.storage_factor() - expected).abs() < 0.05,
                "{rows} rows: storage factor {:.3} vs 1 + 2/r = {expected:.3}",
                report.storage_factor()
            );
        }
    }
}

#[test]
fn decision_quality_predictor_picks_the_faster_side() {
    // Sweep stride lengths; wherever the predictor says "reject",
    // actually simulating both sides must show TS at least as fast as
    // a forced naive offload would have been — and vice versa. Here we
    // check the reject side (the offload side is covered by
    // fig11_ordering): a rejected stride served NAS-style must indeed
    // lose to TS.
    #[derive(Debug, Clone, Copy)]
    struct Stride(i64);
    impl Kernel for Stride {
        fn name(&self) -> &'static str {
            "stride"
        }
        fn dependence_offsets(&self, img_width: u64) -> Vec<i64> {
            let w = img_width as i64;
            vec![-self.0 * w, self.0 * w]
        }
        fn cost_per_element(&self) -> f64 {
            50.0
        }
        fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
            let mut acc = src.get(row as i64, col as i64).expect("center");
            for dr in [-self.0, self.0] {
                if let Some(v) = src.get(row as i64 + dr, col as i64) {
                    acc += v;
                }
            }
            acc
        }
    }

    let mut cfg = ClusterConfig::small_test();
    cfg.strip_size = 64 * 4; // one-row strips: strides cross strips
    let input = workload::fbm_dem(64, 1024, 11);

    for stride in [9i64, 21, 33] {
        let kernel = Stride(stride);
        let das = run_scheme(&cfg, SchemeKind::Das, &kernel, &input);
        let outcome = das.das.as_ref().unwrap();
        if !outcome.offloaded {
            let nas = run_scheme(&cfg, SchemeKind::Nas, &kernel, &input);
            let ts = run_scheme(&cfg, SchemeKind::Ts, &kernel, &input);
            assert!(
                ts.exec_time <= nas.exec_time,
                "stride {stride}: predictor rejected but NAS ({}) beat TS ({})",
                nas.exec_time,
                ts.exec_time
            );
        }
    }
}
