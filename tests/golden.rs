//! Golden regression pins: exact fingerprints and simulated times for
//! fixed seeds. Everything in this workspace is deterministic — same
//! seed, same bytes, same schedule — so any change to these values
//! flags a behavioural change (intended or not) that EXPERIMENTS.md
//! numbers would silently inherit. Update the constants deliberately,
//! never to "make CI green".

use das::kernels::workload;
use das::prelude::*;

#[test]
fn workload_generators_are_pinned() {
    assert_eq!(workload::fbm_dem(64, 96, 42).fingerprint(), 0xbd73d0c5f36b19ca);
    // white_noise / diamond_square draw from rand's StdRng; their pins
    // moved (deliberately) when the workspace switched to the in-tree
    // SplitMix64 `rand` shim (shims/README.md). fbm_dem is hash-based
    // and its pin is backend-independent.
    assert_eq!(workload::white_noise(32, 32, 7).fingerprint(), 0xe642b3a0f5580664);
    assert_eq!(workload::diamond_square(5, 9, 0.6).fingerprint(), 0xbc1e4ba0e2e00cf4);
}

#[test]
fn kernel_outputs_are_pinned() {
    let dem = workload::fbm_dem(64, 96, 42);
    assert_eq!(FlowRouting.apply(&dem).fingerprint(), 0x8ec04a8177d42925);
    assert_eq!(GaussianFilter.apply(&dem).fingerprint(), 0x531ffb4aefad54b8);
}

#[test]
fn simulated_times_are_pinned() {
    // The scheduler is deterministic: the exact nanosecond makespans
    // for this configuration are part of the contract. A diff here
    // means the cost model or the engine changed.
    let cfg = ClusterConfig::small_test();
    let dem = workload::fbm_dem(64, 96, 42);
    let das = run_scheme(&cfg, SchemeKind::Das, &FlowRouting, &dem);
    let ts = run_scheme(&cfg, SchemeKind::Ts, &FlowRouting, &dem);
    let nas = run_scheme(&cfg, SchemeKind::Nas, &FlowRouting, &dem);
    assert_eq!(das.exec_time.as_nanos(), 7_809_540);
    assert_eq!(ts.exec_time.as_nanos(), 8_213_145);
    assert_eq!(nas.exec_time.as_nanos(), 16_006_353);
}
