//! The shipped descriptor files (`descriptors/`) must stay consistent
//! with the compiled kernels and with each other — they are the
//! user-facing configuration surface of the DAS prototype.

use das::core::FeatureRegistry;
use das::kernels::{kernel_by_name, kernel_names};
use std::path::PathBuf;

fn descriptor_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("descriptors").join(name)
}

#[test]
fn shipped_text_descriptors_cover_every_kernel() {
    let mut reg = FeatureRegistry::new();
    let n = reg
        .load_text_file(descriptor_path("kernels.txt"))
        .expect("descriptors/kernels.txt parses");
    assert_eq!(n, kernel_names().len(), "one record per registered kernel");

    for &name in kernel_names() {
        let kernel = kernel_by_name(name).unwrap();
        let features = reg.get(name).unwrap_or_else(|| panic!("{name} missing from file"));
        for w in [64u64, 2048] {
            let mut a = features.offsets(w);
            let mut b = kernel.dependence_offsets(w);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{name} at width {w}: file vs implementation");
        }
    }
}

#[test]
fn shipped_xml_descriptors_agree_with_text() {
    let mut text = FeatureRegistry::new();
    text.load_text_file(descriptor_path("kernels.txt")).unwrap();
    let mut xml = FeatureRegistry::new();
    let n = xml
        .load_xml_file(descriptor_path("kernels.xml"))
        .expect("descriptors/kernels.xml parses");
    assert!(n >= 3, "XML file carries the Table I kernels at least");

    for name in xml.names() {
        assert_eq!(
            xml.get(name).unwrap().offsets(777),
            text.get(name).unwrap().offsets(777),
            "{name}: XML and text descriptors diverge"
        );
    }
}

#[test]
fn missing_descriptor_file_is_an_error_not_a_panic() {
    let mut reg = FeatureRegistry::new();
    let err = reg.load_text_file(descriptor_path("no-such-file.txt")).unwrap_err();
    assert!(err.reason.contains("cannot read file"));
}
