//! Cross-crate integration: the three schemes must be functionally
//! interchangeable — bit-identical outputs for every kernel — while
//! moving data on entirely different paths, and the measured movement
//! must match the das-core predictor.

use das::prelude::*;
use das::kernels::{kernel_names, workload};

fn test_input() -> das::kernels::Raster {
    // ~1 MiB: 256 × 1024 f32. With the small_test 2 KiB strips each
    // strip holds two rows, so the 8-neighbor dependence reaches at
    // most the adjacent strip (the geometry the DAS layout covers).
    workload::fbm_dem(256, 1024, 1234)
}

#[test]
fn all_kernels_all_schemes_bit_identical() {
    let cfg = ClusterConfig::small_test();
    let input = test_input();
    for &name in kernel_names() {
        let kernel = kernel_by_name(name).expect("registered kernel");
        let reference = kernel.apply(&input).fingerprint();
        for scheme in [SchemeKind::Ts, SchemeKind::Nas, SchemeKind::Das] {
            let report = run_scheme(&cfg, scheme, kernel.as_ref(), &input);
            assert_eq!(
                report.output_fingerprint, reference,
                "{name} under {} diverged from the reference",
                scheme.name()
            );
        }
    }
}

#[test]
fn data_paths_differ_as_designed() {
    let cfg = ClusterConfig::small_test();
    let input = test_input();
    let kernel = kernel_by_name("flow-routing").unwrap();

    let ts = run_scheme(&cfg, SchemeKind::Ts, kernel.as_ref(), &input);
    let nas = run_scheme(&cfg, SchemeKind::Nas, kernel.as_ref(), &input);
    let das = run_scheme(&cfg, SchemeKind::Das, kernel.as_ref(), &input);

    // TS: everything crosses client links, nothing between servers.
    assert!(ts.bytes.net_client_server >= 2 * input.byte_len());
    assert_eq!(ts.bytes.net_server_server, 0);

    // NAS: nothing to clients, heavy server↔server (amplified).
    assert_eq!(nas.bytes.net_client_server, 0);
    assert!(nas.bytes.net_server_server > input.byte_len());

    // DAS: nothing to clients, only replica maintenance between
    // servers — strictly less than NAS's dependence traffic.
    assert_eq!(das.bytes.net_client_server, 0);
    assert!(das.bytes.net_server_server < nas.bytes.net_server_server / 2);

    // Active storage reads from local disks instead.
    assert!(das.bytes.disk_read >= input.byte_len());
}

#[test]
fn measured_nas_traffic_equals_prediction() {
    // The predictor (das-core) and the executor (das-runtime) are
    // independent implementations of the same model; they must agree
    // exactly on every kernel and size.
    use das::core::StripingParams;
    use das::pfs::Layout;

    let cfg = ClusterConfig::small_test();
    for (w, h) in [(256u64, 256u64), (512, 384)] {
        let input = workload::fbm_dem(w, h, 9);
        for &name in kernel_names() {
            let kernel = kernel_by_name(name).unwrap();
            let report = run_scheme(&cfg, SchemeKind::Nas, kernel.as_ref(), &input);
            let params = StripingParams {
                element_size: 4,
                strip_size: cfg.strip_size as u64,
                layout: Layout::new(LayoutPolicy::RoundRobin, cfg.storage_nodes),
            };
            let predicted =
                params.predict_nas_fetches(&kernel.dependence_offsets(w), input.byte_len());
            assert_eq!(
                report.bytes.net_server_server, predicted.bytes,
                "{name} at {w}x{h}: measured vs predicted NAS traffic"
            );
        }
    }
}

#[test]
fn das_offloads_and_predicts_zero_dependence_bytes() {
    let cfg = ClusterConfig::small_test();
    let input = test_input();
    for &name in kernel_names() {
        if name == "gaussian-filter-5x5" {
            // Radius-2 at this geometry (2-row strips) legitimately
            // spans two strips; covered by the dedicated test below.
            continue;
        }
        let kernel = kernel_by_name(name).unwrap();
        let report = run_scheme(&cfg, SchemeKind::Das, kernel.as_ref(), &input);
        let das = report.das.as_ref().expect("DAS outcome");
        assert!(das.offloaded, "{name} must offload");
        assert_eq!(das.predicted_server_bytes, 0, "{name} plan must be satisfied");
    }
}

#[test]
fn radius2_kernel_offloads_when_strips_cover_it() {
    // gaussian-filter-5x5 reaches ±(2·W + 2) elements. With the paper
    // geometry (64 KiB strips = 8 rows of width 2048) that stays
    // within the adjacent strip, so the improved layout covers it and
    // DAS offloads; with one-row strips it cannot, and the dynamic
    // decision falls back to normal service. Both behaviours are
    // correct — and both produce the right answer.
    let kernel = kernel_by_name("gaussian-filter-5x5").unwrap();

    let mut wide = ClusterConfig::paper_default();
    wide.storage_nodes = 4;
    wide.compute_nodes = 4;
    let input = das::runtime::sweep::figure_workload(4, 9); // width 2048
    let covered = run_scheme(&wide, SchemeKind::Das, kernel.as_ref(), &input);
    let das = covered.das.as_ref().unwrap();
    assert!(das.offloaded, "8-row strips cover radius 2");
    assert_eq!(das.predicted_server_bytes, 0);
    assert_eq!(covered.output_fingerprint, kernel.apply(&input).fingerprint());

    let mut narrow = ClusterConfig::paper_default();
    narrow.storage_nodes = 4;
    narrow.compute_nodes = 4;
    narrow.strip_size = 2048 * 4; // one-row strips
    let fallback = run_scheme(&narrow, SchemeKind::Das, kernel.as_ref(), &input);
    let das = fallback.das.as_ref().unwrap();
    assert!(!das.offloaded, "one-row strips cannot cover radius 2");
    assert_eq!(fallback.output_fingerprint, kernel.apply(&input).fingerprint());
}

#[test]
fn dependence_free_kernel_is_the_ideal_offload() {
    // The paper's Section I ideal: "each active storage node does not
    // need to request dependent data from other storage nodes". For a
    // pointwise operator the planner keeps round-robin, NAS and DAS
    // move identical (zero) dependence bytes, and both beat TS.
    let cfg = ClusterConfig::small_test();
    let input = test_input();
    let kernel = kernel_by_name("pointwise-scale").unwrap();
    let nas = run_scheme(&cfg, SchemeKind::Nas, kernel.as_ref(), &input);
    let das = run_scheme(&cfg, SchemeKind::Das, kernel.as_ref(), &input);
    let ts = run_scheme(&cfg, SchemeKind::Ts, kernel.as_ref(), &input);
    assert_eq!(nas.bytes.net_server_server, 0);
    assert_eq!(das.bytes.net_server_server, 0);
    assert_eq!(nas.output_fingerprint, das.output_fingerprint);
    assert!(das.exec_time < ts.exec_time);
    assert!(nas.exec_time < ts.exec_time, "NAS == DAS when dependence-free");
    assert_eq!(
        das.das.as_ref().unwrap().layout,
        LayoutPolicy::RoundRobin,
        "no layout change needed for dependence-free operators"
    );
}

#[test]
fn reports_serialize_to_json() {
    let cfg = ClusterConfig::small_test();
    let input = workload::fbm_dem(128, 128, 3);
    let report = run_scheme(&cfg, SchemeKind::Das, &FlowRouting, &input);
    let json = report.to_json();
    assert!(json.contains("\"scheme\":\"DAS\""));
    assert!(json.contains("\"offloaded\":true"));
}
