//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors a small, dependency-free property-testing harness with the
//! same call surface the tests use: the [`proptest!`] macro,
//! `prop_assert*`, [`prop_oneof!`], range / tuple / `Just` / mapped
//! strategies, `prop::collection::vec`, `prop::sample`, and
//! regex-string strategies (a generator subset of regex syntax).
//!
//! Differences from the real crate, by design:
//!
//! * cases are generated from a deterministic per-test RNG — the same
//!   inputs every run (CI-stable; no `proptest-regressions` files);
//! * **no shrinking**: a failure reports the case number and the
//!   assertion message instead of a minimized input;
//! * strategies sample uniformly, with no size ramp-up.

pub mod arbitrary;
pub mod collection;
pub mod regex;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob import the tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Mirrors the real macro's shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in prop::collection::vec(0i32..5, 1..4)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        #[test]
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64,
                );
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)*
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property '{}' failed at case {case}/{}: {e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    )*};
}

/// Assert inside a property; on failure the case is reported with the
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two values are equal (`Debug`-printed on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assert_eq failed: {} != {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), a, b),
            ));
        }
    }};
}

/// Assert two values are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assert_ne failed: {} == {} ({:?})",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a != *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Choose uniformly between several strategies with a common value
/// type (the unweighted form only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
