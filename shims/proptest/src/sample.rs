//! Sampling helpers: `prop::sample::Index` and `prop::sample::select`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An index into a collection whose length is only known at use time.
/// Obtained via `any::<Index>()`; resolved with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index {
    raw: u64,
}

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Self {
        Index { raw }
    }

    /// Resolve against a collection of length `len` (uniform over
    /// `0..len`). Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index(0): empty collection");
        (((self.raw as u128) * (len as u128)) >> 64) as usize
    }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}

/// Pick uniformly from a fixed set of options. Panics if empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_resolves_in_bounds() {
        for raw in [0, 1, u64::MAX / 2, u64::MAX] {
            let idx = Index::from_raw(raw);
            for len in [1usize, 2, 7, 1000] {
                assert!(idx.index(len) < len);
            }
        }
    }

    #[test]
    fn select_draws_members() {
        let mut rng = TestRng::for_case("select", 0);
        let s = select(vec![256usize, 512, 1024, 4096]);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!([256, 512, 1024, 4096].contains(&v));
        }
    }
}
