//! `any::<T>()` — default strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "whole domain" distribution.
pub trait Arbitrary {
    /// Draw one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T` (`any::<u64>()`, `any::<Index>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}
