//! String generation from a regex subset.
//!
//! In proptest, a `&str` strategy literal is interpreted as a regex
//! and generates matching strings. This module implements the
//! *generator* direction for the subset the workspace's tests use:
//! literals, `.`, escapes (`\n`, `\t`, `\r`, `\d`, `\w`, `\s`, and
//! escaped punctuation), character classes `[...]` with ranges and
//! leading-`^` negation, groups `(...)`, alternation `|`, and the
//! repetitions `*`, `+`, `?`, `{m}`, `{m,}`, `{m,n}`. Unbounded
//! repetitions draw small counts (0–8) to keep cases fast.

use crate::test_runner::TestRng;

/// Maximum repeat count substituted for `*`, `+`, and `{m,}`.
const UNBOUNDED_CAP: u32 = 8;

/// A parsed pattern; generates matching strings.
#[derive(Debug, Clone)]
pub struct Pattern {
    root: Node,
}

#[derive(Debug, Clone)]
enum Node {
    /// One concrete character.
    Literal(char),
    /// Any printable ASCII except newline (`.`).
    Dot,
    /// A set of candidate characters (expanded class).
    Class(Vec<char>),
    /// Nodes generated in order.
    Seq(Vec<Node>),
    /// Uniform choice among branches.
    Alt(Vec<Node>),
    /// Inner node repeated `min..=max` times.
    Repeat {
        inner: Box<Node>,
        min: u32,
        max: u32,
    },
}

impl Pattern {
    /// Parse `pattern`; panics (test-time) on syntax this subset does
    /// not cover.
    pub fn parse(pattern: &str) -> Pattern {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        let root = p.alternation();
        assert!(
            p.pos == p.chars.len(),
            "unsupported regex (stopped at byte {} of {:?})",
            p.pos,
            pattern
        );
        Pattern { root }
    }

    /// Generate one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        emit(&self.root, rng, &mut out);
        out
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Dot => {
            // Printable ASCII 0x20..=0x7E.
            out.push((0x20 + rng.below(0x5F) as u8) as char);
        }
        Node::Class(chars) => {
            let i = rng.below(chars.len() as u64) as usize;
            out.push(chars[i]);
        }
        Node::Seq(nodes) => {
            for n in nodes {
                emit(n, rng, out);
            }
        }
        Node::Alt(branches) => {
            let i = rng.below(branches.len() as u64) as usize;
            emit(&branches[i], rng, out);
        }
        Node::Repeat { inner, min, max } => {
            let n = *min + rng.below((*max - *min + 1) as u64) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        c
    }

    /// alternation := seq ('|' seq)*
    fn alternation(&mut self) -> Node {
        let mut branches = vec![self.seq()];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.seq());
        }
        if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Node::Alt(branches)
        }
    }

    /// seq := (atom repeat?)*
    fn seq(&mut self) -> Node {
        let mut nodes = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.atom();
            nodes.push(self.maybe_repeat(atom));
        }
        if nodes.len() == 1 {
            nodes.pop().unwrap()
        } else {
            Node::Seq(nodes)
        }
    }

    fn atom(&mut self) -> Node {
        match self.bump() {
            '(' => {
                let inner = self.alternation();
                assert_eq!(self.bump(), ')', "unclosed group in regex");
                inner
            }
            '[' => self.class(),
            '.' => Node::Dot,
            '\\' => Node::from_escape(self.bump()),
            c => Node::Literal(c),
        }
    }

    /// `[...]` — expanded eagerly into the candidate character set.
    fn class(&mut self) -> Node {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut members: Vec<char> = Vec::new();
        loop {
            let c = match self.bump() {
                ']' => break,
                '\\' => match Node::from_escape(self.bump()) {
                    Node::Literal(l) => l,
                    Node::Class(set) => {
                        members.extend(set);
                        continue;
                    }
                    _ => unreachable!(),
                },
                c => c,
            };
            // A `-` forms a range only between two members; at the
            // edges ("[a-z-]", "[-+*]") it is a literal.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = self.bump();
                assert!(c <= hi, "inverted class range in regex");
                members.extend((c..=hi).filter(|ch| ch.is_ascii()));
            } else {
                members.push(c);
            }
        }
        assert!(!members.is_empty(), "empty character class in regex");
        if negated {
            let set: Vec<char> = (0x20u8..=0x7E)
                .map(|b| b as char)
                .filter(|c| !members.contains(c))
                .collect();
            assert!(!set.is_empty(), "negated class excludes all candidates");
            Node::Class(set)
        } else {
            Node::Class(members)
        }
    }

    fn maybe_repeat(&mut self, atom: Node) -> Node {
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.bump();
                (1, UNBOUNDED_CAP)
            }
            Some('?') => {
                self.bump();
                (0, 1)
            }
            Some('{') => {
                self.bump();
                let min = self.number();
                let max = match self.bump() {
                    '}' => min, // {m}: exactly m
                    ',' => {
                        let max = if self.peek() == Some('}') {
                            min + UNBOUNDED_CAP // {m,}
                        } else {
                            self.number() // {m,n}
                        };
                        assert_eq!(self.bump(), '}', "unclosed regex repetition");
                        max
                    }
                    c => panic!("unexpected {c:?} in regex repetition"),
                };
                (min, max)
            }
            _ => return atom,
        };
        assert!(min <= max, "inverted repetition bounds in regex");
        Node::Repeat {
            inner: Box::new(atom),
            min,
            max,
        }
    }

    fn number(&mut self) -> u32 {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        assert!(self.pos > start, "expected number in regex repetition");
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .expect("regex repetition count")
    }
}

impl Node {
    fn from_escape(c: char) -> Node {
        match c {
            'n' => Node::Literal('\n'),
            't' => Node::Literal('\t'),
            'r' => Node::Literal('\r'),
            '0' => Node::Literal('\0'),
            'd' => Node::Class(('0'..='9').collect()),
            'w' => Node::Class(
                ('a'..='z')
                    .chain('A'..='Z')
                    .chain('0'..='9')
                    .chain(std::iter::once('_'))
                    .collect(),
            ),
            's' => Node::Class(vec![' ', '\t', '\n']),
            // Escaped punctuation is the literal character.
            c => Node::Literal(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Pattern;
    use crate::test_runner::TestRng;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let p = Pattern::parse(pattern);
        let mut rng = TestRng::for_case(pattern, 0);
        (0..n).map(|_| p.generate(&mut rng)).collect()
    }

    #[test]
    fn bounded_repetition_respects_counts() {
        for s in samples("[a-z-]{1,12}", 200) {
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
        for s in samples("a{3}", 10) {
            assert_eq!(s, "aaa");
        }
    }

    #[test]
    fn class_ranges_edge_dash_and_specials() {
        for s in samples("[-+*() 0-9a-zA-Z_]{0,40}", 200) {
            assert!(s.chars().all(|c| "-+*() _".contains(c)
                || c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn alternation_groups_and_escapes() {
        let mut saw_tag = false;
        for s in samples("(<[a-z/!-]{0,8}>|[a-z0-9, +*-]{0,8}){0,30}", 300) {
            if s.contains('<') {
                saw_tag = true;
            }
        }
        assert!(saw_tag, "alternation never chose the tag branch");
        for s in samples("(.|\\n){0,300}", 50) {
            assert!(s.chars().count() <= 300);
        }
        // `.` never generates newline; the explicit branch can.
        assert!(samples(".*", 100)
            .iter()
            .all(|s| !s.contains('\n')));
    }
}
