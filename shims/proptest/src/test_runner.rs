//! Deterministic test runner state: per-case RNG, config, and the
//! error type `prop_assert!` returns.

use std::fmt;

/// Runner configuration. Only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (no shrinking: carries the message only).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case RNG (SplitMix64 seeded from the test's fully
/// qualified name and the case index). The same test sees the same
/// inputs on every run and every machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, then fold in the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut rng = TestRng {
            state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        };
        rng.next_u64(); // decorrelate nearby seeds
        rng
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`. Panics if the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn per_case_streams_differ_but_repeat() {
        let mut a = TestRng::for_case("mod::t", 0);
        let mut a2 = TestRng::for_case("mod::t", 0);
        let mut b = TestRng::for_case("mod::t", 1);
        assert_eq!(a.next_u64(), a2.next_u64());
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_bounded() {
        let mut rng = TestRng::for_case("bounds", 3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.usize_in(2, 5);
            assert!((2..5).contains(&v));
        }
    }
}
