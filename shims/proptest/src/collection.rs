//! Collection strategies: `prop::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Element-count bound for collection strategies, `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    /// Exactly `n` elements.
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.usize_in(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `Vec`s of `size` elements drawn from `element`. `size` accepts a
/// `usize` (exact length) or `Range<usize>` (half-open, as in the real
/// crate).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_bounds_hold() {
        let mut rng = TestRng::for_case("vec_bounds", 0);
        let ranged = vec(0u8..10, 2..5);
        let exact = vec(1u32..4, 3usize);
        for _ in 0..200 {
            let v = ranged.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            let e = exact.new_value(&mut rng);
            assert_eq!(e.len(), 3);
            assert!(e.iter().all(|&x| (1..4).contains(&x)));
        }
    }
}
