//! Value-generation strategies: the core trait plus the combinators
//! the workspace's property tests use (ranges, tuples, `Just`, `Map`,
//! `Union` for `prop_oneof!`, and regex-string literals).

use crate::regex::Pattern;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Self::Value` from a deterministic RNG.
///
/// Unlike the real crate there is no value tree / shrinking: a
/// strategy draws a concrete value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (the element type of `prop_oneof!`).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Strategy::prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among branches (`prop_oneof!` without weights).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given branches. Panics if empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = rng.next_u64() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let x = rng.next_u64() as u128;
                self.start() + ((x * span) >> 64) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// A `&str` strategy literal is a regex: generates matching strings.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        // Parsing on every draw keeps the strategy `Copy`-cheap to
        // build; patterns in this workspace are tiny.
        Pattern::parse(self).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_case("combinators", 0);
        let s = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
        let u = Union::new(vec![Just(1u32).boxed(), (5u32..7).boxed()]);
        for _ in 0..100 {
            let v = u.new_value(&mut rng);
            assert!(v == 1 || v == 5 || v == 6);
        }
        let t = (0i32..3, Just("x")).new_value(&mut rng);
        assert!(t.0 < 3);
    }
}
