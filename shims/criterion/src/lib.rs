//! Offline stand-in for the `criterion` crate.
//!
//! Supplies the API surface the workspace's benches use
//! (`Criterion::bench_function`, `Bencher::iter` / `iter_batched`,
//! `BatchSize`, `criterion_group!` / `criterion_main!`) backed by a
//! simple wall-clock harness: each benchmark is warmed up once, then
//! timed over an adaptively chosen iteration count and reported as
//! mean ns/iter on stdout. No statistics, plots, or baselines — the
//! point is that `--all-targets` builds and `cargo bench` produces
//! comparable numbers without registry access.

use std::time::{Duration, Instant};

/// How batched inputs are grouped. The harness runs one setup per
/// routine call regardless of variant; the enum exists for call-site
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    /// Total time spent in the measured routine.
    elapsed: Duration,
    /// Number of measured routine invocations.
    iters: u64,
}

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);
/// Hard cap on measured iterations.
const MAX_ITERS: u64 = 10_000;

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration from a single untimed call.
        let cal = Instant::now();
        std::hint::black_box(routine());
        let per = cal.elapsed().max(Duration::from_nanos(1));
        let n = (TARGET.as_nanos() / per.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += n;
    }

    /// Time `routine` over fresh inputs built by `setup`; only the
    /// routine is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let cal = Instant::now();
        std::hint::black_box(routine(input));
        let per = cal.elapsed().max(Duration::from_nanos(1));
        let n = (TARGET.as_nanos() / per.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            std::hint::black_box(routine(input));
        }
        self.elapsed += start.elapsed();
        self.iters += n;
    }
}

/// Benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark and print its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0
        } else {
            (b.elapsed.as_nanos() / b.iters as u128) as u64
        };
        println!("bench {name:<48} {mean_ns:>12} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
