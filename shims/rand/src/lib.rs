//! Offline stand-in for the `rand` crate.
//!
//! Supplies the subset the workspace uses — a seedable deterministic
//! RNG ([`rngs::StdRng`]) and uniform sampling over half-open ranges —
//! with no external dependencies. The generator is SplitMix64
//! (Steele et al.), which passes BigCrush-scale statistical tests and
//! is more than adequate for synthetic workload generation and
//! property tests. Streams differ from the real crate's ChaCha12
//! `StdRng`; everything in this workspace that depends on exact values
//! derives them from its own seeded hash functions instead.

use std::ops::Range;

/// Types that can seed an RNG (subset of the real trait).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness with uniform range sampling.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(self, range)
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Types with a natural "any value" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly sampleable over a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[range.start, range.end)`.
    fn sample_uniform<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per
                // draw, irrelevant at workload-generation scale.
                let x = rng.next_u64() as u128;
                range.start + ((x * span) >> 64) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_uniform<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-3i64..17);
            assert!((-3..17).contains(&x));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mut lo, mut hi) = (f32::MAX, f32::MIN);
        for _ in 0..4000 {
            let v = rng.gen_range(-1.0f32..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < -0.9 && hi > 0.9);
    }
}
