//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope`, which predates
//! — and is now superseded by — `std::thread::scope` (Rust 1.63).
//! This shim adapts the crossbeam call shape (closure receives the
//! scope argument, `scope` returns a `Result`) onto the std
//! implementation so call sites compile unchanged.

/// Scoped threads (crossbeam call shape over `std::thread::scope`).
pub mod thread {
    use std::any::Any;

    /// The error payload of a panicked scoped thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; `spawn` borrows from the enclosing environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` carries its panic.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the
        /// closure receives the scope (for nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before this returns. Unjoined
    /// panics propagate (std semantics), so the `Result` is always
    /// `Ok` — kept for crossbeam call-site compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| s.spawn(move |_| x * 10))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
