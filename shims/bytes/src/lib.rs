//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the small slice of `bytes` it actually uses: [`Bytes`], a
//! cheaply cloneable, immutable, contiguous byte buffer. Cloning is
//! O(1) (a reference-count bump), which is what `das-pfs` relies on
//! when the same strip is held by a primary and several replicas.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Wrap a static slice. (The shim copies; the real crate borrows.
    /// Semantics are identical, only the one-time cost differs.)
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// A new `Bytes` holding `self[range]`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.data[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn conversions() {
        let v: Bytes = vec![1u8, 2, 3].into();
        assert_eq!(v.to_vec(), vec![1, 2, 3]);
        let s = Bytes::from_static(b"xy");
        assert_eq!(&s[..], b"xy");
        assert!(Bytes::new().is_empty());
        assert_eq!(v.slice(1..3), Bytes::copy_from_slice(&[2, 3]));
    }
}
