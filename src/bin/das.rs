//! `das` — the active-storage client CLI.
//!
//! ```text
//! das ping    --cluster a,b,c,d
//! das put     --cluster ... --name dem.raw --strip-size 4096 --input dem.bin
//! das gen     --cluster ... --name dem.raw --strip-size 4096 --width 256 --height 128 [--seed 42]
//! das info    --cluster ... --name dem.raw
//! das get     --cluster ... --name dem.raw --output dem.bin
//! das exec    --cluster ... --name dem.raw --kernel gaussian-filter --width 256 --scheme das [--out NAME] [--one-shot]
//! das stats   --cluster ...
//! das reset-stats --cluster ...
//! das shutdown    --cluster ...
//! das bench   [--servers 3 | --cluster ...] [--rate N] [--duration-ms MS] [--clients N]
//! ```
//!
//! `bench` is the open-loop load generator (`das-load`): without
//! `--cluster` it boots two in-process loopback fleets — one per
//! connection engine — runs the identical seeded workload against
//! each, and writes the comparison to `BENCH_net.json`.

use std::collections::HashMap;
use std::process::exit;

use das_kernels::kernel_names;
use das_kernels::workload;
use das_load::report::CompareReport;
use das_load::{compare_engines, run_bench, BenchConfig, Mix};
use das_net::{run_net_scheme_opts, DasCluster, NetScheme, RetryPolicy};
use das_obs::{event, Level};
use das_pfs::LayoutPolicy;

fn usage() -> ! {
    println!(
        "usage: das <command> --cluster <addr0,addr1,...> [options]\n\
         \n\
         commands:\n\
         \x20 ping                         probe every server\n\
         \x20 put    --name N --strip-size S --input PATH [--policy rr|grouped:R|grouped-rep:R]\n\
         \x20 gen    --name N --strip-size S --width W --height H [--seed K] [--policy ...]\n\
         \x20 info   --name N               show a file's distribution\n\
         \x20 get    --name N --output PATH gather a file to a local path\n\
         \x20 exec   --name N --kernel K --width W --scheme ts|nas|das [--out NAME]\n\
         \x20        [--one-shot]          decide non-successively: no layout\n\
         \x20                              reconfiguration, and the offload is refused\n\
         \x20                              (a \"ts\" decision outcome) when dependence\n\
         \x20                              fetches would exceed normal service\n\
         \x20 stats                        wire-byte counters + each daemon's live\n\
         \x20                              metrics registry (decision outcomes,\n\
         \x20                              predicted-vs-measured dependence traffic)\n\
         \x20        [--slow [--per-class N]]  each daemon's slowest requests per op\n\
         \x20                              class with their stage breakdown\n\
         \x20 trace  <id>                  cross-daemon waterfall for one trace id\n\
         \x20                              (the hex id `das exec` logs / `begin_trace`\n\
         \x20                              returns), from each daemon's flight recorder\n\
         \x20 reset-stats                  zero the counters\n\
         \x20 shutdown                     stop every daemon\n\
         \x20 bench                        open-loop load generator -> BENCH_net.json\n\
         \x20        [--servers N]         boot in-process fleets and compare both\n\
         \x20                              engines (default; N daemons, default 3)\n\
         \x20        [--cluster ...]       drive an external fleet instead\n\
         \x20        [--rate OPS] [--duration-ms MS] [--clients N] [--conns N]\n\
         \x20        [--strip-size S] [--strips N] [--mix G:P:E] [--seed K]\n\
         \x20        [--kernel K] [--pool N] [--max-backlog N] [--out PATH]\n\
         \x20                              (--max-backlog caps daemon admission:\n\
         \x20                              small cap + past-capacity --rate = a\n\
         \x20                              reproducible overload/shedding scenario)\n\
         \n\
         global options:\n\
         \x20 --attempts N     retry budget per call (default 4)\n\
         \x20 --timeout-ms MS  connect/read/write timeout per attempt (default 2000/15000/15000)\n\
         \x20 --raw            (stats) dump raw Prometheus text instead of the summary\n\
         \n\
         kernels: {}",
        kernel_names().join(", ")
    );
    exit(2);
}

fn parse_policy(s: &str) -> Option<LayoutPolicy> {
    if s == "rr" || s == "round-robin" {
        return Some(LayoutPolicy::RoundRobin);
    }
    if let Some(r) = s.strip_prefix("grouped-rep:") {
        return r.parse().ok().map(|group| LayoutPolicy::GroupedReplicated { group });
    }
    if let Some(r) = s.strip_prefix("grouped:") {
        return r.parse().ok().map(|group| LayoutPolicy::Grouped { group });
    }
    None
}

fn fail(msg: impl std::fmt::Display) -> ! {
    event(Level::Error, "das.cli", "command failed", &[("error", msg.to_string())]);
    exit(1);
}

/// Summarize every daemon's Prometheus dump: decision outcomes,
/// predicted-vs-measured dependence traffic (Eqs. 1–13 against real
/// wire counters), fault-handling totals, and per-op request counts.
///
/// Predicted counters carry the full cluster-wide prediction on every
/// daemon (all daemons price the same request identically), so the
/// fleet's prediction is the **max** across daemons; the measured
/// counters carry only each daemon's share, so those **sum**.
fn print_registry_summary(dumps: &[(u32, String)]) {
    let parsed: Vec<Vec<das_obs::Sample>> =
        dumps.iter().map(|(_, text)| das_obs::parse(text)).collect();
    let sum = |name: &str, labels: &[(&str, &str)]| -> f64 {
        // + 0.0 normalizes the empty sum's -0.0 identity for display.
        parsed.iter().filter_map(|s| das_obs::sample_value(s, name, labels)).sum::<f64>() + 0.0
    };
    let max = |name: &str, labels: &[(&str, &str)]| -> f64 {
        parsed
            .iter()
            .filter_map(|s| das_obs::sample_value(s, name, labels))
            .fold(0.0, f64::max)
    };

    println!(
        "decision outcomes: das={} nas={} ts={}",
        sum("dasd_decisions_total", &[("outcome", "das")]),
        sum("dasd_decisions_total", &[("outcome", "nas")]),
        sum("dasd_decisions_total", &[("outcome", "ts")]),
    );

    let pred_fetches = max("dasd_predicted_dep_fetches_total", &[]);
    let pred_bytes = max("dasd_predicted_dep_fetch_bytes_total", &[]);
    let meas_fetches = sum("dasd_dep_fetches_total", &[]);
    let meas_bytes = sum("dasd_dep_fetch_bytes_total", &[]);
    let delta = if pred_bytes > 0.0 {
        format!("{:+.1}%", (meas_bytes - pred_bytes) / pred_bytes * 100.0)
    } else {
        "n/a".to_string()
    };
    println!(
        "dependence traffic: predicted {pred_fetches} fetches / {pred_bytes} B, \
         measured {meas_fetches} fetches / {meas_bytes} B (error {delta})"
    );
    println!(
        "fault handling: peer retries={} failovers={} breaker trips={} \
         replica-forward failures={} faults injected={}",
        sum("dasd_peer_retries_total", &[]),
        sum("dasd_peer_failovers_total", &[]),
        sum("dasd_peer_breaker_trips_total", &[]),
        sum("dasd_replica_forward_failures_total", &[]),
        parsed
            .iter()
            .flatten()
            .filter(|s| s.name == "dasd_faults_injected_total")
            .map(|s| s.value)
            .sum::<f64>()
            + 0.0,
    );

    // Backpressure: live engine backlog and admission sheds, per
    // daemon — the gauges are instantaneous, so they stay unsummed.
    for ((id, _), s) in dumps.iter().zip(&parsed) {
        let v = |name: &str, labels: &[(&str, &str)]| {
            das_obs::sample_value(s, name, labels).unwrap_or(0.0)
        };
        let inflight: f64 =
            s.iter().filter(|x| x.name == "dasd_shard_inflight").map(|x| x.value).sum();
        println!(
            "  backlog server {id}: active={} shard in-flight={inflight} \
             queue depth={} shed backlog={} deadline={}",
            v("dasd_active_requests", &[]),
            v("dasd_worker_queue_depth", &[]),
            v("dasd_requests_shed_total", &[("reason", "backlog")]),
            v("dasd_requests_shed_total", &[("reason", "deadline")]),
        );
    }

    // Request counts and mean latency per op, summed over the fleet.
    use std::collections::BTreeMap;
    let mut requests: BTreeMap<String, f64> = BTreeMap::new();
    let mut lat: BTreeMap<String, (f64, f64)> = BTreeMap::new(); // op -> (sum_us, count)
    for s in parsed.iter().flatten() {
        let op = s.labels.iter().find(|(k, _)| k == "op").map(|(_, v)| v.clone());
        match (s.name.as_str(), op) {
            ("dasd_requests_total", Some(op)) => *requests.entry(op).or_default() += s.value,
            ("dasd_request_duration_us_sum", Some(op)) => lat.entry(op).or_default().0 += s.value,
            ("dasd_request_duration_us_count", Some(op)) => lat.entry(op).or_default().1 += s.value,
            _ => {}
        }
    }
    for (op, n) in &requests {
        let mean = match lat.get(op) {
            Some((sum_us, count)) if *count > 0.0 => format!("{:.0} us mean", sum_us / count),
            _ => "no timing".to_string(),
        };
        let quantiles = match (
            fleet_duration_quantile(&parsed, op, 0.50),
            fleet_duration_quantile(&parsed, op, 0.99),
            fleet_duration_quantile(&parsed, op, 0.999),
        ) {
            (Some(p50), Some(p99), Some(p999)) => {
                format!(", p50/p99/p999 {p50:.0}/{p99:.0}/{p999:.0} us")
            }
            _ => String::new(),
        };
        println!("  requests {op}: {n} ({mean}{quantiles})");
    }
}

/// `das bench`: run the open-loop load generator and write
/// `BENCH_net.json`. Without `--cluster`, boots two in-process
/// loopback fleets and compares the connection engines on the
/// identical seeded workload.
fn bench_command(opts: &HashMap<String, String>) {
    let mut cfg = BenchConfig::default();
    let num = |key: &str| -> Option<u64> {
        opts.get(key).map(|v| v.parse().unwrap_or_else(|_| fail(format!("bad --{key}"))))
    };
    if let Some(r) = opts.get("rate") {
        cfg.rate = r.parse().unwrap_or_else(|_| fail("bad --rate"));
    }
    if let Some(ms) = num("duration-ms") {
        cfg.duration = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = num("clients") {
        cfg.clients = n as usize;
    }
    if let Some(n) = num("conns") {
        cfg.conns_per_server = n as usize;
    }
    if let Some(n) = num("strip-size") {
        cfg.strip_size = n as u32;
    }
    if let Some(n) = num("strips") {
        cfg.strips = n;
    }
    if let Some(n) = num("seed") {
        cfg.seed = n;
    }
    if let Some(n) = num("servers") {
        cfg.servers = n as usize;
    }
    if let Some(n) = num("pool") {
        cfg.pool = n as usize;
    }
    if let Some(n) = num("max-backlog") {
        cfg.max_backlog = Some(n as usize);
    }
    if let Some(m) = opts.get("mix") {
        cfg.mix = Mix::parse(m).unwrap_or_else(|| fail(format!("bad --mix {m:?} (want G:P:E)")));
    }
    if let Some(k) = opts.get("kernel") {
        cfg.kernel = k.clone();
    }

    let cmp = match opts.get("cluster") {
        Some(cluster_arg) => {
            let addrs: Vec<String> =
                cluster_arg.split(',').map(|s| s.trim().to_string()).collect();
            let report = run_bench(&addrs, &cfg, "external").unwrap_or_else(|e| fail(e));
            CompareReport::from_runs(vec![report])
        }
        None => compare_engines(&cfg).unwrap_or_else(|e| fail(e)),
    };

    for r in &cmp.runs {
        println!(
            "engine {}: {:.0} ops/s achieved (target {:.0}), {} ok / {} errors over {} ms",
            r.engine, r.achieved_ops_s, r.target_rate_ops_s, r.total_completed, r.total_errors,
            r.wall_ms
        );
        for c in &r.classes {
            println!(
                "  {:<5} {:>8.1} ops/s  p50 {:>6} us  p99 {:>7} us  p999 {:>7} us  \
                 (n={}, err={})",
                c.class, c.throughput_ops_s, c.p50_us, c.p99_us, c.p999_us, c.completed, c.errors
            );
        }
        if !r.errors_by_code.is_empty() {
            let parts: Vec<String> =
                r.errors_by_code.iter().map(|(c, n)| format!("{c}={n}")).collect();
            println!("  errors by code: {}", parts.join(" "));
        }
        println!(
            "  backpressure: peak queue depth {} / sheds {}",
            r.queue_depth_peak, r.requests_shed
        );
        if !r.stages.is_empty() {
            println!("  server-side stage attribution (mean/p99 us):");
            for s in &r.stages {
                println!(
                    "    {:<11} {:<7} n={:<7} {:>8.0} / {:>8.0}",
                    s.stage, s.op, s.count, s.mean_us, s.p99_us
                );
            }
        }
    }
    if cmp.runs.len() > 1 {
        println!("winner: {} ({:.2}x throughput)", cmp.winner, cmp.speedup);
    }

    let out = opts.get("out").map(String::as_str).unwrap_or("BENCH_net.json");
    std::fs::write(out, cmp.to_json()).unwrap_or_else(|e| fail(format!("writing {out}: {e}")));
    println!("wrote {out}");
}

/// Fleet-wide latency quantile for one op: sum the cumulative
/// `dasd_request_duration_us` buckets across every daemon's dump,
/// then interpolate with `das_obs::histogram_quantile`.
fn fleet_duration_quantile(parsed: &[Vec<das_obs::Sample>], op: &str, q: f64) -> Option<f64> {
    use std::collections::BTreeMap;
    let mut by_le: BTreeMap<String, f64> = BTreeMap::new();
    for s in parsed.iter().flatten() {
        if s.name != "dasd_request_duration_us_bucket" {
            continue;
        }
        if !s.labels.iter().any(|(k, v)| k == "op" && v == op) {
            continue;
        }
        if let Some((_, le)) = s.labels.iter().find(|(k, _)| k == "le") {
            *by_le.entry(le.clone()).or_default() += s.value;
        }
    }
    let merged: Vec<das_obs::Sample> = by_le
        .into_iter()
        .map(|(le, value)| das_obs::Sample {
            name: "fleet_us_bucket".to_string(),
            labels: vec![("le".to_string(), le)],
            value,
        })
        .collect();
    das_obs::histogram_quantile(&merged, "fleet_us", &[], q)
}

/// Print the client-side registry (degradations, retries) when this
/// invocation recorded anything.
fn print_client_summary(cluster: &DasCluster) {
    let samples = das_obs::parse(&cluster.metrics().encode());
    for s in &samples {
        let labels: Vec<String> =
            s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("client: {}{{{}}} {}", s.name, labels.join(","), s.value);
    }
}

/// Columns of the ASCII waterfall bar.
const WATERFALL_COLS: usize = 32;

/// One waterfall line: `[bar] +offset dur stage op (note)`, indented
/// one level for sub-spans.
fn print_span_line(s: &das_obs::SpanRecord, t0: u64, window_us: u64, depth: usize) {
    let off = s.start_us.saturating_sub(t0);
    let window = window_us.max(1) as usize;
    let lead = ((off as usize * WATERFALL_COLS) / window).min(WATERFALL_COLS - 1);
    let fill = ((s.dur_us as usize * WATERFALL_COLS) / window).clamp(1, WATERFALL_COLS - lead);
    let bar: String = " ".repeat(lead) + &"#".repeat(fill) + &" ".repeat(WATERFALL_COLS - lead - fill);
    let indent = if depth == 0 { "" } else { "  " };
    let note = das_obs::note_name(s.note);
    let note = if note.is_empty() { String::new() } else { format!(" ({note})") };
    println!(
        "  [{bar}] {indent}+{:>8} us {:>8} us  {:<11} {}{note}",
        off,
        s.dur_us,
        s.stage.name(),
        s.op.name()
    );
}

/// Render each daemon's spans for one trace as an indented waterfall.
/// Offsets are relative to the daemon's own earliest span: daemon
/// clocks are monotonic and local, so bars align *within* a daemon;
/// across daemons only the shared trace id correlates the work.
fn print_trace_waterfall(dumps: &[(u32, Vec<das_obs::SpanRecord>)]) {
    if dumps.iter().all(|(_, s)| s.is_empty()) {
        println!("no spans retained for this trace (evicted from the ring, or never traced)");
        return;
    }
    for (id, spans) in dumps {
        if spans.is_empty() {
            continue;
        }
        let t0 = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let window =
            spans.iter().map(|s| s.start_us + s.dur_us).max().unwrap_or(t0).saturating_sub(t0);
        println!("server {id} ({} spans, {window} us window):", spans.len());
        // Two levels deep by construction: roots carry parent 0, every
        // sub-span points at its root.
        for root in spans.iter().filter(|s| s.parent == 0) {
            print_span_line(root, t0, window, 0);
            for child in spans.iter().filter(|s| s.parent == root.span) {
                print_span_line(child, t0, window, 1);
            }
        }
        // Sub-spans whose root was evicted from the ring still print,
        // unparented, rather than vanishing.
        for s in spans.iter().filter(|s| s.parent != 0) {
            if !spans.iter().any(|r| r.span == s.parent) {
                print_span_line(s, t0, window, 1);
            }
        }
    }
}

/// `das stats --slow`: each daemon's slowest-roots reservoir, grouped
/// by op class, each root with its retained stage breakdown.
fn print_slow_log(dumps: &[(u32, Vec<das_obs::SpanRecord>)]) {
    if dumps.iter().all(|(_, s)| s.is_empty()) {
        println!("no slow-log spans retained yet");
        return;
    }
    for (id, spans) in dumps {
        println!("--- server {id} slowest requests ---");
        let mut roots: Vec<&das_obs::SpanRecord> = spans.iter().filter(|s| s.parent == 0).collect();
        // Group by op class, slowest first within each.
        roots.sort_by_key(|r| (r.op as u8, std::cmp::Reverse(r.dur_us)));
        for root in roots {
            let note = das_obs::note_name(root.note);
            let note = if note.is_empty() { String::new() } else { format!(" ({note})") };
            println!(
                "  {:<7} {:>8} us  trace {:016x}{note}",
                root.op.name(),
                root.dur_us,
                root.trace
            );
            let mut subs: Vec<&das_obs::SpanRecord> =
                spans.iter().filter(|s| s.parent == root.span).collect();
            subs.sort_by_key(|s| s.start_us);
            for sub in subs {
                println!("    {:<11} {:>8} us", sub.stage.name(), sub.dur_us);
            }
        }
    }
}

fn main() {
    das_obs::log::init_from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args.remove(0);

    let mut opts: HashMap<String, String> = HashMap::new();
    // `das trace <id>` takes its trace id as a bare positional.
    if command == "trace" && args.first().is_some_and(|a| !a.starts_with("--")) {
        opts.insert("id".to_string(), args.remove(0));
    }
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            println!("expected --flag, got {flag:?}");
            usage();
        };
        if key == "raw" || key == "one-shot" || key == "slow" {
            opts.insert(key.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            println!("--{key} needs a value");
            usage();
        };
        opts.insert(key.to_string(), value);
    }

    if command == "bench" {
        bench_command(&opts);
        return;
    }

    let Some(cluster_arg) = opts.get("cluster") else {
        println!("--cluster is required");
        usage();
    };
    let addrs: Vec<String> = cluster_arg.split(',').map(|s| s.trim().to_string()).collect();
    let mut policy = RetryPolicy::default();
    if let Some(a) = opts.get("attempts") {
        policy.max_attempts = a.parse().unwrap_or_else(|_| fail("bad --attempts"));
    }
    if let Some(t) = opts.get("timeout-ms") {
        let ms: u64 = t.parse().unwrap_or_else(|_| fail("bad --timeout-ms"));
        let d = std::time::Duration::from_millis(ms);
        policy.connect_timeout = d;
        policy.read_timeout = d;
        policy.write_timeout = d;
    }
    let mut cluster = match DasCluster::connect_with(&addrs, policy) {
        Ok(c) => c,
        Err(e) => fail(format!("connecting to cluster: {e}")),
    };
    for s in cluster.down_servers() {
        event(
            Level::Warn,
            "das.cli",
            "server unreachable",
            &[("server", s.to_string()), ("addr", addrs[s as usize].clone())],
        );
    }

    let req = |key: &str| -> &String {
        opts.get(key).unwrap_or_else(|| {
            println!("--{key} is required for `{command}`");
            usage();
        })
    };

    match command.as_str() {
        "ping" => {
            cluster.ping_all().unwrap_or_else(|e| fail(e));
            println!("{} servers alive", addrs.len());
        }
        "put" | "gen" => {
            let name = req("name").clone();
            let strip_size: u32 = req("strip-size").parse().unwrap_or_else(|_| fail("bad --strip-size"));
            let policy = opts
                .get("policy")
                .map(|p| parse_policy(p).unwrap_or_else(|| fail(format!("bad --policy {p:?}"))))
                .unwrap_or(LayoutPolicy::RoundRobin);
            let data = if command == "put" {
                std::fs::read(req("input")).unwrap_or_else(|e| fail(format!("reading --input: {e}")))
            } else {
                let width: u64 = req("width").parse().unwrap_or_else(|_| fail("bad --width"));
                let height: u64 = req("height").parse().unwrap_or_else(|_| fail("bad --height"));
                let seed: u64 = opts.get("seed").map_or(42, |s| s.parse().unwrap_or(42));
                workload::fbm_dem(width, height, seed).to_bytes()
            };
            let file = cluster
                .create_file(&name, data.len() as u64, strip_size, policy)
                .unwrap_or_else(|e| fail(e));
            cluster.put_file(file, &data).unwrap_or_else(|e| fail(e));
            println!("stored {name:?} ({} bytes) as file {file}", data.len());
        }
        "info" => {
            let (file, dist) = cluster.lookup(req("name")).unwrap_or_else(|e| fail(e));
            println!(
                "file {file}: {} bytes, strip {} B, {} servers, layout {}",
                dist.file_len,
                dist.strip_size,
                dist.servers,
                dist.policy.name()
            );
        }
        "get" => {
            let (file, _) = cluster.lookup(req("name")).unwrap_or_else(|e| fail(e));
            let data = cluster.read_file(file).unwrap_or_else(|e| fail(e));
            std::fs::write(req("output"), &data).unwrap_or_else(|e| fail(format!("writing --output: {e}")));
            println!("wrote {} bytes", data.len());
            // Tail-tolerance visibility: hedged fetches, replica
            // failovers and retries this read performed, if any.
            print_client_summary(&cluster);
        }
        "exec" => {
            let (file, _) = cluster.lookup(req("name")).unwrap_or_else(|e| fail(e));
            let kernel = req("kernel").clone();
            let width: u64 = req("width").parse().unwrap_or_else(|_| fail("bad --width"));
            let scheme = match req("scheme").as_str() {
                "ts" => NetScheme::Ts,
                "nas" => NetScheme::Nas,
                "das" => NetScheme::Das,
                other => fail(format!("bad --scheme {other:?} (want ts|nas|das)")),
            };
            let out_name = opts
                .get("out")
                .cloned()
                .unwrap_or_else(|| format!("{}.{}.out", req("name"), scheme.name().to_lowercase()));
            let successive = !opts.contains_key("one-shot");
            let report =
                run_net_scheme_opts(&mut cluster, scheme, file, &out_name, &kernel, width, successive)
                    .unwrap_or_else(|e| fail(e));
            println!(
                "{} {} -> {out_name:?}: offloaded={} layout={} fingerprint={:#018x}",
                report.scheme.name(),
                report.kernel,
                report.offloaded,
                report.layout.name(),
                report.output_fingerprint
            );
            println!(
                "  wire bytes: client<->server {}  server<->server {} (redistribution {})",
                report.client_bytes, report.server_bytes, report.redistribution_bytes
            );
            let fetches: u64 = report.exec.iter().map(|e| e.dep_fetches).sum();
            let fetch_bytes: u64 = report.exec.iter().map(|e| e.dep_fetch_bytes).sum();
            if report.offloaded {
                println!("  dependence fetches: {fetches} ({fetch_bytes} bytes)");
            }
            for ev in &report.degradations {
                println!("  degradation: {} ({ev:?})", ev.tag());
            }
        }
        "stats" => {
            for (i, s) in cluster.stats().unwrap_or_else(|e| fail(e)).iter().enumerate() {
                println!(
                    "server {i}: client in/out {}/{}  server in/out {}/{}",
                    s.client_in, s.client_out, s.server_in, s.server_out
                );
            }
            let dumps = cluster.metrics_dump_all().unwrap_or_else(|e| fail(e));
            if opts.contains_key("raw") {
                for (id, text) in &dumps {
                    println!("--- server {id} ---");
                    print!("{text}");
                }
            } else {
                print_registry_summary(&dumps);
            }
            if opts.contains_key("slow") {
                let per_class: u32 = opts
                    .get("per-class")
                    .map_or(4, |v| v.parse().unwrap_or_else(|_| fail("bad --per-class")));
                let slow = cluster.slow_log_all(per_class).unwrap_or_else(|e| fail(e));
                print_slow_log(&slow);
            }
            print_client_summary(&cluster);
        }
        "trace" => {
            let raw = opts.get("id").unwrap_or_else(|| {
                println!("`das trace` needs a trace id (hex)");
                usage();
            });
            let hex = raw.trim_start_matches("0x");
            let id = u64::from_str_radix(hex, 16)
                .unwrap_or_else(|_| fail(format!("bad trace id {raw:?} (want hex)")));
            let dumps = cluster.trace_dump_all(id).unwrap_or_else(|e| fail(e));
            println!("trace {id:016x}");
            print_trace_waterfall(&dumps);
        }
        "reset-stats" => {
            cluster.reset_stats().unwrap_or_else(|e| fail(e));
            println!("counters zeroed");
        }
        "shutdown" => {
            cluster.shutdown_all().unwrap_or_else(|e| fail(e));
            println!("cluster shut down");
        }
        _ => usage(),
    }
}
