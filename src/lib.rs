//! # das — Dynamic Active Storage for High Performance I/O
//!
//! A from-scratch Rust reproduction of *"Dynamic Active Storage for
//! High Performance I/O"* (Chao Chen and Yong Chen, ICPP 2012): an
//! active-storage architecture that analyzes the **data dependence**
//! of offloaded operations, predicts their bandwidth cost, decides
//! dynamically whether to offload, and distributes data so that
//! mutually dependent elements are co-located on storage servers.
//!
//! The workspace contains everything the paper's system needs, built
//! from scratch (see `DESIGN.md` for the inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record):
//!
//! | crate | role |
//! |---|---|
//! | [`sim`] (`das-sim`) | deterministic discrete-event cluster simulator |
//! | [`pfs`] (`das-pfs`) | striped parallel file system with round-robin, grouped and grouped+replicated layouts |
//! | [`kernels`] (`das-kernels`) | flow-routing, flow-accumulation, Gaussian/median filters, slope; synthetic DEM workloads |
//! | [`core`] (`das-core`) | **the paper's contribution**: kernel-features descriptors, bandwidth prediction (Eqs. 1–17), distribution planning, offload decisions |
//! | [`runtime`] (`das-runtime`) | the TS / NAS / DAS evaluation schemes over the simulator |
//! | [`net`] (`das-net`) | the networked service: `dasd` storage daemons + `das` client over real TCP |
//! | [`obs`] (`das-obs`) | dependency-free observability: metrics registry, structured events, trace ids |
//!
//! ## Quickstart
//!
//! ```
//! use das::prelude::*;
//!
//! // A fractal terrain raster (the paper's GIS workload, scaled down).
//! let dem = das::kernels::workload::fbm_dem(256, 256, 42);
//!
//! // Run flow-routing under all three schemes of the paper's
//! // evaluation on a simulated 4+4-node cluster.
//! let cfg = ClusterConfig::small_test();
//! let ts = run_scheme(&cfg, SchemeKind::Ts, &FlowRouting, &dem);
//! let nas = run_scheme(&cfg, SchemeKind::Nas, &FlowRouting, &dem);
//! let das = run_scheme(&cfg, SchemeKind::Das, &FlowRouting, &dem);
//!
//! // Identical results, different costs.
//! assert_eq!(ts.output_fingerprint, nas.output_fingerprint);
//! assert_eq!(ts.output_fingerprint, das.output_fingerprint);
//! assert!(das.exec_time < ts.exec_time);
//! ```

pub use das_core as core;
pub use das_kernels as kernels;
pub use das_net as net;
pub use das_obs as obs;
pub use das_pfs as pfs;
pub use das_runtime as runtime;
pub use das_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use das_core::{
        ActiveStorageClient, Decision, FeatureRegistry, KernelFeatures, PlanOptions,
        RequestOptions, StripingParams,
    };
    pub use das_kernels::{
        flow_accumulation_global, kernel_by_name, FlowAccumulationStep, FlowRouting,
        GaussianFilter, Kernel, MedianFilter, Raster, SlopeAnalysis,
    };
    pub use das_pfs::{LayoutPolicy, PfsCluster, StripeSpec};
    pub use das_runtime::{
        node_sweep, run_mixed, run_pipeline, run_scheme, size_sweep, ClusterConfig, JobSpec,
        PipelineReport, RunReport, SchemeKind,
    };
}
