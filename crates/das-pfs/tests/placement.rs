//! Replica-placement consistency: the failover layer trusts
//! `StripPlacement` to name, for every strip, a primary plus replicas
//! that (a) actually hold the strip under `Layout::holds`, (b) never
//! alias the primary, and (c) sit on the ring neighbors of the
//! primary exactly at group boundaries — across the full `r × D`
//! grid the paper's Section III-D analyzes.

use das_pfs::{Layout, LayoutPolicy, ServerId, StripId};

const STRIPS: u64 = 96;

#[test]
fn replica_servers_consistent_with_primary_across_group_boundaries() {
    for r in [1u64, 2, 4] {
        for d in [2u32, 4, 8] {
            let layout = Layout::new(LayoutPolicy::GroupedReplicated { group: r }, d);
            for s in 0..STRIPS {
                let sid = StripId(s);
                let p = layout.placement(sid);
                assert_eq!(p.strip, sid);
                assert_eq!(
                    p.primary_server,
                    ServerId(((s / r) % u64::from(d)) as u32),
                    "r={r} D={d} strip={s}: primary diverged from Eq. 14"
                );
                // Placement agrees with the layout's own accessors.
                assert_eq!(p.primary_server, layout.primary(sid));
                assert_eq!(p.replica_servers, layout.replicas(sid));
                assert_eq!(p.holders(), layout.holders(sid));

                // Every named holder really holds the strip, and the
                // primary leads the failover order.
                assert_eq!(p.holders()[0], p.primary_server);
                for srv in p.holders() {
                    assert!(
                        layout.holds(srv, sid),
                        "r={r} D={d} strip={s}: holder {srv:?} does not hold"
                    );
                }

                // Replicas never alias the primary and are unique.
                for (i, rep) in p.replica_servers.iter().enumerate() {
                    assert_ne!(*rep, p.primary_server, "r={r} D={d} strip={s}");
                    assert!(
                        !p.replica_servers[..i].contains(rep),
                        "r={r} D={d} strip={s}: duplicate replica"
                    );
                }

                // Boundary strips replicate onto ring neighbors; the
                // interior carries no replicas (paper Fig. 9).
                let pos = s % r;
                let prev = ServerId((p.primary_server.0 + d - 1) % d);
                let next = ServerId((p.primary_server.0 + 1) % d);
                let mut expected = Vec::new();
                if pos == 0 && prev != p.primary_server {
                    expected.push(prev);
                }
                if pos == r - 1 && next != p.primary_server && !expected.contains(&next) {
                    expected.push(next);
                }
                assert_eq!(
                    p.replica_servers, expected,
                    "r={r} D={d} strip={s}: boundary replicas wrong"
                );
            }
        }
    }
}

#[test]
fn group_two_replicates_every_strip() {
    // The chaos suite's failover scenarios lean on this: with r == 2
    // every strip is a group boundary, so any single server can die
    // and every strip still has a live holder.
    for d in [2u32, 4, 8] {
        let layout = Layout::new(LayoutPolicy::GroupedReplicated { group: 2 }, d);
        for s in 0..STRIPS {
            let p = layout.placement(StripId(s));
            assert!(
                !p.replica_servers.is_empty(),
                "D={d} strip={s}: no replica — single failure would lose the strip"
            );
        }
    }
}

#[test]
fn unreplicated_policies_have_empty_replica_servers() {
    for policy in [LayoutPolicy::RoundRobin, LayoutPolicy::Grouped { group: 4 }] {
        let layout = Layout::new(policy, 4);
        for s in 0..STRIPS {
            let p = layout.placement(StripId(s));
            assert!(p.replica_servers.is_empty());
            assert_eq!(p.holders(), vec![p.primary_server]);
        }
    }
}
