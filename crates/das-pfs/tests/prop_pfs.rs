//! Property tests for the parallel file system substrate: placement is
//! a partition, replication matches the paper's rule, reads/writes
//! round-trip under every layout, and redistribution is content-
//! preserving.

use das_pfs::{Layout, LayoutPolicy, PfsCluster, ServerId, StripId, StripeSpec};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = LayoutPolicy> {
    prop_oneof![
        Just(LayoutPolicy::RoundRobin),
        (1u64..8).prop_map(|group| LayoutPolicy::Grouped { group }),
        (1u64..8).prop_map(|group| LayoutPolicy::GroupedReplicated { group }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn primary_placement_is_a_partition(
        policy in arb_policy(),
        servers in 1u32..9,
        strips in 0u64..200,
    ) {
        let layout = Layout::new(policy, servers);
        let mut owners = vec![0u32; strips as usize];
        for srv in 0..servers {
            for s in layout.primary_strips(ServerId(srv), strips) {
                owners[s.0 as usize] += 1;
            }
        }
        prop_assert!(owners.iter().all(|&c| c == 1), "each strip exactly one primary");
    }

    #[test]
    fn replicas_never_on_primary_and_adjacent(
        group in 1u64..8,
        servers in 2u32..9,
        strip in 0u64..500,
    ) {
        let layout = Layout::new(LayoutPolicy::GroupedReplicated { group }, servers);
        let strip = StripId(strip);
        let primary = layout.primary(strip);
        for rep in layout.replicas(strip) {
            prop_assert_ne!(rep, primary);
            // Replicas land on ring neighbors of the primary only.
            let d = servers;
            let prev = ServerId((primary.0 + d - 1) % d);
            let next = ServerId((primary.0 + 1) % d);
            prop_assert!(rep == prev || rep == next, "replica {:?} not adjacent", rep);
        }
        // Interior strips have no replicas.
        let pos = strip.0 % group;
        if pos != 0 && pos != group - 1 {
            prop_assert!(layout.replicas(strip).is_empty());
        }
    }

    #[test]
    fn holds_is_consistent_with_holders(
        policy in arb_policy(),
        servers in 1u32..9,
        strip in 0u64..300,
    ) {
        let layout = Layout::new(policy, servers);
        let strip = StripId(strip);
        let holders = layout.holders(strip);
        for srv in 0..servers {
            let sid = ServerId(srv);
            prop_assert_eq!(layout.holds(sid, strip), holders.contains(&sid));
        }
    }

    #[test]
    fn read_returns_written_bytes(
        policy in arb_policy(),
        servers in 1u32..7,
        strip_size in 16usize..200,
        len in 0usize..4_000,
        seed in any::<u64>(),
    ) {
        let mut data = vec![0u8; len];
        let mut state = seed;
        for b in &mut data {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (state >> 56) as u8;
        }
        let mut pfs = PfsCluster::new(servers);
        let f = pfs.create("f", &data, StripeSpec::new(strip_size), policy).unwrap();
        pfs.verify(f).unwrap();
        prop_assert_eq!(pfs.file_bytes(f).unwrap(), data.clone());
        if len > 0 {
            let mid = len as u64 / 2;
            let (got, _) = pfs.read(f, mid / 2, mid).unwrap();
            prop_assert_eq!(&got[..], &data[(mid / 2) as usize..(mid / 2 + mid) as usize]);
        }
    }

    #[test]
    fn writes_preserve_replica_consistency(
        group in 1u64..6,
        servers in 2u32..7,
        patch_off in 0u64..900,
        patch_len in 1usize..600,
    ) {
        let data: Vec<u8> = (0..2_000).map(|i| (i % 256) as u8).collect();
        let mut pfs = PfsCluster::new(servers);
        let f = pfs
            .create("f", &data, StripeSpec::new(128), LayoutPolicy::GroupedReplicated { group })
            .unwrap();
        let off = patch_off.min(data.len() as u64 - 1);
        let len = patch_len.min(data.len() - off as usize);
        let patch = vec![0x5A; len];
        pfs.write(f, off, &patch).unwrap();
        pfs.verify(f).unwrap();
        let mut expected = data.clone();
        expected[off as usize..off as usize + len].copy_from_slice(&patch);
        prop_assert_eq!(pfs.file_bytes(f).unwrap(), expected);
    }

    #[test]
    fn redistribution_roundtrip_preserves_content(
        from in arb_policy(),
        to in arb_policy(),
        servers in 1u32..7,
        len in 1usize..5_000,
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
        let mut pfs = PfsCluster::new(servers);
        let f = pfs.create("f", &data, StripeSpec::new(100), from).unwrap();
        pfs.redistribute(f, to).unwrap();
        pfs.verify(f).unwrap();
        prop_assert_eq!(pfs.file_bytes(f).unwrap(), data.clone());
        pfs.redistribute(f, from).unwrap();
        pfs.verify(f).unwrap();
        prop_assert_eq!(pfs.file_bytes(f).unwrap(), data);
    }

    #[test]
    fn capacity_overhead_bounded_by_two_over_r(
        group in 1u64..9,
        servers in 3u32..9,
        strips in 1u64..120,
    ) {
        let layout = Layout::new(LayoutPolicy::GroupedReplicated { group }, servers);
        let copies = layout.total_copies(strips);
        // Overhead never exceeds 2/r (boundary groups may have fewer
        // replicas, never more).
        let max = strips + 2 * strips.div_ceil(group);
        prop_assert!(copies <= max, "copies {copies} > bound {max}");
        prop_assert!(copies >= strips);
    }

    #[test]
    fn local_file_views_cover_whole_file(
        policy in arb_policy(),
        servers in 1u32..7,
        len in 0usize..4_000,
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
        let mut pfs = PfsCluster::new(servers);
        let f = pfs.create("f", &data, StripeSpec::new(64), policy).unwrap();
        let mut total = 0u64;
        for srv in 0..servers {
            let server = pfs.server(ServerId(srv)).unwrap();
            let view = server.local_file(f);
            // Each view's bytes match the corresponding strips.
            let got = view.read(0, view.len()).unwrap();
            let mut expected = Vec::new();
            for &s in view.strips() {
                let meta = pfs.meta(f).unwrap();
                let start = meta.spec.strip_start(s) as usize;
                let slen = meta.spec.strip_len(s, meta.len);
                expected.extend_from_slice(&data[start..start + slen]);
            }
            prop_assert_eq!(got, expected);
            total += view.len();
        }
        prop_assert_eq!(total, len as u64, "primary strips partition the bytes");
    }
}
