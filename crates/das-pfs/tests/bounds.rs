//! Offset/length edge cases at strip and file boundaries: every
//! out-of-range access must return a typed [`PfsError::OutOfBounds`]
//! — never a panic, wrap-around acceptance, or silent truncation.

use das_pfs::{LayoutPolicy, PfsCluster, PfsError, ServerId, StripeSpec};

const STRIP: usize = 8;
const FILE_LEN: u64 = 20; // 2 full strips + a 4-byte tail strip

fn cluster() -> (PfsCluster, das_pfs::FileId) {
    let mut pfs = PfsCluster::new(3);
    let data: Vec<u8> = (0..FILE_LEN as u8).collect();
    let id = pfs
        .create("f", &data, StripeSpec::new(STRIP), LayoutPolicy::RoundRobin)
        .unwrap();
    (pfs, id)
}

fn assert_oob<T: std::fmt::Debug>(r: Result<T, PfsError>, offset: u64, len: u64) {
    match r {
        Err(PfsError::OutOfBounds { offset: o, len: l, file_len }) => {
            assert_eq!((o, l, file_len), (offset, len, FILE_LEN));
        }
        other => panic!("expected OutOfBounds for [{offset}, +{len}), got {other:?}"),
    }
}

#[test]
fn reads_at_exact_boundaries_succeed() {
    let (pfs, id) = cluster();
    // Whole file; empty read at start, interior, and EOF.
    assert_eq!(pfs.read(id, 0, FILE_LEN).unwrap().0.len(), FILE_LEN as usize);
    assert!(pfs.read(id, 0, 0).unwrap().0.is_empty());
    assert!(pfs.read(id, 7, 0).unwrap().0.is_empty());
    assert!(pfs.read(id, FILE_LEN, 0).unwrap().0.is_empty());
    // Last byte; read straddling the final (short) strip boundary.
    assert_eq!(pfs.read(id, FILE_LEN - 1, 1).unwrap().0, vec![19]);
    assert_eq!(pfs.read(id, 15, 5).unwrap().0, vec![15, 16, 17, 18, 19]);
    // Exactly one strip, aligned both ends.
    assert_eq!(pfs.read(id, 8, 8).unwrap().0, (8..16).collect::<Vec<u8>>());
}

#[test]
fn reads_past_eof_are_typed_errors() {
    let (pfs, id) = cluster();
    assert_oob(pfs.read(id, 0, FILE_LEN + 1), 0, FILE_LEN + 1);
    assert_oob(pfs.read(id, FILE_LEN, 1), FILE_LEN, 1);
    assert_oob(pfs.read(id, FILE_LEN + 5, 0), FILE_LEN + 5, 0);
    assert_oob(pfs.read(id, FILE_LEN - 1, 2), FILE_LEN - 1, 2);
    // One past a strip boundary crossing EOF on the tail strip.
    assert_oob(pfs.read(id, 16, 5), 16, 5);
}

#[test]
fn read_offset_len_overflow_is_out_of_bounds_not_wraparound() {
    let (pfs, id) = cluster();
    // offset + len wraps u64; a naive `offset + len > file_len` check
    // would accept this in release builds.
    assert_oob(pfs.read(id, u64::MAX, 2), u64::MAX, 2);
    assert_oob(pfs.read(id, 2, u64::MAX), 2, u64::MAX);
    assert_oob(pfs.read(id, u64::MAX, u64::MAX), u64::MAX, u64::MAX);
}

#[test]
fn writes_at_exact_boundaries_succeed_and_persist() {
    let (mut pfs, id) = cluster();
    // Rewrite the last byte, then a range straddling strips 1|2.
    pfs.write(id, FILE_LEN - 1, &[0xAA]).unwrap();
    pfs.write(id, 14, &[1, 2, 3, 4]).unwrap();
    // Zero-length writes are no-ops anywhere in range, including EOF.
    pfs.write(id, 0, &[]).unwrap();
    pfs.write(id, FILE_LEN, &[]).unwrap();
    let (data, _) = pfs.read(id, 0, FILE_LEN).unwrap();
    assert_eq!(&data[14..18], &[1, 2, 3, 4]);
    assert_eq!(data[19], 0xAA);
    assert_eq!(data[13], 13); // neighbours untouched
    assert_eq!(data[18], 18);
}

#[test]
fn writes_past_eof_are_typed_errors_and_mutate_nothing() {
    let (mut pfs, id) = cluster();
    assert_oob(pfs.write(id, FILE_LEN, &[9]), FILE_LEN, 1);
    assert_oob(pfs.write(id, FILE_LEN - 1, &[9, 9]), FILE_LEN - 1, 2);
    assert_oob(pfs.write(id, u64::MAX, &[9, 9]), u64::MAX, 2);
    let (data, _) = pfs.read(id, 0, FILE_LEN).unwrap();
    assert_eq!(data, (0..FILE_LEN as u8).collect::<Vec<u8>>());
}

#[test]
fn degraded_reads_share_the_same_bounds_contract() {
    let (pfs, id) = cluster();
    let down = [ServerId(9)]; // not a holder; degraded path, full data
    assert_eq!(pfs.read_degraded(0, id, 15, 5, &down).unwrap().0.len(), 5);
    assert_oob(pfs.read_degraded(0, id, FILE_LEN, 1, &down), FILE_LEN, 1);
    assert_oob(pfs.read_degraded(0, id, u64::MAX, 2, &down), u64::MAX, 2);
}

#[test]
fn local_file_view_bounds_match_cluster_semantics() {
    let (pfs, id) = cluster();
    // Server 0 holds strips 0 and... round-robin over 3 servers: strips
    // 0..3 → servers 0,1,2; server 0 holds only strip 0 (8 bytes).
    let view = pfs.server(ServerId(0)).unwrap().local_file(id);
    let local_len = view.len();
    assert_eq!(local_len, 8);
    assert_eq!(view.read(0, local_len).unwrap(), (0..8).collect::<Vec<u8>>());
    assert!(view.read(local_len, 0).unwrap().is_empty());
    assert!(matches!(
        view.read(local_len, 1),
        Err(PfsError::OutOfBounds { offset: 8, len: 1, file_len: 8 })
    ));
    assert!(matches!(
        view.read(u64::MAX, 2),
        Err(PfsError::OutOfBounds { .. })
    ));
}
