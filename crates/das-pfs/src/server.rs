//! A storage server: the strip store and the local-file abstraction.
//!
//! The paper's architecture (Fig. 2) gives each storage node a *Local
//! I/O API* that "abstracts local strips as a file and reads local data
//! for Processing Kernels". [`LocalFileView`] is that abstraction: the
//! ordered sequence of a server's primary strips presented as one
//! contiguous byte stream, so a kernel can run over local data without
//! knowing the striping.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::error::PfsError;
use crate::layout::ServerId;
use crate::stripe::StripId;
use crate::FileId;

/// A copy of a strip held by a server.
#[derive(Debug, Clone)]
struct StoredStrip {
    data: Bytes,
    /// True when this is the primary copy rather than a replica.
    primary: bool,
}

/// One storage server: holds strip copies for any number of files and
/// serves local reads/writes.
#[derive(Debug)]
pub struct StorageServer {
    id: ServerId,
    strips: BTreeMap<(FileId, StripId), StoredStrip>,
}

impl StorageServer {
    /// Create an empty server.
    pub fn new(id: ServerId) -> Self {
        StorageServer { id, strips: BTreeMap::new() }
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Store (or overwrite) a strip copy.
    pub fn store(&mut self, file: FileId, strip: StripId, data: Bytes, primary: bool) {
        self.strips.insert((file, strip), StoredStrip { data, primary });
    }

    /// Remove a strip copy; returns whether it was present.
    pub fn evict(&mut self, file: FileId, strip: StripId) -> bool {
        self.strips.remove(&(file, strip)).is_some()
    }

    /// Whether the server holds a copy (primary or replica).
    pub fn holds(&self, file: FileId, strip: StripId) -> bool {
        self.strips.contains_key(&(file, strip))
    }

    /// Whether the held copy is the primary.
    pub fn holds_primary(&self, file: FileId, strip: StripId) -> bool {
        self.strips
            .get(&(file, strip))
            .is_some_and(|s| s.primary)
    }

    /// Read a strip copy.
    pub fn read_strip(&self, file: FileId, strip: StripId) -> Result<Bytes, PfsError> {
        self.strips
            .get(&(file, strip))
            .map(|s| s.data.clone())
            .ok_or(PfsError::StripNotLocal { server: self.id, strip })
    }

    /// Bytes stored on this server for `file` (primaries + replicas) —
    /// capacity accounting for the `2/r` overhead measurements.
    pub fn stored_bytes(&self, file: FileId) -> u64 {
        self.strips
            .range((file, StripId(0))..=(file, StripId(u64::MAX)))
            .map(|(_, s)| s.data.len() as u64)
            .sum()
    }

    /// The server's primary strips of `file`, in strip order.
    pub fn primary_strips(&self, file: FileId) -> Vec<StripId> {
        self.strips
            .range((file, StripId(0))..=(file, StripId(u64::MAX)))
            .filter(|(_, s)| s.primary)
            .map(|(&(_, strip), _)| strip)
            .collect()
    }

    /// All strips (primary and replica) of `file` held here, in order.
    pub fn all_strips(&self, file: FileId) -> Vec<StripId> {
        self.strips
            .range((file, StripId(0))..=(file, StripId(u64::MAX)))
            .map(|(&(_, strip), _)| strip)
            .collect()
    }

    /// The paper's local I/O abstraction: this server's primary strips
    /// of `file` as one logically contiguous local file.
    pub fn local_file(&self, file: FileId) -> LocalFileView<'_> {
        let strips = self.primary_strips(file);
        let mut offsets = Vec::with_capacity(strips.len() + 1);
        let mut total = 0u64;
        offsets.push(0);
        for &s in &strips {
            total += self
                .strips
                .get(&(file, s))
                .expect("primary strip present")
                .data
                .len() as u64;
            offsets.push(total);
        }
        LocalFileView { server: self, file, strips, offsets }
    }
}

/// A server's primary strips of one file, presented as a contiguous
/// byte stream (paper Fig. 2, "Local I/O API").
#[derive(Debug)]
pub struct LocalFileView<'a> {
    server: &'a StorageServer,
    file: FileId,
    strips: Vec<StripId>,
    /// Prefix sums: `offsets[i]` is the local offset of `strips[i]`;
    /// last entry is the total length.
    offsets: Vec<u64>,
}

impl LocalFileView<'_> {
    /// Total length of the local file in bytes.
    pub fn len(&self) -> u64 {
        *self.offsets.last().expect("offsets non-empty")
    }

    /// True when this server holds no primary strip of the file.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The strips backing the view, in local order.
    pub fn strips(&self) -> &[StripId] {
        &self.strips
    }

    /// The local byte offset at which `strip` begins, if present.
    pub fn offset_of(&self, strip: StripId) -> Option<u64> {
        self.strips
            .iter()
            .position(|&s| s == strip)
            .map(|i| self.offsets[i])
    }

    /// Read `len` bytes at local offset `offset`, gathering across
    /// strip boundaries.
    pub fn read(&self, offset: u64, len: u64) -> Result<Vec<u8>, PfsError> {
        PfsError::check_range(offset, len, self.len())?;
        let mut out = Vec::with_capacity(usize::try_from(len).expect("len fits usize"));
        // Find the first strip containing `offset` by binary search on
        // the prefix sums.
        let mut idx = match self.offsets.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        // `offsets` has one more entry than `strips`; when offset == len
        // and len == 0 we never enter the loop below.
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let strip = self.strips[idx];
            let data = self
                .server
                .read_strip(self.file, strip)
                .expect("view strips are present");
            let strip_start = self.offsets[idx];
            let begin = usize::try_from(pos - strip_start).expect("in-strip offset");
            let take = usize::try_from((end - pos).min(data.len() as u64 - (pos - strip_start)))
                .expect("in-strip len");
            out.extend_from_slice(&data[begin..begin + take]);
            pos += take as u64;
            idx += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file() -> FileId {
        FileId(0)
    }

    #[test]
    fn store_read_evict_roundtrip() {
        let mut srv = StorageServer::new(ServerId(0));
        srv.store(file(), StripId(3), Bytes::from_static(b"abc"), true);
        assert!(srv.holds(file(), StripId(3)));
        assert_eq!(&srv.read_strip(file(), StripId(3)).unwrap()[..], b"abc");
        assert!(srv.evict(file(), StripId(3)));
        assert!(!srv.holds(file(), StripId(3)));
        assert_eq!(
            srv.read_strip(file(), StripId(3)).unwrap_err(),
            PfsError::StripNotLocal { server: ServerId(0), strip: StripId(3) }
        );
    }

    #[test]
    fn replicas_do_not_appear_in_local_file() {
        let mut srv = StorageServer::new(ServerId(1));
        srv.store(file(), StripId(0), Bytes::from_static(b"0000"), true);
        srv.store(file(), StripId(1), Bytes::from_static(b"1111"), false); // replica
        srv.store(file(), StripId(2), Bytes::from_static(b"2222"), true);
        let view = srv.local_file(file());
        assert_eq!(view.strips(), &[StripId(0), StripId(2)]);
        assert_eq!(view.len(), 8);
        assert_eq!(view.read(0, 8).unwrap(), b"00002222");
        assert_eq!(srv.all_strips(file()).len(), 3);
    }

    #[test]
    fn local_read_crosses_strip_boundary() {
        let mut srv = StorageServer::new(ServerId(0));
        srv.store(file(), StripId(0), Bytes::from_static(b"hello"), true);
        srv.store(file(), StripId(5), Bytes::from_static(b"world"), true);
        let view = srv.local_file(file());
        assert_eq!(view.read(3, 4).unwrap(), b"lowo");
        assert_eq!(view.offset_of(StripId(5)), Some(5));
        assert_eq!(view.offset_of(StripId(1)), None);
    }

    #[test]
    fn local_read_out_of_bounds_errors() {
        let mut srv = StorageServer::new(ServerId(0));
        srv.store(file(), StripId(0), Bytes::from_static(b"xy"), true);
        let view = srv.local_file(file());
        assert!(matches!(
            view.read(1, 5),
            Err(PfsError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn stored_bytes_counts_replicas_too() {
        let mut srv = StorageServer::new(ServerId(0));
        srv.store(file(), StripId(0), Bytes::from_static(b"aaaa"), true);
        srv.store(file(), StripId(9), Bytes::from_static(b"bb"), false);
        assert_eq!(srv.stored_bytes(file()), 6);
        // Another file's strips are not counted.
        srv.store(FileId(1), StripId(0), Bytes::from_static(b"cccccc"), true);
        assert_eq!(srv.stored_bytes(file()), 6);
        assert_eq!(srv.stored_bytes(FileId(1)), 6);
    }

    #[test]
    fn empty_view() {
        let srv = StorageServer::new(ServerId(0));
        let view = srv.local_file(file());
        assert!(view.is_empty());
        assert_eq!(view.read(0, 0).unwrap(), Vec::<u8>::new());
    }
}
