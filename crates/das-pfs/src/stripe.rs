//! Strip arithmetic: how a byte stream is cut into strips.
//!
//! Paper Fig. 4 shows the logical organization: a file is a 1-D byte
//! array divided into equal strips (the last may be partial). Eq. 1 of
//! the paper computes the strip of the `i`-th element as
//! `strip(i) = i·E / strip_size`; this module supplies that arithmetic
//! at byte granularity (element granularity lives in `das-core`, which
//! knows the element size `E`).

use std::fmt;

/// Index of a strip within a file (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StripId(pub u64);

impl StripId {
    /// Raw index.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for StripId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "strip{}", self.0)
    }
}

/// Striping parameters of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeSpec {
    /// Bytes per strip. PVFS2's default, 64 KiB, is the workspace
    /// default as well.
    pub strip_size: usize,
}

/// PVFS2's default strip size (64 KiB), used throughout the paper.
pub const DEFAULT_STRIP_SIZE: usize = 64 * 1024;

impl Default for StripeSpec {
    fn default() -> Self {
        StripeSpec::new(DEFAULT_STRIP_SIZE)
    }
}

impl StripeSpec {
    /// Create a spec with the given strip size.
    ///
    /// # Panics
    /// Panics if `strip_size == 0`.
    pub fn new(strip_size: usize) -> Self {
        assert!(strip_size > 0, "strip size must be positive");
        StripeSpec { strip_size }
    }

    /// Strip containing byte `offset` (paper Eq. 1 at byte granularity).
    pub fn strip_of_byte(&self, offset: u64) -> StripId {
        StripId(offset / self.strip_size as u64)
    }

    /// Number of strips needed for a file of `len` bytes (0 for an
    /// empty file).
    pub fn strip_count(&self, len: u64) -> u64 {
        len.div_ceil(self.strip_size as u64)
    }

    /// Byte offset at which `strip` begins.
    pub fn strip_start(&self, strip: StripId) -> u64 {
        strip.0 * self.strip_size as u64
    }

    /// Length in bytes of `strip` in a file of `len` bytes (the final
    /// strip may be partial; strips past the end are empty).
    pub fn strip_len(&self, strip: StripId, len: u64) -> usize {
        let start = self.strip_start(strip);
        if start >= len {
            0
        } else {
            usize::try_from((len - start).min(self.strip_size as u64)).expect("strip fits usize")
        }
    }

    /// The strips overlapping the byte range `[offset, offset + count)`,
    /// with the in-strip subrange each contributes.
    pub fn strips_for_range(&self, offset: u64, count: u64) -> Vec<StripRange> {
        if count == 0 {
            return Vec::new();
        }
        let first = self.strip_of_byte(offset);
        let last = self.strip_of_byte(offset + count - 1);
        let mut out = Vec::with_capacity(usize::try_from(last.0 - first.0 + 1).unwrap_or(1));
        for s in first.0..=last.0 {
            let strip = StripId(s);
            let strip_start = self.strip_start(strip);
            let begin = offset.max(strip_start) - strip_start;
            let end = (offset + count).min(strip_start + self.strip_size as u64) - strip_start;
            out.push(StripRange {
                strip,
                start: usize::try_from(begin).expect("in-strip offset fits usize"),
                len: usize::try_from(end - begin).expect("in-strip len fits usize"),
            });
        }
        out
    }
}

/// A contiguous byte subrange within one strip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripRange {
    /// The strip.
    pub strip: StripId,
    /// Offset of the subrange within the strip.
    pub start: usize,
    /// Length of the subrange.
    pub len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_of_byte_matches_eq1() {
        let spec = StripeSpec::new(100);
        assert_eq!(spec.strip_of_byte(0), StripId(0));
        assert_eq!(spec.strip_of_byte(99), StripId(0));
        assert_eq!(spec.strip_of_byte(100), StripId(1));
        assert_eq!(spec.strip_of_byte(250), StripId(2));
    }

    #[test]
    fn strip_count_rounds_up() {
        let spec = StripeSpec::new(100);
        assert_eq!(spec.strip_count(0), 0);
        assert_eq!(spec.strip_count(1), 1);
        assert_eq!(spec.strip_count(100), 1);
        assert_eq!(spec.strip_count(101), 2);
    }

    #[test]
    fn partial_final_strip_length() {
        let spec = StripeSpec::new(100);
        assert_eq!(spec.strip_len(StripId(0), 250), 100);
        assert_eq!(spec.strip_len(StripId(2), 250), 50);
        assert_eq!(spec.strip_len(StripId(3), 250), 0);
    }

    #[test]
    fn range_decomposition_covers_exactly() {
        let spec = StripeSpec::new(100);
        let parts = spec.strips_for_range(150, 200); // bytes 150..350
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], StripRange { strip: StripId(1), start: 50, len: 50 });
        assert_eq!(parts[1], StripRange { strip: StripId(2), start: 0, len: 100 });
        assert_eq!(parts[2], StripRange { strip: StripId(3), start: 0, len: 50 });
        let total: usize = parts.iter().map(|p| p.len).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn empty_range_decomposes_to_nothing() {
        let spec = StripeSpec::new(100);
        assert!(spec.strips_for_range(42, 0).is_empty());
    }

    #[test]
    fn single_byte_range() {
        let spec = StripeSpec::new(64);
        let parts = spec.strips_for_range(64, 1);
        assert_eq!(parts, vec![StripRange { strip: StripId(1), start: 0, len: 1 }]);
    }

    #[test]
    #[should_panic(expected = "strip size must be positive")]
    fn zero_strip_size_rejected() {
        let _ = StripeSpec::new(0);
    }

    #[test]
    fn default_is_pvfs2_64k() {
        assert_eq!(StripeSpec::default().strip_size, 64 * 1024);
    }
}
