//! Error type for parallel-file-system operations.

use std::fmt;

use crate::layout::ServerId;
use crate::stripe::StripId;
use crate::FileId;

/// Errors from [`crate::PfsCluster`] and [`crate::StorageServer`]
/// operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfsError {
    /// No file with this id.
    NoSuchFile(FileId),
    /// A file with this name already exists.
    DuplicateName(String),
    /// Byte range extends past the end of the file.
    OutOfBounds {
        /// Offending offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual file size.
        file_len: u64,
    },
    /// Server index ≥ cluster size.
    NoSuchServer(ServerId),
    /// The server does not hold a copy of the strip.
    StripNotLocal {
        /// The server queried.
        server: ServerId,
        /// The missing strip.
        strip: StripId,
    },
    /// Write length does not match the strip's length.
    StripLengthMismatch {
        /// The strip written.
        strip: StripId,
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
}

impl PfsError {
    /// Validate that `[offset, offset+len)` lies within a file of
    /// `file_len` bytes, treating `offset + len` overflow as out of
    /// bounds rather than wrapping (which in release mode would
    /// silently accept absurd ranges).
    pub fn check_range(offset: u64, len: u64, file_len: u64) -> Result<(), PfsError> {
        match offset.checked_add(len) {
            Some(end) if end <= file_len => Ok(()),
            _ => Err(PfsError::OutOfBounds { offset, len, file_len }),
        }
    }
}

impl fmt::Display for PfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfsError::NoSuchFile(id) => write!(f, "no such file: {id:?}"),
            PfsError::DuplicateName(name) => write!(f, "file name already exists: {name}"),
            PfsError::OutOfBounds { offset, len, file_len } => write!(
                f,
                "range [{offset}, {offset}+{len}) out of bounds for file of {file_len} bytes"
            ),
            PfsError::NoSuchServer(s) => write!(f, "no such server: {}", s.0),
            PfsError::StripNotLocal { server, strip } => {
                write!(f, "server {} does not hold {strip}", server.0)
            }
            PfsError::StripLengthMismatch { strip, expected, got } => {
                write!(f, "{strip}: expected {expected} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for PfsError {}
