//! # das-pfs — a from-scratch striped parallel file system substrate
//!
//! The DAS paper (Chen & Chen, ICPP 2012) is built on a parallel file
//! system — its prototype targets PVFS2 and its experiments ran on
//! Lustre. Rust has no such ecosystem, so this crate reimplements the
//! slice of parallel-file-system behaviour the paper depends on:
//!
//! * files are split into fixed-size **strips** (PVFS2's default of
//!   64 KiB is ours too) and distributed over `D` storage servers;
//! * the default distribution is **round-robin** (paper Figs. 4–5);
//! * the paper's improved distribution — `r` successive strips grouped
//!   on one server with the group's boundary strips **replicated** onto
//!   the neighboring servers (paper Figs. 7–9, Eqs. 14–16, capacity
//!   overhead `2/r`) — is the [`LayoutPolicy::GroupedReplicated`]
//!   layout;
//! * clients can query **distribution information** (strip size, server
//!   count, layout) exactly as the DAS bandwidth predictor requires
//!   (paper Section III-C: *"The data distribution information and
//!   strip size can be obtained from parallel file systems"*);
//! * each server exposes its local strips as a logically contiguous
//!   **local file** for processing kernels (paper Section III-A:
//!   *"The local I/O API … abstracts local strips as a file"*);
//! * files can be **redistributed** between layouts, the mechanism DAS
//!   uses to arrange data before offloading (paper Fig. 3,
//!   "Reconfig Parallel File System").
//!
//! Strips hold real bytes ([`bytes::Bytes`]), so the three evaluation
//! schemes in `das-runtime` produce genuinely comparable outputs and
//! replica-consistency bugs are caught by tests rather than hidden by a
//! purely analytical model.
//!
//! ## Example
//!
//! ```
//! use das_pfs::{PfsCluster, StripeSpec, LayoutPolicy};
//!
//! let mut pfs = PfsCluster::new(4); // 4 storage servers
//! let data: Vec<u8> = (0..300_000u32).map(|i| i as u8).collect();
//! let spec = StripeSpec::new(64 * 1024);
//! let file = pfs.create("dem.raw", &data, spec, LayoutPolicy::RoundRobin).unwrap();
//!
//! // Clients read arbitrary ranges; the cluster gathers across servers.
//! let (bytes, _traffic) = pfs.read(file, 100_000, 1234).unwrap();
//! assert_eq!(&bytes[..], &data[100_000..101_234]);
//!
//! // DAS reconfigures the layout to group strips and replicate borders.
//! let moved = pfs.redistribute(file, LayoutPolicy::GroupedReplicated { group: 4 }).unwrap();
//! assert!(moved.bytes_moved() > 0);
//! assert_eq!(pfs.read(file, 100_000, 1234).unwrap().0, bytes);
//! ```


mod cluster;
mod error;
mod layout;
mod server;
mod stripe;
mod traffic;

pub use cluster::{BalanceReport, DistributionInfo, FileId, FileMeta, PfsCluster, ServerLoad};
pub use error::PfsError;
pub use layout::{Layout, LayoutPolicy, ServerId, StripPlacement};
pub use server::{LocalFileView, StorageServer};
pub use stripe::{StripId, StripRange, StripeSpec};
pub use traffic::{Endpoint, TrafficLog, TransferKind, TransferRec};
