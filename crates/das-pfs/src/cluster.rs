//! The cluster: servers + file metadata + client operations.
//!
//! [`PfsCluster`] is the top-level object: it owns the storage servers,
//! tracks per-file striping and layout, and implements the client-side
//! gather/scatter paths, replica-consistent writes, the distribution
//! information query the DAS predictor relies on, and layout
//! redistribution (paper Fig. 3, "Reconfig Parallel File System").

use std::collections::HashMap;

use bytes::Bytes;

use crate::error::PfsError;
use crate::layout::{Layout, LayoutPolicy, ServerId};
use crate::server::StorageServer;
use crate::stripe::{StripId, StripeSpec};
use crate::traffic::{Endpoint, TrafficLog, TransferKind, TransferRec};

/// Identifier of a file within one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Metadata of a stored file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// The file's id.
    pub id: FileId,
    /// Human-readable name (unique per cluster).
    pub name: String,
    /// Length in bytes.
    pub len: u64,
    /// Striping parameters.
    pub spec: StripeSpec,
    /// Current distribution.
    pub layout: Layout,
}

impl FileMeta {
    /// Number of strips in the file.
    pub fn strip_count(&self) -> u64 {
        self.spec.strip_count(self.len)
    }
}

/// What a client can learn about a file's distribution — the inputs of
/// the paper's bandwidth prediction model (Section III-C: strip size,
/// server count, placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributionInfo {
    /// Strip size in bytes.
    pub strip_size: usize,
    /// Number of storage servers `D`.
    pub servers: u32,
    /// The placement policy (including group size `r`).
    pub policy: LayoutPolicy,
    /// File length in bytes.
    pub file_len: u64,
}

/// One server's share of a file (see [`PfsCluster::balance_report`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerLoad {
    /// The server.
    pub server: ServerId,
    /// Primary strips (the active-storage work assignment).
    pub primary_strips: u64,
    /// Replica strips held for neighbors.
    pub replica_strips: u64,
    /// Total bytes stored, replicas included.
    pub stored_bytes: u64,
}

/// Placement statistics per server for one file.
#[derive(Debug, Clone)]
pub struct BalanceReport {
    /// One entry per server, in server order.
    pub per_server: Vec<ServerLoad>,
    /// The file's logical size.
    pub file_len: u64,
}

impl BalanceReport {
    /// Ratio of the busiest server's primary-strip count to the mean
    /// (1.0 = perfectly balanced; the quantity the planner bounds).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.per_server.iter().map(|s| s.primary_strips).sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.per_server.len() as f64;
        let max = self.per_server.iter().map(|s| s.primary_strips).max().unwrap_or(0);
        max as f64 / mean
    }

    /// Total stored bytes over logical file bytes (1.0 = no
    /// replication; `1 + 2/r` for the DAS layout).
    pub fn storage_factor(&self) -> f64 {
        let stored: u64 = self.per_server.iter().map(|s| s.stored_bytes).sum();
        if self.file_len == 0 {
            1.0
        } else {
            stored as f64 / self.file_len as f64
        }
    }
}

/// A simulated parallel-file-system deployment.
#[derive(Debug)]
pub struct PfsCluster {
    servers: Vec<StorageServer>,
    files: Vec<FileMeta>,
    by_name: HashMap<String, FileId>,
}

impl PfsCluster {
    /// Create a cluster of `servers` empty storage servers.
    ///
    /// # Panics
    /// Panics if `servers == 0`.
    pub fn new(servers: u32) -> Self {
        assert!(servers > 0, "need at least one storage server");
        PfsCluster {
            servers: (0..servers).map(|i| StorageServer::new(ServerId(i))).collect(),
            files: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Number of storage servers `D`.
    pub fn server_count(&self) -> u32 {
        self.servers.len() as u32
    }

    /// Access a server.
    pub fn server(&self, id: ServerId) -> Result<&StorageServer, PfsError> {
        self.servers.get(id.index()).ok_or(PfsError::NoSuchServer(id))
    }

    /// Store a new file, placing strips (and replicas, if the policy
    /// replicates) according to `policy`.
    pub fn create(
        &mut self,
        name: &str,
        data: &[u8],
        spec: StripeSpec,
        policy: LayoutPolicy,
    ) -> Result<FileId, PfsError> {
        if self.by_name.contains_key(name) {
            return Err(PfsError::DuplicateName(name.to_string()));
        }
        let id = FileId(u32::try_from(self.files.len()).expect("too many files"));
        let layout = Layout::new(policy, self.server_count());
        let meta = FileMeta {
            id,
            name: name.to_string(),
            len: data.len() as u64,
            spec,
            layout,
        };
        for s in 0..meta.strip_count() {
            let strip = StripId(s);
            let start = usize::try_from(spec.strip_start(strip)).expect("offset fits usize");
            let len = spec.strip_len(strip, meta.len);
            let chunk = Bytes::copy_from_slice(&data[start..start + len]);
            let primary = layout.primary(strip);
            self.servers[primary.index()].store(id, strip, chunk.clone(), true);
            for rep in layout.replicas(strip) {
                self.servers[rep.index()].store(id, strip, chunk.clone(), false);
            }
        }
        self.by_name.insert(name.to_string(), id);
        self.files.push(meta);
        Ok(id)
    }

    /// Look up a file by name.
    pub fn lookup(&self, name: &str) -> Option<FileId> {
        self.by_name.get(name).copied()
    }

    /// File metadata.
    pub fn meta(&self, file: FileId) -> Result<&FileMeta, PfsError> {
        self.files
            .get(file.0 as usize)
            .ok_or(PfsError::NoSuchFile(file))
    }

    /// The distribution information a client (and the DAS predictor)
    /// may query.
    pub fn distribution_info(&self, file: FileId) -> Result<DistributionInfo, PfsError> {
        let meta = self.meta(file)?;
        Ok(DistributionInfo {
            strip_size: meta.spec.strip_size,
            servers: meta.layout.servers,
            policy: meta.layout.policy,
            file_len: meta.len,
        })
    }

    /// Client read of `[offset, offset+len)` by client 0.
    pub fn read(&self, file: FileId, offset: u64, len: u64) -> Result<(Vec<u8>, TrafficLog), PfsError> {
        self.read_as(0, file, offset, len)
    }

    /// Client read by an explicit client id, gathering from the primary
    /// copy of every overlapped strip.
    pub fn read_as(
        &self,
        client: u32,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<(Vec<u8>, TrafficLog), PfsError> {
        let meta = self.meta(file)?;
        PfsError::check_range(offset, len, meta.len)?;
        let mut out = Vec::with_capacity(usize::try_from(len).expect("len fits usize"));
        let mut traffic = TrafficLog::default();
        for part in meta.spec.strips_for_range(offset, len) {
            let server = meta.layout.primary(part.strip);
            let data = self.servers[server.index()].read_strip(file, part.strip)?;
            out.extend_from_slice(&data[part.start..part.start + part.len]);
            traffic.push(TransferRec {
                from: Endpoint::Server(server),
                to: Endpoint::Client(client),
                bytes: part.len as u64,
                kind: TransferKind::Read,
            });
        }
        Ok((out, traffic))
    }

    /// Client write of `data` at `offset` by client 0, updating the
    /// primary and every replica of each touched strip.
    pub fn write(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<TrafficLog, PfsError> {
        self.write_as(0, file, offset, data)
    }

    /// Client write by an explicit client id.
    pub fn write_as(
        &mut self,
        client: u32,
        file: FileId,
        offset: u64,
        data: &[u8],
    ) -> Result<TrafficLog, PfsError> {
        let meta = self.meta(file)?.clone();
        PfsError::check_range(offset, data.len() as u64, meta.len)?;
        let mut traffic = TrafficLog::default();
        let mut consumed = 0usize;
        for part in meta.spec.strips_for_range(offset, data.len() as u64) {
            let primary = meta.layout.primary(part.strip);
            let old = self.servers[primary.index()].read_strip(file, part.strip)?;
            let mut buf = old.to_vec();
            buf[part.start..part.start + part.len]
                .copy_from_slice(&data[consumed..consumed + part.len]);
            consumed += part.len;
            let fresh = Bytes::from(buf);
            self.servers[primary.index()].store(file, part.strip, fresh.clone(), true);
            traffic.push(TransferRec {
                from: Endpoint::Client(client),
                to: Endpoint::Server(primary),
                bytes: part.len as u64,
                kind: TransferKind::Write,
            });
            // Replica maintenance: forward the whole refreshed strip.
            for rep in meta.layout.replicas(part.strip) {
                self.servers[rep.index()].store(file, part.strip, fresh.clone(), false);
                traffic.push(TransferRec {
                    from: Endpoint::Server(primary),
                    to: Endpoint::Server(rep),
                    bytes: fresh.len() as u64,
                    kind: TransferKind::Replication,
                });
            }
        }
        Ok(traffic)
    }

    /// Write a whole strip on behalf of a storage-side process running
    /// *on the primary server itself* (the active-storage output path:
    /// kernels write results locally). Replicas are still maintained.
    pub fn write_strip_local(
        &mut self,
        file: FileId,
        strip: StripId,
        data: &[u8],
    ) -> Result<TrafficLog, PfsError> {
        let meta = self.meta(file)?.clone();
        let expected = meta.spec.strip_len(strip, meta.len);
        if data.len() != expected {
            return Err(PfsError::StripLengthMismatch { strip, expected, got: data.len() });
        }
        let primary = meta.layout.primary(strip);
        let fresh = Bytes::copy_from_slice(data);
        self.servers[primary.index()].store(file, strip, fresh.clone(), true);
        let mut traffic = TrafficLog::default();
        traffic.push(TransferRec {
            from: Endpoint::Disk(primary),
            to: Endpoint::Server(primary),
            bytes: expected as u64,
            kind: TransferKind::Write,
        });
        for rep in meta.layout.replicas(strip) {
            self.servers[rep.index()].store(file, strip, fresh.clone(), false);
            traffic.push(TransferRec {
                from: Endpoint::Server(primary),
                to: Endpoint::Server(rep),
                bytes: expected as u64,
                kind: TransferKind::Replication,
            });
        }
        Ok(traffic)
    }

    /// Change a file's layout, moving and copying strips as needed.
    /// Returns the transfers performed (the cost DAS pays when it
    /// reconfigures the file system before offloading).
    pub fn redistribute(
        &mut self,
        file: FileId,
        new_policy: LayoutPolicy,
    ) -> Result<TrafficLog, PfsError> {
        let meta = self.meta(file)?.clone();
        let old = meta.layout;
        let new = Layout::new(new_policy, self.server_count());
        let mut traffic = TrafficLog::default();

        for s in 0..meta.strip_count() {
            let strip = StripId(s);
            let old_primary = old.primary(strip);
            let new_primary = new.primary(strip);
            let data = self.servers[old_primary.index()].read_strip(file, strip)?;

            // Move the primary if it changes servers.
            if new_primary != old_primary {
                traffic.push(TransferRec {
                    from: Endpoint::Server(old_primary),
                    to: Endpoint::Server(new_primary),
                    bytes: data.len() as u64,
                    kind: TransferKind::Redistribution,
                });
            }

            // Build the new holder set.
            let mut keep: Vec<ServerId> = vec![new_primary];
            for rep in new.replicas(strip) {
                if !self.servers[rep.index()].holds(file, strip) {
                    traffic.push(TransferRec {
                        from: Endpoint::Server(new_primary),
                        to: Endpoint::Server(rep),
                        bytes: data.len() as u64,
                        kind: TransferKind::Replication,
                    });
                }
                keep.push(rep);
            }

            // Install the new copies, then drop stale ones.
            for srv in 0..self.server_count() {
                let sid = ServerId(srv);
                if keep.contains(&sid) {
                    self.servers[sid.index()].store(file, strip, data.clone(), sid == new_primary);
                } else {
                    self.servers[sid.index()].evict(file, strip);
                }
            }
        }

        self.files[file.0 as usize].layout = new;
        Ok(traffic)
    }

    /// Client read with some servers unavailable — the fault-tolerance
    /// dividend of the DAS replicated layout: a strip whose primary is
    /// down is served from a surviving replica.
    ///
    /// Returns [`PfsError::StripNotLocal`] naming the failed server if
    /// some strip has no surviving copy (always the case for
    /// non-replicated layouts when the primary is down).
    pub fn read_degraded(
        &self,
        client: u32,
        file: FileId,
        offset: u64,
        len: u64,
        down: &[ServerId],
    ) -> Result<(Vec<u8>, TrafficLog), PfsError> {
        let meta = self.meta(file)?;
        PfsError::check_range(offset, len, meta.len)?;
        let mut out = Vec::with_capacity(usize::try_from(len).expect("len fits usize"));
        let mut traffic = TrafficLog::default();
        for part in meta.spec.strips_for_range(offset, len) {
            let primary = meta.layout.primary(part.strip);
            let server = meta
                .layout
                .holders(part.strip)
                .into_iter()
                .find(|s| !down.contains(s))
                .ok_or(PfsError::StripNotLocal { server: primary, strip: part.strip })?;
            let data = self.servers[server.index()].read_strip(file, part.strip)?;
            out.extend_from_slice(&data[part.start..part.start + part.len]);
            traffic.push(TransferRec {
                from: Endpoint::Server(server),
                to: Endpoint::Client(client),
                bytes: part.len as u64,
                kind: TransferKind::Read,
            });
        }
        Ok((out, traffic))
    }

    /// Rebuild the copies a failed server held onto the surviving
    /// layout holders: every strip whose primary or replica lived on
    /// `failed` is re-replicated from a surviving copy. Returns the
    /// repair traffic. (The layout itself is unchanged — the repaired
    /// copies restore the original placement once the server returns;
    /// this models the repair *data movement*, which is what the cost
    /// analysis cares about.)
    pub fn repair_server(
        &mut self,
        file: FileId,
        failed: ServerId,
    ) -> Result<TrafficLog, PfsError> {
        let meta = self.meta(file)?.clone();
        let mut traffic = TrafficLog::default();
        for s in 0..meta.strip_count() {
            let strip = StripId(s);
            let holders = meta.layout.holders(strip);
            if !holders.contains(&failed) {
                continue;
            }
            let source = holders
                .iter()
                .copied()
                .find(|&h| h != failed)
                .ok_or(PfsError::StripNotLocal { server: failed, strip })?;
            let data = self.servers[source.index()].read_strip(file, strip)?;
            let primary = meta.layout.primary(strip) == failed;
            self.servers[failed.index()].store(file, strip, data.clone(), primary);
            traffic.push(TransferRec {
                from: Endpoint::Server(source),
                to: Endpoint::Server(failed),
                bytes: data.len() as u64,
                kind: TransferKind::Replication,
            });
        }
        Ok(traffic)
    }

    /// Reassemble the whole file from primary copies (test/verification
    /// helper; a real client would use [`read`](Self::read)).
    pub fn file_bytes(&self, file: FileId) -> Result<Vec<u8>, PfsError> {
        let meta = self.meta(file)?;
        let mut out = Vec::with_capacity(usize::try_from(meta.len).expect("len fits usize"));
        for s in 0..meta.strip_count() {
            let strip = StripId(s);
            let server = meta.layout.primary(strip);
            let data = self.servers[server.index()].read_strip(file, strip)?;
            out.extend_from_slice(&data);
        }
        Ok(out)
    }

    /// Total bytes stored for `file` across all servers, replicas
    /// included — measures the replication capacity overhead.
    pub fn total_stored_bytes(&self, file: FileId) -> u64 {
        self.servers.iter().map(|s| s.stored_bytes(file)).sum()
    }

    /// Per-server placement statistics for one file — the balance view
    /// behind the planner's group-size trade-off (a server's primary
    /// strips are the kernel work it will be assigned under active
    /// storage).
    pub fn balance_report(&self, file: FileId) -> Result<BalanceReport, PfsError> {
        let meta = self.meta(file)?;
        let per_server: Vec<ServerLoad> = self
            .servers
            .iter()
            .map(|srv| {
                let primaries = srv.primary_strips(file).len() as u64;
                let all = srv.all_strips(file).len() as u64;
                ServerLoad {
                    server: srv.id(),
                    primary_strips: primaries,
                    replica_strips: all - primaries,
                    stored_bytes: srv.stored_bytes(file),
                }
            })
            .collect();
        Ok(BalanceReport { per_server, file_len: meta.len })
    }

    /// Check every invariant of the file's placement: each strip's
    /// holder set matches the layout, replica bytes equal the primary's,
    /// and no server holds copies the layout does not prescribe.
    pub fn verify(&self, file: FileId) -> Result<(), String> {
        let meta = self.meta(file).map_err(|e| e.to_string())?;
        for s in 0..meta.strip_count() {
            let strip = StripId(s);
            let holders = meta.layout.holders(strip);
            let primary = self.servers[holders[0].index()]
                .read_strip(file, strip)
                .map_err(|e| format!("missing primary: {e}"))?;
            if primary.len() != meta.spec.strip_len(strip, meta.len) {
                return Err(format!("{strip}: wrong primary length {}", primary.len()));
            }
            for rep in &holders[1..] {
                let copy = self.servers[rep.index()]
                    .read_strip(file, strip)
                    .map_err(|e| format!("missing replica: {e}"))?;
                if copy != primary {
                    return Err(format!("{strip}: replica on server {} diverges", rep.0));
                }
            }
            for srv in &self.servers {
                if srv.holds(file, strip) && !holders.contains(&srv.id()) {
                    return Err(format!("{strip}: stray copy on server {}", srv.id().0));
                }
                if srv.holds_primary(file, strip) && srv.id() != holders[0] {
                    return Err(format!("{strip}: wrong primary owner {}", srv.id().0));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn create_and_reassemble_round_robin() {
        let mut pfs = PfsCluster::new(4);
        let data = payload(1000);
        let f = pfs
            .create("f", &data, StripeSpec::new(100), LayoutPolicy::RoundRobin)
            .unwrap();
        assert_eq!(pfs.file_bytes(f).unwrap(), data);
        pfs.verify(f).unwrap();
        assert_eq!(pfs.total_stored_bytes(f), 1000);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut pfs = PfsCluster::new(2);
        pfs.create("f", &payload(10), StripeSpec::new(4), LayoutPolicy::RoundRobin)
            .unwrap();
        assert!(matches!(
            pfs.create("f", &payload(10), StripeSpec::new(4), LayoutPolicy::RoundRobin),
            Err(PfsError::DuplicateName(_))
        ));
    }

    #[test]
    fn read_gathers_across_servers() {
        let mut pfs = PfsCluster::new(3);
        let data = payload(500);
        let f = pfs
            .create("f", &data, StripeSpec::new(64), LayoutPolicy::RoundRobin)
            .unwrap();
        let (got, traffic) = pfs.read(f, 60, 200).unwrap();
        assert_eq!(&got[..], &data[60..260]);
        // 60..260 overlaps strips 0..=4 → five transfer records.
        assert_eq!(traffic.records().len(), 5);
        assert_eq!(traffic.client_bytes(), 200);
        assert_eq!(traffic.server_server_bytes(), 0);
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let mut pfs = PfsCluster::new(2);
        let f = pfs
            .create("f", &payload(100), StripeSpec::new(64), LayoutPolicy::RoundRobin)
            .unwrap();
        assert!(matches!(
            pfs.read(f, 90, 20),
            Err(PfsError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn write_updates_primaries_and_replicas() {
        let mut pfs = PfsCluster::new(4);
        let data = payload(1000);
        let f = pfs
            .create(
                "f",
                &data,
                StripeSpec::new(100),
                LayoutPolicy::GroupedReplicated { group: 2 },
            )
            .unwrap();
        pfs.verify(f).unwrap();
        let patch = vec![0xAB; 150];
        let traffic = pfs.write(f, 175, &patch).unwrap();
        assert!(traffic.bytes_moved() > 0);
        let mut expected = data.clone();
        expected[175..325].copy_from_slice(&patch);
        assert_eq!(pfs.file_bytes(f).unwrap(), expected);
        pfs.verify(f).unwrap(); // replicas must still match primaries
    }

    #[test]
    fn replication_overhead_measured() {
        let mut pfs = PfsCluster::new(4);
        let data = payload(100 * 16); // 16 strips of 100 bytes
        let f = pfs
            .create(
                "f",
                &data,
                StripeSpec::new(100),
                LayoutPolicy::GroupedReplicated { group: 4 },
            )
            .unwrap();
        // Overhead 2/r = 0.5 → stored = 1.5 × file size.
        assert_eq!(pfs.total_stored_bytes(f), (data.len() as u64 * 3) / 2);
        pfs.verify(f).unwrap();
    }

    #[test]
    fn redistribute_preserves_contents_and_invariants() {
        let mut pfs = PfsCluster::new(4);
        let data = payload(5_000);
        let f = pfs
            .create("f", &data, StripeSpec::new(128), LayoutPolicy::RoundRobin)
            .unwrap();
        let traffic = pfs
            .redistribute(f, LayoutPolicy::GroupedReplicated { group: 4 })
            .unwrap();
        assert!(traffic.bytes_moved() > 0);
        assert_eq!(pfs.file_bytes(f).unwrap(), data);
        pfs.verify(f).unwrap();
        assert_eq!(
            pfs.meta(f).unwrap().layout.policy,
            LayoutPolicy::GroupedReplicated { group: 4 }
        );

        // And back again.
        pfs.redistribute(f, LayoutPolicy::RoundRobin).unwrap();
        assert_eq!(pfs.file_bytes(f).unwrap(), data);
        pfs.verify(f).unwrap();
        assert_eq!(pfs.total_stored_bytes(f), data.len() as u64);
    }

    #[test]
    fn write_strip_local_keeps_replicas_consistent() {
        let mut pfs = PfsCluster::new(3);
        let data = payload(900);
        let f = pfs
            .create(
                "f",
                &data,
                StripeSpec::new(100),
                LayoutPolicy::GroupedReplicated { group: 3 },
            )
            .unwrap();
        let fresh = vec![7u8; 100];
        pfs.write_strip_local(f, StripId(3), &fresh).unwrap();
        pfs.verify(f).unwrap();
        let (got, _) = pfs.read(f, 300, 100).unwrap();
        assert_eq!(got, fresh);
    }

    #[test]
    fn write_strip_local_length_checked() {
        let mut pfs = PfsCluster::new(2);
        let f = pfs
            .create("f", &payload(150), StripeSpec::new(100), LayoutPolicy::RoundRobin)
            .unwrap();
        // Final strip is 50 bytes; writing 100 must fail.
        assert!(matches!(
            pfs.write_strip_local(f, StripId(1), &[0u8; 100]),
            Err(PfsError::StripLengthMismatch { .. })
        ));
    }

    #[test]
    fn lookup_by_name() {
        let mut pfs = PfsCluster::new(2);
        let f = pfs
            .create("dem.raw", &payload(10), StripeSpec::new(4), LayoutPolicy::RoundRobin)
            .unwrap();
        assert_eq!(pfs.lookup("dem.raw"), Some(f));
        assert_eq!(pfs.lookup("nope"), None);
    }

    #[test]
    fn distribution_info_exposes_predictor_inputs() {
        let mut pfs = PfsCluster::new(6);
        let f = pfs
            .create(
                "f",
                &payload(10_000),
                StripeSpec::new(256),
                LayoutPolicy::Grouped { group: 2 },
            )
            .unwrap();
        let info = pfs.distribution_info(f).unwrap();
        assert_eq!(info.strip_size, 256);
        assert_eq!(info.servers, 6);
        assert_eq!(info.policy, LayoutPolicy::Grouped { group: 2 });
        assert_eq!(info.file_len, 10_000);
    }

    #[test]
    fn degraded_read_survives_one_server_under_replication() {
        let mut pfs = PfsCluster::new(4);
        let data = payload(4_000);
        let f = pfs
            .create(
                "f",
                &data,
                StripeSpec::new(100),
                LayoutPolicy::GroupedReplicated { group: 1 },
            )
            .unwrap();
        // With r = 1 every strip has two replicas: any single failure
        // is survivable.
        for down in 0..4u32 {
            let (got, traffic) = pfs.read_degraded(0, f, 0, 4_000, &[ServerId(down)]).unwrap();
            assert_eq!(got, data, "server {down} down");
            assert!(traffic
                .records()
                .iter()
                .all(|r| r.from != Endpoint::Server(ServerId(down))));
        }
    }

    #[test]
    fn degraded_read_fails_without_replicas() {
        let mut pfs = PfsCluster::new(4);
        let data = payload(4_000);
        let f = pfs
            .create("f", &data, StripeSpec::new(100), LayoutPolicy::RoundRobin)
            .unwrap();
        assert!(matches!(
            pfs.read_degraded(0, f, 0, 4_000, &[ServerId(1)]),
            Err(PfsError::StripNotLocal { server: ServerId(1), .. })
        ));
        // Strips untouched by the failed server still readable.
        let (got, _) = pfs.read_degraded(0, f, 0, 100, &[ServerId(1)]).unwrap();
        assert_eq!(&got[..], &data[..100]);
    }

    #[test]
    fn repair_restores_failed_server_copies() {
        let mut pfs = PfsCluster::new(4);
        let data = payload(6_000);
        let f = pfs
            .create(
                "f",
                &data,
                StripeSpec::new(100),
                LayoutPolicy::GroupedReplicated { group: 2 },
            )
            .unwrap();
        // Simulate losing server 2's copies.
        let lost: Vec<StripId> = pfs.server(ServerId(2)).unwrap().all_strips(f);
        assert!(!lost.is_empty());
        for strip in &lost {
            pfs.servers[2].evict(f, *strip);
        }
        assert!(pfs.verify(f).is_err(), "verification must notice the loss");

        let traffic = pfs.repair_server(f, ServerId(2)).unwrap();
        assert_eq!(traffic.records().len(), lost.len());
        assert!(traffic.records().iter().all(|r| r.to == Endpoint::Server(ServerId(2))));
        pfs.verify(f).unwrap();
        assert_eq!(pfs.file_bytes(f).unwrap(), data);
    }

    #[test]
    fn balance_report_measures_placement() {
        let mut pfs = PfsCluster::new(4);
        let data = payload(100 * 16); // 16 strips
        let f = pfs
            .create(
                "f",
                &data,
                StripeSpec::new(100),
                LayoutPolicy::GroupedReplicated { group: 4 },
            )
            .unwrap();
        let report = pfs.balance_report(f).unwrap();
        // 16 strips over 4 servers in groups of 4: one group each.
        assert!(report.per_server.iter().all(|s| s.primary_strips == 4));
        assert!((report.imbalance() - 1.0).abs() < 1e-12);
        // Overhead 2/r = 0.5 → storage factor 1.5.
        assert!((report.storage_factor() - 1.5).abs() < 0.02);
        // Each server holds two replica strips (one per neighbor group
        // boundary).
        assert!(report.per_server.iter().all(|s| s.replica_strips == 2));
    }

    #[test]
    fn balance_report_detects_imbalance() {
        let mut pfs = PfsCluster::new(3);
        let data = payload(100 * 4); // 4 strips on 3 servers
        let f = pfs
            .create("f", &data, StripeSpec::new(100), LayoutPolicy::RoundRobin)
            .unwrap();
        let report = pfs.balance_report(f).unwrap();
        // Server 0 holds 2 strips, servers 1-2 hold 1: max/mean = 1.5.
        assert!((report.imbalance() - 1.5).abs() < 1e-12);
        assert!((report.storage_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_file_is_fine() {
        let mut pfs = PfsCluster::new(2);
        let f = pfs
            .create("empty", &[], StripeSpec::new(64), LayoutPolicy::RoundRobin)
            .unwrap();
        assert_eq!(pfs.file_bytes(f).unwrap(), Vec::<u8>::new());
        pfs.verify(f).unwrap();
    }
}
