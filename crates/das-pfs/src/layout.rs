//! Data distribution policies: which server holds which strip.
//!
//! Three policies, mirroring the paper:
//!
//! * [`LayoutPolicy::RoundRobin`] — the parallel-file-system default
//!   (paper Fig. 5): strip `s` lives on server `s mod D`.
//! * [`LayoutPolicy::Grouped`] — `r` successive strips per server
//!   (strip `s` on server `(s / r) mod D`), the generalization behind
//!   paper Eqs. 14–16. `Grouped { group: 1 }` equals round-robin.
//! * [`LayoutPolicy::GroupedReplicated`] — the paper's improved
//!   distribution (Figs. 7–9): grouped placement **plus** replication
//!   of each group's first strip onto the *previous* server and its
//!   last strip onto the *next* server, so every strip's neighbor
//!   strips are locally available and dependence traffic vanishes.
//!   Capacity overhead is `2/r` (paper Section III-D).

use crate::stripe::StripId;

/// Index of a storage server (0-based, `< D`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl ServerId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A data distribution policy (parameterized by the group size `r`
/// where applicable). Combine with a server count via [`Layout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutPolicy {
    /// Default striping: strip `s` → server `s mod D` (paper Fig. 5).
    RoundRobin,
    /// `r` successive strips per server: strip `s` → server
    /// `(s/r) mod D`, no replication.
    Grouped {
        /// Group size `r` (≥ 1).
        group: u64,
    },
    /// Grouped placement with boundary-strip replication onto the
    /// neighboring servers (the DAS improved distribution, Fig. 9).
    GroupedReplicated {
        /// Group size `r` (≥ 1). Overhead is `2/r`; `r = 1` doubles
        /// storage (the "twice of extra storage space" case in the
        /// paper), larger `r` amortizes it.
        group: u64,
    },
}

impl LayoutPolicy {
    /// The group size `r` (1 for round-robin).
    pub fn group_size(&self) -> u64 {
        match *self {
            LayoutPolicy::RoundRobin => 1,
            LayoutPolicy::Grouped { group } | LayoutPolicy::GroupedReplicated { group } => group,
        }
    }

    /// Whether boundary strips are replicated to neighbor servers.
    pub fn replicates(&self) -> bool {
        matches!(self, LayoutPolicy::GroupedReplicated { .. })
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            LayoutPolicy::RoundRobin => "round-robin",
            LayoutPolicy::Grouped { .. } => "grouped",
            LayoutPolicy::GroupedReplicated { .. } => "grouped+replicated",
        }
    }
}

/// The full placement of one strip: who holds the primary copy and
/// who holds replicas. This is the unit the fault-tolerance layer
/// consults — a reader that cannot reach `primary_server` walks
/// `replica_servers` in order before giving up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripPlacement {
    /// The strip being placed.
    pub strip: StripId,
    /// Server holding the primary copy (paper Eq. 14).
    pub primary_server: ServerId,
    /// Servers holding replica copies, in preference order (empty
    /// unless the policy replicates and the strip is a group
    /// boundary).
    pub replica_servers: Vec<ServerId>,
}

impl StripPlacement {
    /// Every server holding a copy, primary first — the failover
    /// order.
    pub fn holders(&self) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(1 + self.replica_servers.len());
        out.push(self.primary_server);
        out.extend(self.replica_servers.iter().copied());
        out
    }
}

/// A policy bound to a server count `D`: the total placement function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// The distribution policy.
    pub policy: LayoutPolicy,
    /// Number of storage servers `D`.
    pub servers: u32,
}

impl Layout {
    /// Bind `policy` to `servers` servers.
    ///
    /// # Panics
    /// Panics if `servers == 0` or the policy's group size is 0.
    pub fn new(policy: LayoutPolicy, servers: u32) -> Self {
        assert!(servers > 0, "need at least one storage server");
        assert!(policy.group_size() > 0, "group size must be >= 1");
        Layout { policy, servers }
    }

    /// The server holding the **primary** copy of `strip`
    /// (paper Eq. 2 generalized by Eq. 14: `(s/r) mod D`).
    pub fn primary(&self, strip: StripId) -> ServerId {
        let r = self.policy.group_size();
        ServerId(((strip.0 / r) % u64::from(self.servers)) as u32)
    }

    /// Servers holding **replica** copies of `strip` (empty unless the
    /// policy replicates). The first strip of each group is replicated
    /// on the previous server (ring order), the last strip of each
    /// group on the next server; with `r == 1` a strip is replicated on
    /// both neighbors. Replicas that would land on the primary itself
    /// (i.e. `D == 1`) are dropped.
    pub fn replicas(&self, strip: StripId) -> Vec<ServerId> {
        if !self.policy.replicates() {
            return Vec::new();
        }
        let r = self.policy.group_size();
        let d = u64::from(self.servers);
        let primary = self.primary(strip);
        let mut out = Vec::with_capacity(2);
        let pos = strip.0 % r;
        if pos == 0 {
            // First strip in its group → previous server in the ring.
            let prev = ServerId((((u64::from(primary.0)) + d - 1) % d) as u32);
            if prev != primary {
                out.push(prev);
            }
        }
        if pos == r - 1 {
            // Last strip in its group → next server in the ring.
            let next = ServerId(((u64::from(primary.0) + 1) % d) as u32);
            if next != primary && !out.contains(&next) {
                out.push(next);
            }
        }
        out
    }

    /// Every server holding a copy of `strip` (primary first).
    pub fn holders(&self, strip: StripId) -> Vec<ServerId> {
        let mut out = vec![self.primary(strip)];
        out.extend(self.replicas(strip));
        out
    }

    /// The full placement record for `strip` — primary and replicas
    /// in failover order.
    pub fn placement(&self, strip: StripId) -> StripPlacement {
        StripPlacement {
            strip,
            primary_server: self.primary(strip),
            replica_servers: self.replicas(strip),
        }
    }

    /// Whether `server` holds a copy (primary or replica) of `strip`.
    pub fn holds(&self, server: ServerId, strip: StripId) -> bool {
        self.primary(strip) == server || self.replicas(strip).contains(&server)
    }

    /// The primary strips of `server` within a file of `strip_count`
    /// strips, in increasing strip order.
    pub fn primary_strips(&self, server: ServerId, strip_count: u64) -> Vec<StripId> {
        (0..strip_count)
            .map(StripId)
            .filter(|&s| self.primary(s) == server)
            .collect()
    }

    /// Total stored copies (primary + replicas) for a file of
    /// `strip_count` strips — measures the capacity overhead of
    /// replication (`≈ (1 + 2/r)·strip_count` for grouped+replicated).
    pub fn total_copies(&self, strip_count: u64) -> u64 {
        (0..strip_count)
            .map(|s| 1 + self.replicas(StripId(s)).len() as u64)
            .sum()
    }

    /// Placement introspection: the strips within `radius` strips of
    /// `strip` (either direction, clipped to `strip_count`) that the
    /// **primary holder of `strip`** has no local copy of — exactly
    /// the neighbor strips an active-storage task on that server must
    /// fetch from a peer. Empty means the layout's grouping and
    /// replication fully cover a stencil reaching `radius` strips.
    pub fn uncovered_neighbors(
        &self,
        strip: StripId,
        radius: u64,
        strip_count: u64,
    ) -> Vec<StripId> {
        let server = self.primary(strip);
        let lo = strip.0.saturating_sub(radius);
        let hi = strip
            .0
            .saturating_add(radius)
            .min(strip_count.saturating_sub(1));
        (lo..=hi)
            .map(StripId)
            .filter(|&u| u != strip && !self.holds(server, u))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_matches_eq2() {
        let l = Layout::new(LayoutPolicy::RoundRobin, 4);
        for s in 0..16u64 {
            assert_eq!(l.primary(StripId(s)), ServerId((s % 4) as u32));
            assert!(l.replicas(StripId(s)).is_empty());
        }
    }

    #[test]
    fn grouped_matches_eq14() {
        let l = Layout::new(LayoutPolicy::Grouped { group: 3 }, 4);
        // Strips 0,1,2 → server 0; 3,4,5 → server 1; …; 12,13,14 → 0.
        assert_eq!(l.primary(StripId(0)), ServerId(0));
        assert_eq!(l.primary(StripId(2)), ServerId(0));
        assert_eq!(l.primary(StripId(3)), ServerId(1));
        assert_eq!(l.primary(StripId(11)), ServerId(3));
        assert_eq!(l.primary(StripId(12)), ServerId(0));
    }

    #[test]
    fn grouped_with_r1_equals_round_robin() {
        let a = Layout::new(LayoutPolicy::Grouped { group: 1 }, 5);
        let b = Layout::new(LayoutPolicy::RoundRobin, 5);
        for s in 0..40u64 {
            assert_eq!(a.primary(StripId(s)), b.primary(StripId(s)));
        }
    }

    #[test]
    fn replication_covers_group_boundaries() {
        // Paper Fig. 9: group boundary strips are copied to neighbors.
        let l = Layout::new(LayoutPolicy::GroupedReplicated { group: 3 }, 4);
        // Strip 3 is first of group 1 (server 1) → replica on server 0.
        assert_eq!(l.replicas(StripId(3)), vec![ServerId(0)]);
        // Strip 5 is last of group 1 → replica on server 2.
        assert_eq!(l.replicas(StripId(5)), vec![ServerId(2)]);
        // Strip 4 is interior → no replicas.
        assert!(l.replicas(StripId(4)).is_empty());
        // Strip 0 is first of group 0 (server 0) → replica wraps to 3.
        assert_eq!(l.replicas(StripId(0)), vec![ServerId(3)]);
    }

    #[test]
    fn r1_replicates_both_sides() {
        // The "twice extra storage" case: every strip on both neighbors.
        let l = Layout::new(LayoutPolicy::GroupedReplicated { group: 1 }, 4);
        let reps = l.replicas(StripId(5));
        assert_eq!(reps.len(), 2);
        assert!(reps.contains(&ServerId(0))); // prev of server 1
        assert!(reps.contains(&ServerId(2))); // next of server 1
    }

    #[test]
    fn single_server_drops_self_replicas() {
        let l = Layout::new(LayoutPolicy::GroupedReplicated { group: 2 }, 1);
        for s in 0..8u64 {
            assert!(l.replicas(StripId(s)).is_empty());
            assert_eq!(l.holders(StripId(s)), vec![ServerId(0)]);
        }
    }

    #[test]
    fn two_servers_dedup_replicas() {
        // With D == 2 and r == 1, prev and next are the same server.
        let l = Layout::new(LayoutPolicy::GroupedReplicated { group: 1 }, 2);
        assert_eq!(l.replicas(StripId(0)), vec![ServerId(1)]);
        assert_eq!(l.replicas(StripId(1)), vec![ServerId(0)]);
    }

    #[test]
    fn capacity_overhead_is_two_over_r() {
        // Paper Section III-D: overhead reduced to 2/r.
        let strips = 240;
        for r in [1u64, 2, 4, 8] {
            let l = Layout::new(LayoutPolicy::GroupedReplicated { group: r }, 4);
            let copies = l.total_copies(strips);
            let overhead = copies as f64 / strips as f64 - 1.0;
            let expected = 2.0 / r as f64;
            assert!(
                (overhead - expected).abs() < 0.02,
                "r={r}: overhead {overhead} vs expected {expected}"
            );
        }
    }

    #[test]
    fn primary_strips_partition_file() {
        let l = Layout::new(LayoutPolicy::Grouped { group: 3 }, 4);
        let strips = 50;
        let mut seen = vec![false; strips as usize];
        for srv in 0..4 {
            for s in l.primary_strips(ServerId(srv), strips) {
                assert!(!seen[s.0 as usize], "strip owned twice");
                seen[s.0 as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x), "every strip owned once");
    }

    #[test]
    fn holders_primary_first() {
        let l = Layout::new(LayoutPolicy::GroupedReplicated { group: 2 }, 3);
        let h = l.holders(StripId(2)); // first of group 1, server 1
        assert_eq!(h[0], ServerId(1));
        assert_eq!(h[1], ServerId(0));
    }

    #[test]
    fn uncovered_neighbors_reflects_replication() {
        // Grouped without replication: every strip on the far side of
        // a group boundary is uncovered.
        let grouped = Layout::new(LayoutPolicy::Grouped { group: 3 }, 4);
        // Strip 2 is last of group 0 (server 0); strip 3 is on server 1.
        assert_eq!(grouped.uncovered_neighbors(StripId(2), 1, 100), vec![StripId(3)]);
        // Interior strip: both neighbors in-group.
        assert!(grouped.uncovered_neighbors(StripId(1), 1, 100).is_empty());

        // Replication covers radius 1 at every boundary…
        let rep = Layout::new(LayoutPolicy::GroupedReplicated { group: 3 }, 4);
        for s in 0..24u64 {
            assert!(
                rep.uncovered_neighbors(StripId(s), 1, 24).is_empty(),
                "strip {s} should be radius-1 covered"
            );
        }
        // …but not radius 2 from a boundary strip.
        assert!(!rep.uncovered_neighbors(StripId(2), 2, 100).is_empty());

        // File edges clip the window instead of underflowing.
        assert!(rep.uncovered_neighbors(StripId(0), 5, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one storage server")]
    fn zero_servers_rejected() {
        let _ = Layout::new(LayoutPolicy::RoundRobin, 0);
    }

    #[test]
    #[should_panic(expected = "group size must be >= 1")]
    fn zero_group_rejected() {
        let _ = Layout::new(LayoutPolicy::Grouped { group: 0 }, 2);
    }
}
