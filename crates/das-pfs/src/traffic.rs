//! Byte-movement records emitted by file system operations.
//!
//! Every cluster-level operation that moves data reports *who sent how
//! many bytes to whom*; `das-runtime` converts these records into timed
//! `das-sim` operations, and tests use them to verify the paper's core
//! claim — that the improved distribution eliminates server↔server
//! dependence traffic.

use crate::layout::ServerId;

/// One end of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A compute-node client.
    Client(u32),
    /// A storage server's network interface.
    Server(ServerId),
    /// A storage server's local disk (used for replica writes and
    /// local reads, which consume disk but not network bandwidth).
    Disk(ServerId),
}

/// Why the bytes moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// Client-initiated read of file data.
    Read,
    /// Client-initiated write of file data.
    Write,
    /// Replica maintenance (layout writes or redistribution copies).
    Replication,
    /// Strip movement during redistribution.
    Redistribution,
}

/// A single byte movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRec {
    /// Source endpoint.
    pub from: Endpoint,
    /// Destination endpoint.
    pub to: Endpoint,
    /// Bytes moved.
    pub bytes: u64,
    /// Reason.
    pub kind: TransferKind,
}

impl TransferRec {
    /// Whether both endpoints are storage servers (network hop between
    /// servers — the dependence-traffic category).
    pub fn is_server_to_server(&self) -> bool {
        matches!(
            (self.from, self.to),
            (Endpoint::Server(a), Endpoint::Server(b)) if a != b
        )
    }

    /// Whether one endpoint is a client (the normal I/O category).
    pub fn involves_client(&self) -> bool {
        matches!(self.from, Endpoint::Client(_)) || matches!(self.to, Endpoint::Client(_))
    }

    /// Whether this record is local disk activity rather than a
    /// network hop.
    pub fn is_disk_local(&self) -> bool {
        matches!(self.from, Endpoint::Disk(_)) || matches!(self.to, Endpoint::Disk(_))
    }
}

/// An accumulating list of transfers with summary helpers.
#[derive(Debug, Clone, Default)]
pub struct TrafficLog {
    records: Vec<TransferRec>,
}

impl TrafficLog {
    /// Append a record.
    pub fn push(&mut self, rec: TransferRec) {
        self.records.push(rec);
    }

    /// Append every record from `other`.
    pub fn extend(&mut self, other: TrafficLog) {
        self.records.extend(other.records);
    }

    /// All records in order.
    pub fn records(&self) -> &[TransferRec] {
        &self.records
    }

    /// Total bytes across all records.
    pub fn bytes_moved(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Bytes on server↔server network hops.
    pub fn server_server_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.is_server_to_server())
            .map(|r| r.bytes)
            .sum()
    }

    /// Bytes on hops involving a client.
    pub fn client_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.involves_client())
            .map(|r| r.bytes)
            .sum()
    }

    /// Bytes of local disk activity.
    pub fn disk_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.is_disk_local())
            .map(|r| r.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(from: Endpoint, to: Endpoint, bytes: u64) -> TransferRec {
        TransferRec { from, to, bytes, kind: TransferKind::Read }
    }

    #[test]
    fn categories_are_disjoint_for_typical_records() {
        let s2s = rec(Endpoint::Server(ServerId(0)), Endpoint::Server(ServerId(1)), 10);
        let c2s = rec(Endpoint::Server(ServerId(0)), Endpoint::Client(3), 20);
        let disk = rec(Endpoint::Disk(ServerId(0)), Endpoint::Server(ServerId(0)), 40);
        assert!(s2s.is_server_to_server() && !s2s.involves_client() && !s2s.is_disk_local());
        assert!(!c2s.is_server_to_server() && c2s.involves_client());
        assert!(disk.is_disk_local() && !disk.is_server_to_server());
    }

    #[test]
    fn same_server_transfer_is_not_network() {
        let local = rec(Endpoint::Server(ServerId(2)), Endpoint::Server(ServerId(2)), 5);
        assert!(!local.is_server_to_server());
    }

    #[test]
    fn log_sums_by_category() {
        let mut log = TrafficLog::default();
        log.push(rec(Endpoint::Server(ServerId(0)), Endpoint::Server(ServerId(1)), 10));
        log.push(rec(Endpoint::Server(ServerId(1)), Endpoint::Client(0), 20));
        log.push(rec(Endpoint::Disk(ServerId(1)), Endpoint::Server(ServerId(1)), 40));
        assert_eq!(log.bytes_moved(), 70);
        assert_eq!(log.server_server_bytes(), 10);
        assert_eq!(log.client_bytes(), 20);
        assert_eq!(log.disk_bytes(), 40);
    }
}
