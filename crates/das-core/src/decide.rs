//! The offload decision workflow (paper Fig. 3).
//!
//! For every active-storage request the DAS client walks the paper's
//! flow chart:
//!
//! 1. get the dependence pattern from the Kernel Features registry;
//! 2. get the file's distribution information from the parallel file
//!    system;
//! 3. **if a successive operation will reuse the data** (e.g.
//!    flow-accumulation always follows flow-routing, paper Section I):
//!    find a reasonable distribution method, reconfigure, accept;
//! 4. otherwise predict the bandwidth cost of offloading on the
//!    *current* layout and compare it with serving the request as
//!    normal I/O; accept only when offloading is cheaper.
//!
//! The cost comparison: offloading on the current layout pays the
//! strip-granular dependence fetching between servers
//! ([`StripingParams::predict_nas_fetches`]); normal I/O pays moving
//! the input to the compute nodes and the result back.

use das_pfs::DistributionInfo;

use crate::features::KernelFeatures;
use crate::plan::{plan_distribution, LayoutPlan, PlanOptions};
use crate::predict::{DependencePrediction, NasFetchPrediction, StripingParams};

/// Why an offload request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Offloading on the current layout would move more bytes between
    /// storage servers than normal I/O moves to the clients (the
    /// paper's "if the operation requires more bandwidth than
    /// servicing it as a normal I/O operation").
    CostExceedsNormal,
}

/// Everything the decision workflow inspects.
#[derive(Debug, Clone)]
pub struct DecisionInput<'a> {
    /// The operator's dependence descriptor.
    pub features: &'a KernelFeatures,
    /// The file's distribution, as queried from the file system.
    pub dist: DistributionInfo,
    /// Element size `E` in bytes.
    pub element_size: u64,
    /// Image width in elements (instantiates symbolic offsets).
    pub img_width: u64,
    /// Bytes the operation's result occupies (what normal I/O must
    /// ship back; stencil kernels produce input-sized output).
    pub output_bytes: u64,
    /// Whether a successive operation shares this dependence pattern
    /// (the paper's Fig. 3 branch that triggers reconfiguration).
    pub successive: bool,
    /// Planner bounds used when reconfiguring.
    pub plan_opts: PlanOptions,
}

/// The quantities the decision was based on (reported for
/// explainability and asserted against measurements in tests).
#[derive(Debug, Clone, Copy)]
pub struct OffloadPrediction {
    /// Per-element dependence summary on the current layout.
    pub dependence: DependencePrediction,
    /// Strip-granular server↔server traffic offloading would cause on
    /// the current layout.
    pub nas: NasFetchPrediction,
    /// Bytes normal I/O moves over client links (input + output).
    pub ts_client_bytes: u64,
}

/// The outcome of the Fig. 3 workflow.
#[derive(Debug, Clone)]
pub enum Decision {
    /// Serve as an active-storage request.
    Offload {
        /// `Some` when the workflow chose to reconfigure the layout
        /// first (successive-operation branch) and the plan differs
        /// from the current layout.
        replan: Option<LayoutPlan>,
        /// The numbers behind the decision.
        predicted: OffloadPrediction,
    },
    /// Serve as normal I/O instead.
    Reject {
        /// Why.
        reason: RejectReason,
        /// The numbers behind the decision.
        predicted: OffloadPrediction,
    },
}

impl std::fmt::Display for Decision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Decision::Offload { replan, predicted } => {
                write!(
                    f,
                    "OFFLOAD (dependence: {} remote of {} lookups; strip-fetch {} B vs normal {} B",
                    predicted.dependence.remote_fetches,
                    predicted.dependence.remote_fetches + predicted.dependence.local_fetches,
                    predicted.nas.bytes,
                    predicted.ts_client_bytes
                )?;
                match replan {
                    Some(plan) => write!(
                        f,
                        "; reconfigure to {:?}, overhead {:.3})",
                        plan.policy, plan.capacity_overhead
                    ),
                    None => write!(f, "; layout kept)"),
                }
            }
            Decision::Reject { reason, predicted } => write!(
                f,
                "REJECT ({reason:?}: strip-fetch {} B would exceed normal service {} B)",
                predicted.nas.bytes, predicted.ts_client_bytes
            ),
        }
    }
}

impl Decision {
    /// Whether the request will be offloaded.
    pub fn is_offload(&self) -> bool {
        matches!(self, Decision::Offload { .. })
    }

    /// The prediction snapshot, whichever way the decision went.
    pub fn predicted(&self) -> &OffloadPrediction {
        match self {
            Decision::Offload { predicted, .. } | Decision::Reject { predicted, .. } => predicted,
        }
    }
}

/// Link parameters for the latency-aware decision extension
/// ([`decide_timed`]).
#[derive(Debug, Clone, Copy)]
pub struct LinkCost {
    /// Sustained network throughput per node, bytes/second.
    pub bytes_per_sec: f64,
    /// Fixed cost of one synchronous strip fetch (request latency +
    /// service overhead + response latency), seconds.
    pub per_request_secs: f64,
    /// Fixed cost of one client I/O message (per-strip latency on the
    /// normal path), seconds.
    pub per_message_secs: f64,
    /// Compute (client) nodes available to the normal-I/O path.
    pub compute_nodes: u32,
}

/// Latency-aware variant of the Fig. 3 decision — an **extension**
/// beyond the paper.
///
/// The paper's criterion compares *bytes* (Eq. 5 / strip fetches vs
/// normal I/O volume). That model has a blind spot the ablation
/// benches expose: when dependence fetches are synchronous per-strip
/// RPCs, their cost is dominated by per-request latency and service
/// serialization, and an offload can lose badly while moving *fewer*
/// bytes than TS. This variant estimates wall time on each side:
///
/// * offload: the per-server fetch chain,
///   `fetches/D · per_request + (bytes/D) / bw`;
/// * normal I/O: the parallel client transfer plus its per-strip
///   message costs, `ts_bytes / (C · bw) + (2 · strips / C) · per_message`;
///
/// (kernel compute time is identical on both sides under the paper's
/// 1:1 node configuration and cancels). Everything else — prediction,
/// replanning for successive operations — is unchanged.
pub fn decide_timed(input: &DecisionInput<'_>, link: &LinkCost) -> Decision {
    let decision = decide(input);
    match decision {
        // The byte criterion only matters on the non-successive branch;
        // re-examine accepted offloads with the time model.
        Decision::Offload { replan: None, predicted } => {
            let d = f64::from(input.dist.servers.max(1));
            let c = f64::from(link.compute_nodes.max(1));
            let strips = input.dist.file_len.div_ceil(input.dist.strip_size as u64) as f64;
            let offload_time = predicted.nas.fetches as f64 / d * link.per_request_secs
                + predicted.nas.bytes as f64 / d / link.bytes_per_sec;
            let normal_time = predicted.ts_client_bytes as f64 / (c * link.bytes_per_sec)
                + 2.0 * strips / c * link.per_message_secs;
            if offload_time > normal_time {
                Decision::Reject { reason: RejectReason::CostExceedsNormal, predicted }
            } else {
                Decision::Offload { replan: None, predicted }
            }
        }
        other => other,
    }
}

/// Run the paper's Fig. 3 decision workflow.
pub fn decide(input: &DecisionInput<'_>) -> Decision {
    let offsets = input.features.offsets(input.img_width);
    let params = StripingParams::from_distribution(&input.dist, input.element_size);
    let dependence = params.predict_file(&offsets, input.dist.file_len);
    let nas = params.predict_nas_fetches(&offsets, input.dist.file_len);
    let ts_client_bytes = input.dist.file_len + input.output_bytes;
    let predicted = OffloadPrediction { dependence, nas, ts_client_bytes };

    if input.successive {
        // Fig. 3, "yes" branch: find a reasonable distribution method,
        // reconfigure, accept.
        let plan = plan_distribution(
            &offsets,
            input.element_size,
            input.dist.strip_size as u64,
            input.dist.servers,
            input.dist.file_len,
            input.plan_opts,
        );
        let replan = plan.requires_change(input.dist.policy).then_some(plan);
        return Decision::Offload { replan, predicted };
    }

    // Fig. 3, "no" branch: predict the bandwidth cost; reject when it
    // exceeds normal service.
    if nas.bytes > ts_client_bytes {
        Decision::Reject { reason: RejectReason::CostExceedsNormal, predicted }
    } else {
        Decision::Offload { replan: None, predicted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureRegistry;
    use das_pfs::LayoutPolicy;

    fn input<'a>(
        features: &'a KernelFeatures,
        strip_size: usize,
        servers: u32,
        policy: LayoutPolicy,
        img_width: u64,
        rows: u64,
        successive: bool,
    ) -> DecisionInput<'a> {
        let file_len = img_width * rows * 4;
        DecisionInput {
            features,
            dist: DistributionInfo { strip_size, servers, policy, file_len },
            element_size: 4,
            img_width,
            output_bytes: file_len,
            successive,
            plan_opts: PlanOptions::default(),
        }
    }

    #[test]
    fn decisions_explain_themselves() {
        let reg = FeatureRegistry::with_builtin();
        let f = reg.get("flow-routing").unwrap();
        let accept = decide(&input(
            f,
            2 * 64 * 4,
            4,
            LayoutPolicy::GroupedReplicated { group: 8 },
            64,
            512,
            false,
        ));
        let text = accept.to_string();
        assert!(text.starts_with("OFFLOAD"), "{text}");
        assert!(text.contains("layout kept"));

        let replanned = decide(&input(f, 2 * 64 * 4, 4, LayoutPolicy::RoundRobin, 64, 512, true));
        assert!(replanned.to_string().contains("reconfigure to"));

        let wide = KernelFeatures::parse_text(
            "Name:wide\nDependence: -5*imgWidth, 5*imgWidth, -3*imgWidth, 3*imgWidth, -7*imgWidth, 7*imgWidth",
        )
        .unwrap()
        .remove(0);
        let reject = decide(&input(&wide, 64 * 4, 8, LayoutPolicy::RoundRobin, 64, 2048, false));
        assert!(reject.to_string().starts_with("REJECT"), "{reject}");
    }

    #[test]
    fn friendly_layout_offloads_without_replanning() {
        // Grouped+replicated already in place: zero dependence traffic
        // predicted, offload accepted as-is.
        let reg = FeatureRegistry::with_builtin();
        let f = reg.get("flow-routing").unwrap();
        let d = input(
            f,
            2 * 64 * 4,
            4,
            LayoutPolicy::GroupedReplicated { group: 8 },
            64,
            512,
            false,
        );
        let decision = decide(&d);
        assert!(decision.is_offload());
        assert_eq!(decision.predicted().nas.bytes, 0);
        match decision {
            Decision::Offload { replan, .. } => assert!(replan.is_none()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn hostile_layout_with_huge_dependence_rejects() {
        // A long-stride operator on round-robin: per-strip fetching
        // would pull many strips repeatedly, exceeding 2× file size.
        let features = KernelFeatures::parse_text(
            "Name:wide\nDependence: -5*imgWidth, -3*imgWidth, -imgWidth, imgWidth, 3*imgWidth, 5*imgWidth",
        )
        .unwrap()
        .remove(0);
        let d = input(&features, 64 * 4, 8, LayoutPolicy::RoundRobin, 64, 2048, false);
        let decision = decide(&d);
        assert!(!decision.is_offload(), "predicted: {:?}", decision.predicted());
        match decision {
            Decision::Reject { reason, predicted } => {
                assert_eq!(reason, RejectReason::CostExceedsNormal);
                assert!(predicted.nas.bytes > predicted.ts_client_bytes);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn successive_operation_triggers_replanning() {
        let reg = FeatureRegistry::with_builtin();
        let f = reg.get("flow-routing").unwrap();
        let d = input(f, 2 * 64 * 4, 4, LayoutPolicy::RoundRobin, 64, 512, true);
        let decision = decide(&d);
        match decision {
            Decision::Offload { replan: Some(plan), .. } => {
                assert!(plan.satisfied);
                assert!(matches!(plan.policy, LayoutPolicy::GroupedReplicated { .. }));
            }
            other => panic!("expected offload with replan, got {other:?}"),
        }
    }

    #[test]
    fn successive_operation_on_good_layout_needs_no_replan() {
        // Already on the planner's preferred layout → no change needed.
        let reg = FeatureRegistry::with_builtin();
        let f = reg.get("gaussian-filter").unwrap();
        let strip = 2 * 64 * 4;
        let rows = 512u64;
        let first = decide(&input(f, strip, 4, LayoutPolicy::RoundRobin, 64, rows, true));
        let planned_policy = match first {
            Decision::Offload { replan: Some(p), .. } => p.policy,
            other => panic!("expected replan, got {other:?}"),
        };
        let second = decide(&input(f, strip, 4, planned_policy, 64, rows, true));
        match second {
            Decision::Offload { replan, .. } => assert!(replan.is_none()),
            other => panic!("expected plain offload, got {other:?}"),
        }
    }

    fn test_link(compute_nodes: u32) -> LinkCost {
        LinkCost {
            bytes_per_sec: 100.0 * 1024.0 * 1024.0,
            per_request_secs: 800e-6,
            per_message_secs: 50e-6,
            compute_nodes,
        }
    }

    #[test]
    fn timed_decision_agrees_when_no_fetches() {
        // Zero dependence traffic → offload under both rules.
        let reg = FeatureRegistry::with_builtin();
        let f = reg.get("flow-routing").unwrap();
        let d = input(
            f,
            2 * 64 * 4,
            4,
            LayoutPolicy::GroupedReplicated { group: 8 },
            64,
            512,
            false,
        );
        let byte = decide(&d);
        let timed = decide_timed(&d, &test_link(4));
        assert!(byte.is_offload() && timed.is_offload());
    }

    #[test]
    fn timed_decision_rejects_latency_bound_offloads() {
        // A moderate-byte but request-heavy pattern: the byte rule
        // accepts, the timed rule must reject once per-request costs
        // dominate. One-row strips, ±1-row stride → every strip task
        // fetches two whole strips.
        let features = KernelFeatures::parse_text("Name:op\nDependence: -imgWidth, imgWidth")
            .unwrap()
            .remove(0);
        let d = input(&features, 64 * 4, 8, LayoutPolicy::RoundRobin, 64, 4096, false);
        let byte = decide(&d);
        assert!(byte.is_offload(), "fetch bytes ≈ 2×S ≤ ts bytes = 2×S");
        let slow_requests = LinkCost { per_request_secs: 5e-3, ..test_link(8) };
        let timed = decide_timed(&d, &slow_requests);
        assert!(!timed.is_offload(), "5 ms per fetch must tip the decision");
        // With negligible request cost the timed rule agrees with the
        // byte rule again.
        let fast_requests = LinkCost { per_request_secs: 1e-9, ..test_link(8) };
        assert!(decide_timed(&d, &fast_requests).is_offload());
    }

    #[test]
    fn timed_decision_preserves_byte_rule_rejections() {
        // Whatever the link parameters, a byte-rule rejection stands.
        let features = KernelFeatures::parse_text(
            "Name:wide\nDependence: -5*imgWidth, -3*imgWidth, -imgWidth, imgWidth, 3*imgWidth, 5*imgWidth",
        )
        .unwrap()
        .remove(0);
        let d = input(&features, 64 * 4, 8, LayoutPolicy::RoundRobin, 64, 2048, false);
        assert!(!decide(&d).is_offload());
        let generous = LinkCost { per_request_secs: 0.0, per_message_secs: 1.0, ..test_link(8) };
        assert!(!decide_timed(&d, &generous).is_offload());
    }

    #[test]
    fn timed_decision_keeps_successive_replanning() {
        let reg = FeatureRegistry::with_builtin();
        let f = reg.get("flow-routing").unwrap();
        let d = input(f, 2 * 64 * 4, 4, LayoutPolicy::RoundRobin, 64, 512, true);
        match decide_timed(&d, &test_link(4)) {
            Decision::Offload { replan: Some(plan), .. } => assert!(plan.satisfied),
            other => panic!("expected replanned offload, got {other:?}"),
        }
    }

    #[test]
    fn moderate_dependence_on_round_robin_still_offloads() {
        // The paper's kernels fetch ~2 whole strips per strip task —
        // under 2× file size, while TS pays input + output = 2× file
        // size over client links. Offload wins, matching the paper's
        // observation that NAS still beats nothing (it just loses to
        // TS in *time* because of serialization, not raw bytes).
        let reg = FeatureRegistry::with_builtin();
        let f = reg.get("flow-accumulation").unwrap();
        let d = input(f, 2 * 64 * 4, 4, LayoutPolicy::RoundRobin, 64, 512, false);
        let decision = decide(&d);
        assert!(decision.is_offload());
        let p = decision.predicted();
        assert!(p.nas.bytes > 0);
        assert!(p.nas.bytes <= p.ts_client_bytes);
    }
}
