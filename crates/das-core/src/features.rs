//! Kernel Features descriptors (paper Section III-B).
//!
//! The DAS prototype embeds a *Kernel Features* component in the active
//! storage client that identifies the dependence pattern of each
//! operator from a descriptor, "implemented and represented as a plain
//! text file or an XML file". The text record format is, verbatim from
//! the paper:
//!
//! ```text
//! Name:flow-routing
//! Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1,
//!             imgWidth-1, imgWidth, imgWidth+1
//! ```
//!
//! Offsets are *element* offsets and may be symbolic in the image
//! width, so this module includes a little expression parser
//! (integers, the `imgWidth` variable, `+ - *`, unary minus,
//! parentheses). A parsed [`KernelFeatures`] is instantiated to
//! concrete offsets with [`KernelFeatures::offsets`] once the client
//! knows the actual width.

use std::collections::BTreeMap;
use std::fmt;

/// A symbolic element offset: an arithmetic expression over integer
/// literals and the `imgWidth` variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OffsetExpr {
    /// Integer literal.
    Const(i64),
    /// The image width variable (`imgWidth`).
    ImgWidth,
    /// Negation.
    Neg(Box<OffsetExpr>),
    /// Addition.
    Add(Box<OffsetExpr>, Box<OffsetExpr>),
    /// Subtraction.
    Sub(Box<OffsetExpr>, Box<OffsetExpr>),
    /// Multiplication.
    Mul(Box<OffsetExpr>, Box<OffsetExpr>),
}

impl OffsetExpr {
    /// Evaluate with the given image width.
    pub fn eval(&self, img_width: u64) -> i64 {
        match self {
            OffsetExpr::Const(c) => *c,
            OffsetExpr::ImgWidth => img_width as i64,
            OffsetExpr::Neg(e) => -e.eval(img_width),
            OffsetExpr::Add(a, b) => a.eval(img_width) + b.eval(img_width),
            OffsetExpr::Sub(a, b) => a.eval(img_width) - b.eval(img_width),
            OffsetExpr::Mul(a, b) => a.eval(img_width) * b.eval(img_width),
        }
    }

    /// Parse an expression like `-imgWidth+1` or `2*imgWidth - 3`.
    pub fn parse(src: &str) -> Result<Self, ParseError> {
        let tokens = tokenize(src)?;
        let mut p = Parser { tokens, pos: 0, src };
        let expr = p.expr()?;
        if p.pos != p.tokens.len() {
            return Err(ParseError::new(src, "trailing input after expression"));
        }
        Ok(expr)
    }

    /// The expression as an affine form `a·imgWidth + b`, when it is
    /// linear in `imgWidth`.
    ///
    /// Every well-formed raster dependence offset is affine: `a` is
    /// the row reach and `b` the column reach of that dependence.
    /// Returns `None` for a nonlinear expression (one multiplying
    /// `imgWidth` by itself — such an offset depends quadratically on
    /// the geometry and cannot describe a fixed stencil) or when a
    /// coefficient overflows `i64`. Static analysis uses this to
    /// validate offsets symbolically, for **every** width at once,
    /// instead of sampling a few widths.
    pub fn affine(&self) -> Option<(i64, i64)> {
        match self {
            OffsetExpr::Const(c) => Some((0, *c)),
            OffsetExpr::ImgWidth => Some((1, 0)),
            OffsetExpr::Neg(e) => {
                let (a, b) = e.affine()?;
                Some((a.checked_neg()?, b.checked_neg()?))
            }
            OffsetExpr::Add(x, y) => {
                let (ax, bx) = x.affine()?;
                let (ay, by) = y.affine()?;
                Some((ax.checked_add(ay)?, bx.checked_add(by)?))
            }
            OffsetExpr::Sub(x, y) => {
                let (ax, bx) = x.affine()?;
                let (ay, by) = y.affine()?;
                Some((ax.checked_sub(ay)?, bx.checked_sub(by)?))
            }
            OffsetExpr::Mul(x, y) => {
                let (ax, bx) = x.affine()?;
                let (ay, by) = y.affine()?;
                if ax == 0 {
                    // constant × affine
                    Some((bx.checked_mul(ay)?, bx.checked_mul(by)?))
                } else if ay == 0 {
                    // affine × constant
                    Some((ax.checked_mul(by)?, bx.checked_mul(by)?))
                } else {
                    None // imgWidth × imgWidth: nonlinear
                }
            }
        }
    }
}

impl fmt::Display for OffsetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffsetExpr::Const(c) => write!(f, "{c}"),
            OffsetExpr::ImgWidth => write!(f, "imgWidth"),
            OffsetExpr::Neg(e) => write!(f, "-{e}"),
            OffsetExpr::Add(a, b) => write!(f, "{a}+{b}"),
            OffsetExpr::Sub(a, b) => write!(f, "{a}-{b}"),
            OffsetExpr::Mul(a, b) => write!(f, "{a}*{b}"),
        }
    }
}

/// Descriptor parse failure, with the offending input and a reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The text being parsed when the error occurred.
    pub input: String,
    /// What went wrong.
    pub reason: String,
}

impl ParseError {
    pub(crate) fn new(input: &str, reason: impl Into<String>) -> Self {
        ParseError { input: input.to_string(), reason: reason.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error in {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Int(i64),
    ImgWidth,
    Plus,
    Minus,
    Star,
    LParen,
    RParen,
}

fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v = text
                    .parse::<i64>()
                    .map_err(|_| ParseError::new(src, format!("integer overflow in {text:?}")))?;
                out.push(Token::Int(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let ident = &src[start..i];
                if ident.eq_ignore_ascii_case("imgwidth") {
                    out.push(Token::ImgWidth);
                } else {
                    return Err(ParseError::new(src, format!("unknown identifier {ident:?}")));
                }
            }
            other => return Err(ParseError::new(src, format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    src: &'a str,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// expr := term (('+' | '-') term)*
    fn expr(&mut self) -> Result<OffsetExpr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = OffsetExpr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(Token::Minus) => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = OffsetExpr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    /// term := factor ('*' factor)*
    fn term(&mut self) -> Result<OffsetExpr, ParseError> {
        let mut lhs = self.factor()?;
        while matches!(self.peek(), Some(Token::Star)) {
            self.bump();
            let rhs = self.factor()?;
            lhs = OffsetExpr::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// factor := INT | 'imgWidth' | '-' factor | '(' expr ')'
    fn factor(&mut self) -> Result<OffsetExpr, ParseError> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(OffsetExpr::Const(v)),
            Some(Token::ImgWidth) => Ok(OffsetExpr::ImgWidth),
            Some(Token::Minus) => Ok(OffsetExpr::Neg(Box::new(self.factor()?))),
            Some(Token::LParen) => {
                let inner = self.expr()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(ParseError::new(self.src, "missing closing parenthesis")),
                }
            }
            other => Err(ParseError::new(self.src, format!("unexpected token {other:?}"))),
        }
    }
}

/// A parsed Kernel Features record: operator name plus the symbolic
/// dependence offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelFeatures {
    /// Operator name (the `Name:` line).
    pub name: String,
    /// Symbolic dependence offsets (the `Dependence:` line).
    pub dependence: Vec<OffsetExpr>,
}

impl KernelFeatures {
    /// Instantiate the dependence pattern for a concrete image width.
    pub fn offsets(&self, img_width: u64) -> Vec<i64> {
        self.dependence.iter().map(|e| e.eval(img_width)).collect()
    }

    /// Render the record in the paper's plain-text format.
    pub fn to_text(&self) -> String {
        let deps: Vec<String> = self.dependence.iter().map(|e| e.to_string()).collect();
        format!("Name:{}\nDependence: {}\n", self.name, deps.join(", "))
    }

    /// Parse one or more records from the paper's plain-text format
    /// (records separated by their `Name:` lines; blank lines and `#`
    /// comments are ignored).
    pub fn parse_text(src: &str) -> Result<Vec<KernelFeatures>, ParseError> {
        Ok(Self::parse_text_with_lines(src)?.into_iter().map(|(_, r)| r).collect())
    }

    /// Like [`KernelFeatures::parse_text`], but each record carries
    /// the 1-based line number of its `Name:` line — the anchor that
    /// lets static analysis report findings as `file:line` instead of
    /// just a kernel name.
    pub fn parse_text_with_lines(src: &str) -> Result<Vec<(usize, KernelFeatures)>, ParseError> {
        let mut out: Vec<(usize, KernelFeatures)> = Vec::new();
        let mut current_name: Option<(usize, String)> = None;
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = strip_prefix_ci(line, "name:") {
                if let Some((_, name)) = current_name.take() {
                    return Err(ParseError::new(
                        src,
                        format!("record {name:?} has no Dependence line"),
                    ));
                }
                current_name = Some((lineno, rest.trim().to_string()));
            } else if let Some(rest) = strip_prefix_ci(line, "dependence:") {
                let (name_line, name) = current_name.take().ok_or_else(|| {
                    ParseError::new(src, "Dependence line without preceding Name line")
                })?;
                let mut dependence = Vec::new();
                // `Dependence: none` declares a dependence-free
                // operator (the paper's ideal offloading case).
                if !rest.trim().eq_ignore_ascii_case("none") {
                    for part in rest.split(',') {
                        let part = part.trim();
                        if part.is_empty() {
                            continue;
                        }
                        dependence.push(OffsetExpr::parse(part)?);
                    }
                    if dependence.is_empty() {
                        return Err(ParseError::new(
                            src,
                            format!("record {name:?} lists no offsets (use 'none')"),
                        ));
                    }
                }
                out.push((name_line, KernelFeatures { name, dependence }));
            } else {
                return Err(ParseError::new(raw, "expected Name: or Dependence: line"));
            }
        }
        if let Some((_, name)) = current_name {
            return Err(ParseError::new(src, format!("record {name:?} has no Dependence line")));
        }
        Ok(out)
    }

    /// The stencil reach of this dependence pattern as
    /// `(rows, cols)` — the maximum `|a|` and `|b|` over the affine
    /// forms `a·imgWidth + b` of every offset. `None` when any offset
    /// is not affine in `imgWidth` (see [`OffsetExpr::affine`]).
    ///
    /// The row reach is what the grouped-replication radius check
    /// compares against a layout's strip height: a kernel reaching
    /// `rows` rows needs every strip within
    /// `ceil(rows / strip_rows)` strips locally available.
    pub fn stencil_reach(&self) -> Option<(u64, u64)> {
        let mut rows = 0u64;
        let mut cols = 0u64;
        for e in &self.dependence {
            let (a, b) = e.affine()?;
            rows = rows.max(a.unsigned_abs());
            cols = cols.max(b.unsigned_abs());
        }
        Some((rows, cols))
    }
}

/// Case-insensitive ASCII prefix strip. Compares bytes, so a line
/// starting with multibyte UTF-8 can never match the ASCII `prefix` —
/// and when it does match, the split point is guaranteed to be a char
/// boundary (found by fuzzing: slicing by `prefix.len()` directly
/// panics on input like `"\u{c1}AME:…"`).
fn strip_prefix_ci<'a>(line: &'a str, prefix: &str) -> Option<&'a str> {
    debug_assert!(prefix.is_ascii());
    let (lb, pb) = (line.as_bytes(), prefix.as_bytes());
    if lb.len() >= pb.len() && lb[..pb.len()].eq_ignore_ascii_case(pb) {
        Some(&line[prefix.len()..])
    } else {
        None
    }
}

/// The descriptors shipped with the prototype: one record per kernel in
/// `das-kernels`, written exactly as the paper's Section III-B example.
pub const BUILTIN_DESCRIPTORS: &str = "\
# Kernel Features descriptors (paper Section III-B format).
Name:flow-routing
Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1, imgWidth-1, imgWidth, imgWidth+1

Name:flow-accumulation
Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1, imgWidth-1, imgWidth, imgWidth+1

Name:gaussian-filter
Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1, imgWidth-1, imgWidth, imgWidth+1

Name:median-filter
Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1, imgWidth-1, imgWidth, imgWidth+1

Name:slope-analysis
Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1, imgWidth-1, imgWidth, imgWidth+1

Name:sobel-edge
Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1, imgWidth-1, imgWidth, imgWidth+1

Name:local-variance
Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1, imgWidth-1, imgWidth, imgWidth+1

# Radius-2 stencil: 24 offsets spanning two rows in each direction.
Name:gaussian-filter-5x5
Dependence: -2*imgWidth-2, -2*imgWidth-1, -2*imgWidth, -2*imgWidth+1, -2*imgWidth+2, -imgWidth-2, -imgWidth-1, -imgWidth, -imgWidth+1, -imgWidth+2, -2, -1, 1, 2, imgWidth-2, imgWidth-1, imgWidth, imgWidth+1, imgWidth+2, 2*imgWidth-2, 2*imgWidth-1, 2*imgWidth, 2*imgWidth+1, 2*imgWidth+2

# 4-neighbor (von Neumann) pattern, the paper's other common case.
Name:laplacian-4
Dependence: -imgWidth, -1, 1, imgWidth

# Dependence-free pointwise operator: the ideal active-storage case.
Name:pointwise-scale
Dependence: none
";

/// The operator-name → [`KernelFeatures`] store embedded in the active
/// storage client.
#[derive(Debug, Clone, Default)]
pub struct FeatureRegistry {
    records: BTreeMap<String, KernelFeatures>,
}

impl FeatureRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with [`BUILTIN_DESCRIPTORS`].
    pub fn with_builtin() -> Self {
        let mut reg = Self::new();
        reg.load_text(BUILTIN_DESCRIPTORS)
            .expect("builtin descriptors parse");
        reg
    }

    /// Register a record, replacing any previous one of the same name.
    pub fn insert(&mut self, features: KernelFeatures) {
        self.records.insert(features.name.clone(), features);
    }

    /// Load every record in a plain-text descriptor file.
    pub fn load_text(&mut self, src: &str) -> Result<usize, ParseError> {
        let records = KernelFeatures::parse_text(src)?;
        let n = records.len();
        for r in records {
            self.insert(r);
        }
        Ok(n)
    }

    /// Load a plain-text descriptor file from disk.
    pub fn load_text_file(&mut self, path: impl AsRef<std::path::Path>) -> Result<usize, ParseError> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path).map_err(|e| {
            ParseError::new(&path.display().to_string(), format!("cannot read file: {e}"))
        })?;
        self.load_text(&src)
    }

    /// Load an XML descriptor file from disk.
    pub fn load_xml_file(&mut self, path: impl AsRef<std::path::Path>) -> Result<usize, ParseError> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path).map_err(|e| {
            ParseError::new(&path.display().to_string(), format!("cannot read file: {e}"))
        })?;
        self.load_xml(&src)
    }

    /// Load every record from XML descriptor content (a `<kernels>`
    /// list of `<kernel>` elements, or one bare `<kernel>`).
    pub fn load_xml(&mut self, src: &str) -> Result<usize, ParseError> {
        let records = crate::xml::parse_kernel_xml(src)?;
        let n = records.len();
        for r in records {
            self.insert(r);
        }
        Ok(n)
    }

    /// Look up an operator's features.
    pub fn get(&self, name: &str) -> Option<&KernelFeatures> {
        self.records.get(name)
    }

    /// Registered operator names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.records.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_parser_handles_paper_offsets() {
        let cases = [
            ("-imgWidth+1", -99),
            ("-imgWidth", -100),
            ("-imgWidth-1", -101),
            ("-1", -1),
            ("1", 1),
            ("imgWidth-1", 99),
            ("imgWidth", 100),
            ("imgWidth+1", 101),
        ];
        for (src, expected) in cases {
            let e = OffsetExpr::parse(src).unwrap();
            assert_eq!(e.eval(100), expected, "{src}");
        }
    }

    #[test]
    fn expression_parser_precedence_and_parens() {
        assert_eq!(OffsetExpr::parse("2*imgWidth+1").unwrap().eval(10), 21);
        assert_eq!(OffsetExpr::parse("2*(imgWidth+1)").unwrap().eval(10), 22);
        assert_eq!(OffsetExpr::parse("-(imgWidth-3)*2").unwrap().eval(10), -14);
        assert_eq!(OffsetExpr::parse("1-2-3").unwrap().eval(0), -4, "left assoc");
    }

    #[test]
    fn expression_parser_rejects_garbage() {
        assert!(OffsetExpr::parse("").is_err());
        assert!(OffsetExpr::parse("imgHeight").is_err());
        assert!(OffsetExpr::parse("1 +").is_err());
        assert!(OffsetExpr::parse("(1").is_err());
        assert!(OffsetExpr::parse("1 1").is_err());
        assert!(OffsetExpr::parse("99999999999999999999").is_err());
    }

    #[test]
    fn affine_forms_cover_the_grammar() {
        let cases = [
            ("-imgWidth+1", (-1, 1)),
            ("2*imgWidth-2", (2, -2)),
            ("-(imgWidth-3)*2", (-2, 6)),
            ("7", (0, 7)),
            ("imgWidth*3", (3, 0)),
            ("-imgWidth", (-1, 0)),
        ];
        for (src, expected) in cases {
            let e = OffsetExpr::parse(src).unwrap();
            assert_eq!(e.affine(), Some(expected), "{src}");
            // Affine form must agree with direct evaluation.
            for w in [1u64, 16, 1000] {
                let (a, b) = e.affine().unwrap();
                assert_eq!(e.eval(w), a * w as i64 + b, "{src} at width {w}");
            }
        }
        // Nonlinear: imgWidth × imgWidth has no affine form.
        assert_eq!(OffsetExpr::parse("imgWidth*imgWidth").unwrap().affine(), None);
        assert_eq!(OffsetExpr::parse("imgWidth*(imgWidth+1)").unwrap().affine(), None);
    }

    #[test]
    fn parse_with_lines_anchors_records() {
        let src = "# comment\nName:a\nDependence: 1\n\nName:b\nDependence: none\n";
        let recs = KernelFeatures::parse_text_with_lines(src).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, 2);
        assert_eq!(recs[0].1.name, "a");
        assert_eq!(recs[1].0, 5);
        assert_eq!(recs[1].1.name, "b");
    }

    #[test]
    fn stencil_reach_of_builtin_kernels() {
        let reg = FeatureRegistry::with_builtin();
        assert_eq!(reg.get("flow-routing").unwrap().stencil_reach(), Some((1, 1)));
        assert_eq!(reg.get("laplacian-4").unwrap().stencil_reach(), Some((1, 1)));
        assert_eq!(reg.get("gaussian-filter-5x5").unwrap().stencil_reach(), Some((2, 2)));
        assert_eq!(reg.get("pointwise-scale").unwrap().stencil_reach(), Some((0, 0)));
    }

    #[test]
    fn text_roundtrip() {
        let rec = KernelFeatures {
            name: "flow-routing".into(),
            dependence: vec![
                OffsetExpr::parse("-imgWidth+1").unwrap(),
                OffsetExpr::parse("imgWidth").unwrap(),
            ],
        };
        let text = rec.to_text();
        let parsed = KernelFeatures::parse_text(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].offsets(50), rec.offsets(50));
        assert_eq!(parsed[0].name, "flow-routing");
    }

    #[test]
    fn paper_record_parses_verbatim() {
        // The exact record from Section III-B.
        let src = "Name:flow-routing\nDependence: -imgWidth + 1, -imgWidth, -imgWidth - 1, -1, 1, imgWidth - 1, imgWidth, imgWidth + 1";
        let recs = KernelFeatures::parse_text(src).unwrap();
        assert_eq!(recs[0].offsets(100), vec![-99, -100, -101, -1, 1, 99, 100, 101]);
    }

    #[test]
    fn multi_record_files_with_comments() {
        let n = FeatureRegistry::new().load_text(BUILTIN_DESCRIPTORS).unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn malformed_records_rejected() {
        assert!(KernelFeatures::parse_text("Dependence: 1").is_err());
        assert!(KernelFeatures::parse_text("Name:x").is_err());
        assert!(KernelFeatures::parse_text("Name:x\nName:y\nDependence: 1").is_err());
        assert!(KernelFeatures::parse_text("Name:x\nDependence:").is_err());
        assert!(KernelFeatures::parse_text("garbage line").is_err());
    }

    #[test]
    fn builtin_registry_matches_kernel_implementations() {
        use das_kernels::{kernel_by_name, kernel_names};
        let reg = FeatureRegistry::with_builtin();
        for &name in kernel_names() {
            let kernel = kernel_by_name(name).unwrap();
            let features = reg.get(name).unwrap_or_else(|| panic!("{name} registered"));
            for w in [16u64, 100, 2048] {
                let mut a = features.offsets(w);
                let mut b = kernel.dependence_offsets(w);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "descriptor/kernel mismatch for {name} at width {w}");
            }
        }
    }

    #[test]
    fn registry_replaces_on_reinsert() {
        let mut reg = FeatureRegistry::new();
        reg.load_text("Name:op\nDependence: 1").unwrap();
        assert_eq!(reg.get("op").unwrap().offsets(10), vec![1]);
        reg.load_text("Name:op\nDependence: 2, 3").unwrap();
        assert_eq!(reg.get("op").unwrap().offsets(10), vec![2, 3]);
        assert_eq!(reg.names(), vec!["op"]);
    }
}
