//! The Active Storage Client (paper Fig. 2, left column).
//!
//! Applications hand active-storage requests to this client; it looks
//! up the operator's Kernel Features record, queries the parallel file
//! system for the file's distribution, and runs the Fig. 3 decision
//! workflow. Execution of the accepted request (building the storage-
//! side helper processes, timing, etc.) belongs to `das-runtime`; this
//! client produces the *decision* and, when asked, applies the layout
//! reconfiguration to the file system.

use std::fmt;
use std::sync::Arc;

use das_pfs::{DistributionInfo, FileId, PfsCluster, PfsError, TrafficLog};

use crate::decide::{decide, Decision, DecisionInput};
use crate::features::FeatureRegistry;
use crate::plan::PlanOptions;

/// Errors surfaced by [`ActiveStorageClient`].
#[derive(Debug)]
pub enum ClientError {
    /// No Kernel Features record is registered for the operator, so
    /// its bandwidth cost cannot be predicted (the AS component
    /// refuses such requests).
    UnknownOperator(String),
    /// The underlying file system refused the request.
    Pfs(PfsError),
    /// The file's byte length is not `width × k × element_size`.
    GeometryMismatch {
        /// File length in bytes.
        file_len: u64,
        /// Requested image width in elements.
        img_width: u64,
        /// Element size in bytes.
        element_size: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::UnknownOperator(name) => {
                write!(f, "no kernel features registered for operator {name:?}")
            }
            ClientError::Pfs(e) => write!(f, "file system error: {e}"),
            ClientError::GeometryMismatch { file_len, img_width, element_size } => write!(
                f,
                "file of {file_len} bytes is not a whole number of {img_width}-element rows \
                 ({element_size}-byte elements)"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<PfsError> for ClientError {
    fn from(e: PfsError) -> Self {
        ClientError::Pfs(e)
    }
}

/// Per-request parameters.
#[derive(Debug, Clone, Copy)]
pub struct RequestOptions {
    /// Image width in elements (binds the descriptor's `imgWidth`).
    pub img_width: u64,
    /// Element size `E` in bytes (default 4, `f32` rasters).
    pub element_size: u64,
    /// Whether a successive operation will reuse this data/pattern.
    pub successive: bool,
    /// Planner bounds for reconfiguration.
    pub plan_opts: PlanOptions,
}

impl Default for RequestOptions {
    fn default() -> Self {
        RequestOptions {
            img_width: 0,
            element_size: 4,
            successive: false,
            plan_opts: PlanOptions::default(),
        }
    }
}

/// The client-side entry point of the DAS architecture.
#[derive(Clone, Default)]
pub struct ActiveStorageClient {
    registry: FeatureRegistry,
    metrics: Option<Arc<das_obs::Registry>>,
}

impl fmt::Debug for ActiveStorageClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActiveStorageClient")
            .field("registry", &self.registry)
            .field("observed", &self.metrics.is_some())
            .finish()
    }
}

impl ActiveStorageClient {
    /// A client with an empty feature registry.
    pub fn new(registry: FeatureRegistry) -> Self {
        ActiveStorageClient { registry, metrics: None }
    }

    /// A client pre-loaded with the descriptors of every built-in
    /// kernel.
    pub fn with_builtin_features() -> Self {
        ActiveStorageClient { registry: FeatureRegistry::with_builtin(), metrics: None }
    }

    /// Record every decision this client makes into `metrics`: one
    /// `das_decide_total{decision}` count per outcome plus the Eqs.
    /// 1–13 predicted wire traffic (dependence fetches/bytes and the
    /// normal-I/O client bytes) that priced it.
    pub fn with_observability(mut self, metrics: Arc<das_obs::Registry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The underlying registry (e.g. to load additional descriptor
    /// files).
    pub fn registry_mut(&mut self) -> &mut FeatureRegistry {
        &mut self.registry
    }

    /// Read access to the registry.
    pub fn registry(&self) -> &FeatureRegistry {
        &self.registry
    }

    /// Run the Fig. 3 decision workflow for `operator` on `file`.
    pub fn decide(
        &self,
        pfs: &PfsCluster,
        file: FileId,
        operator: &str,
        opts: &RequestOptions,
    ) -> Result<Decision, ClientError> {
        self.decide_from_distribution(pfs.distribution_info(file)?, operator, opts)
    }

    /// The distribution-driven half of [`Self::decide`], for callers
    /// that obtained the file's [`DistributionInfo`] some other way —
    /// in particular the networked service, where the client fetches it
    /// over an RPC and the storage daemon validates requests against
    /// its own copy rather than an in-process [`PfsCluster`].
    pub fn decide_from_distribution(
        &self,
        dist: DistributionInfo,
        operator: &str,
        opts: &RequestOptions,
    ) -> Result<Decision, ClientError> {
        let features = self
            .registry
            .get(operator)
            .ok_or_else(|| ClientError::UnknownOperator(operator.to_string()))?;
        let row_bytes = opts.img_width * opts.element_size;
        if row_bytes == 0 || !dist.file_len.is_multiple_of(row_bytes) {
            return Err(ClientError::GeometryMismatch {
                file_len: dist.file_len,
                img_width: opts.img_width,
                element_size: opts.element_size,
            });
        }
        let decision = decide(&DecisionInput {
            features,
            dist,
            element_size: opts.element_size,
            img_width: opts.img_width,
            // Stencil kernels produce input-sized output.
            output_bytes: dist.file_len,
            successive: opts.successive,
            plan_opts: opts.plan_opts,
        });
        if let Some(metrics) = &self.metrics {
            let outcome = if decision.is_offload() { "offload" } else { "reject" };
            metrics.counter("das_decide_total", &[("decision", outcome)]).inc();
            let p = decision.predicted();
            metrics.counter("das_predicted_nas_fetches_total", &[]).add(p.nas.fetches);
            metrics.counter("das_predicted_nas_bytes_total", &[]).add(p.nas.bytes);
            metrics.counter("das_predicted_ts_bytes_total", &[]).add(p.ts_client_bytes);
        }
        Ok(decision)
    }

    /// Run the decision workflow and, if it chose a new layout, apply
    /// the reconfiguration to the file system. Returns the decision
    /// and the redistribution traffic (empty when nothing moved).
    pub fn decide_and_prepare(
        &self,
        pfs: &mut PfsCluster,
        file: FileId,
        operator: &str,
        opts: &RequestOptions,
    ) -> Result<(Decision, TrafficLog), ClientError> {
        let decision = self.decide(pfs, file, operator, opts)?;
        let traffic = match &decision {
            Decision::Offload { replan: Some(plan), .. } => pfs.redistribute(file, plan.policy)?,
            _ => TrafficLog::default(),
        };
        Ok((decision, traffic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_pfs::{LayoutPolicy, StripeSpec};

    fn cluster_with_image(servers: u32, width: u64, rows: u64) -> (PfsCluster, FileId) {
        let mut pfs = PfsCluster::new(servers);
        let data = vec![7u8; (width * rows * 4) as usize];
        let file = pfs
            .create("img", &data, StripeSpec::new((2 * width * 4) as usize), LayoutPolicy::RoundRobin)
            .unwrap();
        (pfs, file)
    }

    #[test]
    fn unknown_operator_is_refused() {
        let (pfs, file) = cluster_with_image(4, 64, 64);
        let client = ActiveStorageClient::with_builtin_features();
        let err = client
            .decide(&pfs, file, "bitcoin-miner", &RequestOptions { img_width: 64, ..Default::default() })
            .unwrap_err();
        assert!(matches!(err, ClientError::UnknownOperator(_)));
    }

    #[test]
    fn geometry_mismatch_is_refused() {
        let (pfs, file) = cluster_with_image(4, 64, 64);
        let client = ActiveStorageClient::with_builtin_features();
        let err = client
            .decide(&pfs, file, "flow-routing", &RequestOptions { img_width: 100, ..Default::default() })
            .unwrap_err();
        assert!(matches!(err, ClientError::GeometryMismatch { .. }));
    }

    #[test]
    fn decide_and_prepare_reconfigures_for_pipelines() {
        let (mut pfs, file) = cluster_with_image(4, 64, 512);
        let client = ActiveStorageClient::with_builtin_features();
        let opts = RequestOptions { img_width: 64, successive: true, ..Default::default() };
        let (decision, traffic) = client
            .decide_and_prepare(&mut pfs, file, "flow-routing", &opts)
            .unwrap();
        assert!(decision.is_offload());
        assert!(traffic.bytes_moved() > 0, "redistribution happened");
        let dist = pfs.distribution_info(file).unwrap();
        assert!(matches!(dist.policy, LayoutPolicy::GroupedReplicated { .. }));
        pfs.verify(file).unwrap();

        // Second request finds the friendly layout and moves nothing.
        let (decision2, traffic2) = client
            .decide_and_prepare(&mut pfs, file, "flow-accumulation", &opts)
            .unwrap();
        assert!(decision2.is_offload());
        assert_eq!(traffic2.bytes_moved(), 0);
    }

    #[test]
    fn rejected_requests_leave_layout_untouched() {
        let mut client = ActiveStorageClient::with_builtin_features();
        client
            .registry_mut()
            .load_text("Name:wide\nDependence: -5*imgWidth, 5*imgWidth, -3*imgWidth, 3*imgWidth, -7*imgWidth, 7*imgWidth")
            .unwrap();
        // Force a small strip so the wide stride thrashes.
        let mut pfs_small = PfsCluster::new(8);
        let data = vec![1u8; 64 * 2048 * 4];
        let file_small = pfs_small
            .create("img", &data, StripeSpec::new(64 * 4), LayoutPolicy::RoundRobin)
            .unwrap();
        let (decision, traffic) = client
            .decide_and_prepare(
                &mut pfs_small,
                file_small,
                "wide",
                &RequestOptions { img_width: 64, ..Default::default() },
            )
            .unwrap();
        assert!(!decision.is_offload());
        assert_eq!(traffic.bytes_moved(), 0);
        assert_eq!(
            pfs_small.distribution_info(file_small).unwrap().policy,
            LayoutPolicy::RoundRobin
        );
    }
}
