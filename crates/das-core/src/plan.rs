//! The improved-data-distribution calculator (paper Section III-D).
//!
//! Given an operation's dependence offsets, pick a layout under which
//! every dependence is locally satisfiable on the processing server:
//!
//! 1. if the current/default round-robin layout is already dependence-
//!    free, keep it (no cost);
//! 2. else, if some group size `r` makes the paper's Eq. 17 criterion
//!    (`offset·E / (r·strip_size) mod D = 0`) hold for **every**
//!    offset, plain grouping co-locates all dependence with **zero**
//!    capacity overhead;
//! 3. otherwise fall back to the paper's replication strategy
//!    ([`das_pfs::LayoutPolicy::GroupedReplicated`]): `r` successive
//!    strips per server with boundary strips copied to the ring
//!    neighbors, costing `2/r` extra capacity. The group size trades
//!    that overhead (small `r` = high overhead) against load-balance
//!    granularity (huge `r` = fewer groups than servers), bounded by
//!    [`PlanOptions`].
//!
//! Every candidate is validated against the exact predictor, so
//! `satisfied == true` is a *proof* (under the model) that offloading
//! will move zero dependence bytes — the property the DAS scheme's
//! experimental win rests on.

use das_pfs::{Layout, LayoutPolicy};

use crate::predict::{DependencePrediction, StripingParams};

/// Knobs bounding the planner's search.
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// Maximum acceptable replication capacity overhead (`2/r`);
    /// default 0.25, i.e. `r ≥ 8`.
    pub max_capacity_overhead: f64,
    /// Largest group size considered; default 64.
    pub max_group: u64,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { max_capacity_overhead: 0.25, max_group: 64 }
    }
}

/// The planner's output: a layout, whether it provably eliminates
/// dependence traffic, and at what capacity cost.
#[derive(Debug, Clone, Copy)]
pub struct LayoutPlan {
    /// The chosen policy.
    pub policy: LayoutPolicy,
    /// True iff the exact predictor counts zero remote dependence
    /// fetches under this layout.
    pub satisfied: bool,
    /// Nominal extra storage fraction (`2/r` for replicated layouts).
    pub capacity_overhead: f64,
    /// The predictor's verdict under the chosen layout.
    pub prediction: DependencePrediction,
}

impl LayoutPlan {
    /// Whether adopting the plan means reconfiguring away from
    /// `current` (paper Fig. 3's "Reconfig Parallel File System" box).
    pub fn requires_change(&self, current: LayoutPolicy) -> bool {
        self.policy != current
    }
}

/// Choose a data distribution for the given dependence pattern.
///
/// `element_size`, `strip_size` and `servers` describe the target file
/// system; `file_len` is the file's size in bytes (whole elements).
pub fn plan_distribution(
    offsets: &[i64],
    element_size: u64,
    strip_size: u64,
    servers: u32,
    file_len: u64,
    opts: PlanOptions,
) -> LayoutPlan {
    let params_for = |policy: LayoutPolicy| StripingParams {
        element_size,
        strip_size,
        layout: Layout::new(policy, servers),
    };
    let evaluate = |policy: LayoutPolicy| params_for(policy).predict_file(offsets, file_len);

    // Step 1: is the default layout already dependence-free? (True for
    // patterns that never leave a strip, or a single-server system.)
    let rr = evaluate(LayoutPolicy::RoundRobin);
    if rr.all_local() {
        return LayoutPlan {
            policy: LayoutPolicy::RoundRobin,
            satisfied: true,
            capacity_overhead: 0.0,
            prediction: rr,
        };
    }

    // Step 2: a pure grouped layout via Eq. 17 — zero overhead if some
    // r co-locates every offset by arithmetic alone.
    for r in 1..=opts.max_group {
        let params = params_for(LayoutPolicy::Grouped { group: r });
        if offsets.iter().all(|&o| params.eq17_holds(o)) {
            let prediction = evaluate(LayoutPolicy::Grouped { group: r });
            if prediction.all_local() {
                return LayoutPlan {
                    policy: LayoutPolicy::Grouped { group: r },
                    satisfied: true,
                    capacity_overhead: 0.0,
                    prediction,
                };
            }
        }
    }

    // Step 3: grouped + replicated. Larger r means lower replication
    // overhead (2/r) but coarser placement: with g = ⌈strips/r⌉ groups
    // over D servers, the busiest server processes ⌈g/D⌉·r strips.
    // Offloaded kernels run at strip granularity, so placement
    // imbalance multiplies compute time directly — pick the largest r
    // (up to the overhead-cap preference) whose busiest-server load
    // stays within ~15% of the ideal strips/D.
    let strips = file_len.div_ceil(strip_size).max(1);
    let r_cap = ((2.0 / opts.max_capacity_overhead).ceil() as u64)
        .min(opts.max_group)
        .max(1);
    let ideal = strips as f64 / f64::from(servers);
    let mut r = 1;
    for cand in 1..=r_cap {
        let groups = strips.div_ceil(cand);
        let max_strips = groups.div_ceil(u64::from(servers)) * cand;
        if max_strips as f64 <= ideal * 1.15 {
            r = cand;
        }
    }
    let policy = LayoutPolicy::GroupedReplicated { group: r };
    let prediction = evaluate(policy);
    LayoutPlan {
        policy,
        satisfied: prediction.all_local(),
        capacity_overhead: 2.0 / r as f64,
        prediction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8-neighbor offsets for an image `w` elements wide.
    fn eight(w: i64) -> Vec<i64> {
        vec![-w + 1, -w, -w - 1, -1, 1, w - 1, w, w + 1]
    }

    #[test]
    fn local_pattern_keeps_round_robin() {
        // Horizontal-only dependence inside a big strip: interior
        // elements are local, only strip-boundary elements cross — so
        // not all-local; but a pattern of empty offsets trivially is.
        let plan = plan_distribution(&[], 4, 1024, 8, 1 << 20, PlanOptions::default());
        assert_eq!(plan.policy, LayoutPolicy::RoundRobin);
        assert!(plan.satisfied);
        assert_eq!(plan.capacity_overhead, 0.0);
    }

    #[test]
    fn single_server_needs_no_change() {
        let plan = plan_distribution(&eight(64), 4, 256, 1, 64 * 64 * 4, PlanOptions::default());
        assert_eq!(plan.policy, LayoutPolicy::RoundRobin);
        assert!(plan.satisfied);
    }

    #[test]
    fn eq17_exact_multiple_uses_pure_grouping() {
        // One offset, exactly one strip: stride·E = strip_size. With
        // D=4 servers, r·D strips per round: Eq. 17 holds for r=...
        // stride·E/(r·s) must be ≡ 0 mod 4 — impossible for a 1-strip
        // stride unless r=... 1/(r) integer → r=1 and 1 % 4 ≠ 0. So use
        // stride of exactly D strips: offset·E = 4·strip_size, r=1 →
        // 4 mod 4 = 0 → plain round-robin-style grouping satisfies.
        let strip = 256u64;
        let e = 4u64;
        let offset = (4 * strip / e) as i64; // 4 strips ahead
        let plan = plan_distribution(&[offset, -offset], e, strip, 4, 64 * strip, PlanOptions::default());
        assert!(plan.satisfied);
        assert_eq!(plan.capacity_overhead, 0.0);
        match plan.policy {
            LayoutPolicy::RoundRobin | LayoutPolicy::Grouped { .. } => {}
            other => panic!("expected non-replicated policy, got {other:?}"),
        }
    }

    #[test]
    fn stencil_pattern_gets_replicated_grouping() {
        // 64-wide image, strip = 2 rows: the classic case.
        let w = 64i64;
        let e = 4u64;
        let strip = 2 * 64 * e; // two rows
        let file = 4096 * 64 * e; // 4096 rows
        let plan = plan_distribution(&eight(w), e, strip, 8, file, PlanOptions::default());
        assert!(matches!(plan.policy, LayoutPolicy::GroupedReplicated { .. }));
        assert!(plan.satisfied, "remote: {:?}", plan.prediction);
        assert!(plan.capacity_overhead <= 0.25 + 1e-9);
    }

    #[test]
    fn overhead_cap_respected() {
        let w = 64i64;
        let e = 4u64;
        let strip = 2 * 64 * e;
        let file = 4096 * 64 * e;
        for cap in [0.5, 0.25, 0.125] {
            let plan = plan_distribution(
                &eight(w),
                e,
                strip,
                8,
                file,
                PlanOptions { max_capacity_overhead: cap, max_group: 64 },
            );
            assert!(plan.capacity_overhead <= cap + 1e-9, "cap {cap}");
            assert!(plan.satisfied);
        }
    }

    #[test]
    fn small_files_prefer_balance_over_overhead() {
        // 32 strips on 8 servers → r capped at 4 so every server keeps
        // a group, even though the overhead cap alone would pick r=8.
        let e = 4u64;
        let strip = 2 * 64 * e;
        let file = 32 * strip;
        let plan = plan_distribution(&eight(64), e, strip, 8, file, PlanOptions::default());
        match plan.policy {
            LayoutPolicy::GroupedReplicated { group } => assert_eq!(group, 4),
            other => panic!("unexpected policy {other:?}"),
        }
    }

    #[test]
    fn oversized_dependence_reported_unsatisfied() {
        // Offsets spanning several strips cannot be covered by ±1-strip
        // replication; the planner must say so rather than lie.
        let e = 4u64;
        let strip = 64 * e; // one 64-element row per strip
        let w = 64i64;
        // Vertical reach of ±3 rows = ±3 strips.
        let offsets = vec![-3 * w, 3 * w];
        let plan = plan_distribution(&offsets, e, strip, 8, 1024 * strip, PlanOptions::default());
        assert!(!plan.satisfied);
        assert!(plan.prediction.remote_fetches > 0);
    }

    #[test]
    fn requires_change_compares_policies() {
        let plan = LayoutPlan {
            policy: LayoutPolicy::GroupedReplicated { group: 8 },
            satisfied: true,
            capacity_overhead: 0.25,
            prediction: DependencePrediction {
                elements: 0,
                local_fetches: 0,
                remote_fetches: 0,
                remote_bytes: 0,
            },
        };
        assert!(plan.requires_change(LayoutPolicy::RoundRobin));
        assert!(!plan.requires_change(LayoutPolicy::GroupedReplicated { group: 8 }));
    }
}
