//! Minimal XML reader for Kernel Features descriptors.
//!
//! The paper allows patterns to be "implemented and represented as a
//! plain text file or an XML file". This is a deliberately small,
//! dependency-free reader for exactly the descriptor schema — elements,
//! text content, `<!-- comments -->` and an optional XML declaration;
//! no attributes, namespaces or entities:
//!
//! ```xml
//! <kernels>
//!   <kernel>
//!     <name>flow-routing</name>
//!     <dependence>-imgWidth+1, -imgWidth, -imgWidth-1, -1, 1,
//!                 imgWidth-1, imgWidth, imgWidth+1</dependence>
//!   </kernel>
//! </kernels>
//! ```

use crate::features::{KernelFeatures, OffsetExpr, ParseError};

/// A parsed element: tag, text directly inside it, child elements.
#[derive(Debug)]
struct Element {
    tag: String,
    text: String,
    children: Vec<Element>,
}

struct Reader<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Reader<'a> {
    fn skip_noise(&mut self) {
        loop {
            let rest = &self.src[self.pos..];
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if let Some(stripped) = trimmed.strip_prefix("<!--") {
                match stripped.find("-->") {
                    Some(end) => self.pos += 4 + end + 3,
                    None => {
                        self.pos = self.src.len();
                        return;
                    }
                }
            } else if trimmed.starts_with("<?") {
                match trimmed.find("?>") {
                    Some(end) => self.pos += end + 2,
                    None => {
                        self.pos = self.src.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn parse_element(&mut self) -> Result<Element, ParseError> {
        self.skip_noise();
        let rest = &self.src[self.pos..];
        if !rest.starts_with('<') {
            return Err(ParseError::new(self.src, "expected '<' to open an element"));
        }
        let close = rest
            .find('>')
            .ok_or_else(|| ParseError::new(self.src, "unterminated opening tag"))?;
        let tag = rest[1..close].trim();
        if tag.is_empty() || !tag.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(ParseError::new(self.src, format!("bad tag name {tag:?}")));
        }
        let tag = tag.to_string();
        self.pos += close + 1;

        let mut text = String::new();
        let mut children = Vec::new();
        loop {
            // Accumulate text up to the next tag.
            let rest = &self.src[self.pos..];
            let lt = rest
                .find('<')
                .ok_or_else(|| ParseError::new(self.src, format!("<{tag}> never closed")))?;
            text.push_str(&rest[..lt]);
            self.pos += lt;
            let rest = &self.src[self.pos..];
            if let Some(after) = rest.strip_prefix("</") {
                let close = after
                    .find('>')
                    .ok_or_else(|| ParseError::new(self.src, "unterminated closing tag"))?;
                let closing = after[..close].trim();
                if closing != tag {
                    return Err(ParseError::new(
                        self.src,
                        format!("mismatched </{closing}> for <{tag}>"),
                    ));
                }
                self.pos += 2 + close + 1;
                return Ok(Element { tag, text, children });
            } else if rest.starts_with("<!--") {
                self.skip_noise();
            } else {
                children.push(self.parse_element()?);
            }
        }
    }
}

/// Parse an XML descriptor document into kernel feature records.
///
/// Accepts either a `<kernels>` list of `<kernel>` elements or a
/// single bare `<kernel>` element at the root.
pub fn parse_kernel_xml(src: &str) -> Result<Vec<KernelFeatures>, ParseError> {
    let mut reader = Reader { src, pos: 0 };
    let root = reader.parse_element()?;
    reader.skip_noise();
    if reader.src[reader.pos..].trim() != "" {
        return Err(ParseError::new(src, "trailing content after root element"));
    }

    let kernel_elements: Vec<&Element> = match root.tag.as_str() {
        "kernels" => root.children.iter().collect(),
        "kernel" => vec![&root],
        other => {
            return Err(ParseError::new(
                src,
                format!("expected <kernels> or <kernel> root, found <{other}>"),
            ))
        }
    };

    let mut out = Vec::new();
    for el in kernel_elements {
        if el.tag != "kernel" {
            return Err(ParseError::new(src, format!("unexpected <{}> in <kernels>", el.tag)));
        }
        let mut name: Option<String> = None;
        let mut dependence: Option<Vec<OffsetExpr>> = None;
        let mut dependence_none = false;
        for child in &el.children {
            match child.tag.as_str() {
                "name" => name = Some(child.text.trim().to_string()),
                "dependence" => {
                    // `<dependence>none</dependence>` declares a
                    // dependence-free operator, mirroring
                    // `Dependence: none` in the plain-text format.
                    if child.text.trim() == "none" {
                        dependence = Some(Vec::new());
                        dependence_none = true;
                        continue;
                    }
                    let mut offsets = Vec::new();
                    for part in child.text.split(',') {
                        let part = part.trim();
                        if part.is_empty() {
                            continue;
                        }
                        offsets.push(OffsetExpr::parse(part)?);
                    }
                    dependence = Some(offsets);
                }
                other => {
                    return Err(ParseError::new(src, format!("unexpected <{other}> in <kernel>")))
                }
            }
        }
        let name = name.ok_or_else(|| ParseError::new(src, "<kernel> missing <name>"))?;
        let dependence =
            dependence.ok_or_else(|| ParseError::new(src, "<kernel> missing <dependence>"))?;
        if name.is_empty() {
            return Err(ParseError::new(src, "<name> is empty"));
        }
        if dependence.is_empty() && !dependence_none {
            return Err(ParseError::new(src, "<dependence> lists no offsets (use `none` for a dependence-free operator)"));
        }
        out.push(KernelFeatures { name, dependence });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_document_parses() {
        let src = r#"<?xml version="1.0"?>
<!-- descriptor file -->
<kernels>
  <kernel>
    <name>flow-routing</name>
    <dependence>-imgWidth+1, -imgWidth, -imgWidth-1, -1, 1,
                imgWidth-1, imgWidth, imgWidth+1</dependence>
  </kernel>
  <kernel>
    <name>row-diff</name>
    <dependence>-imgWidth</dependence>
  </kernel>
</kernels>"#;
        let recs = parse_kernel_xml(src).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "flow-routing");
        assert_eq!(recs[0].offsets(100).len(), 8);
        assert_eq!(recs[1].offsets(100), vec![-100]);
    }

    #[test]
    fn bare_kernel_root_accepted() {
        let src = "<kernel><name>x</name><dependence>1, -1</dependence></kernel>";
        let recs = parse_kernel_xml(src).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].offsets(10), vec![1, -1]);
    }

    #[test]
    fn comments_between_kernels_ok() {
        let src = "<kernels><!-- a --><kernel><name>x</name><dependence>1</dependence></kernel><!-- b --></kernels>";
        assert_eq!(parse_kernel_xml(src).unwrap().len(), 1);
    }

    #[test]
    fn structural_errors_rejected() {
        assert!(parse_kernel_xml("<kernels><kernel></kernel></kernels>").is_err()); // missing name
        assert!(parse_kernel_xml("<kernels><kernel><name>x</name></kernel></kernels>").is_err()); // missing dependence
        assert!(parse_kernel_xml("<wrong><kernel/></wrong>").is_err());
        assert!(parse_kernel_xml("<kernels><kernel><name>x</name><dependence>1</dependence>")
            .is_err()); // unclosed
        assert!(parse_kernel_xml(
            "<kernels><kernel><name>x</name><dependence>1</dependence></oops></kernels>"
        )
        .is_err()); // mismatched close
        assert!(parse_kernel_xml(
            "<kernel><name>x</name><dependence>1</dependence></kernel><kernel>"
        )
        .is_err()); // trailing content
    }

    #[test]
    fn dependence_none_yields_pointwise_kernel() {
        let src = "<kernel><name>scale</name><dependence>none</dependence></kernel>";
        let recs = parse_kernel_xml(src).unwrap();
        assert!(recs[0].offsets(100).is_empty());
        // An empty list without the explicit `none` is still an error.
        assert!(parse_kernel_xml("<kernel><name>x</name><dependence> </dependence></kernel>")
            .is_err());
    }

    #[test]
    fn bad_offsets_inside_xml_rejected() {
        let src = "<kernel><name>x</name><dependence>imgHeight</dependence></kernel>";
        assert!(parse_kernel_xml(src).is_err());
    }
}
