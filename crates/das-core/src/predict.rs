//! Bandwidth analysis and prediction (paper Section III-C).
//!
//! The DAS client predicts, *before* offloading, how many bytes an
//! operation's data dependence will drag between storage servers. The
//! paper's model:
//!
//! * **Eq. 1** `strip(i) = i·E / strip_size` — the strip of the `i`-th
//!   element, for element size `E`;
//! * **Eq. 2** `location(i) = strip(i) mod D` — its server under
//!   round-robin striping over `D` servers;
//! * **Eqs. 3–4** the same for each dependent element `i + offsetₙ`;
//! * **Eq. 5** `bwcost = E · Σ aj` with `aj = 1` iff dependent element
//!   `j` lives on a *different* server — the per-element bandwidth
//!   cost;
//! * **Eqs. 8–13** specialize to a symmetric stride: all three of
//!   `l − stride, l, l + stride` co-locate iff
//!   `stride·E / strip_size mod D = 0`;
//! * **Eqs. 14–16** generalize location to the grouped layout
//!   (`location = (i·E / (r·strip_size)) mod D`), and **Eq. 17** gives
//!   the offload criterion `stride·E / (r·strip_size) mod D = 0`.
//!
//! [`StripingParams`] implements the per-element equations literally,
//! and adds what the equations alone can't see: with the
//! grouped+replicated layout a dependent element on a *neighboring*
//! strip may be locally available as a **replica**, so locality is
//! decided against the full holder set of the dependent strip
//! ([`das_pfs::Layout::holds`]). Whole-file sums are computed exactly
//! in `O(strips × offsets)` rather than `O(elements × offsets)` by
//! aggregating runs of elements whose dependence lands in the same
//! strip.

use std::collections::BTreeSet;

use das_pfs::{DistributionInfo, Layout, LayoutPolicy, ServerId, StripId};

/// The strips other than `t` itself containing any dependence of any
/// element of strip `t`: the union over `offsets` of the strips
/// overlapped by `[t·se + o, (t+1)·se + o) ∩ [0, n)`, for `se`
/// elements per strip and `n` total elements.
///
/// This is the strip-granular dependence set every layer needs — the
/// predictor (to price NAS re-fetching), the simulated schemes (to
/// assemble exactly the strips a node touches), and the networked
/// executor (to know what to pull from peer servers).
pub fn dependent_strips(
    t: u64,
    offsets: &[i64],
    elems_per_strip: u64,
    total_elements: u64,
) -> BTreeSet<u64> {
    let base = t * elems_per_strip;
    let len_t = elems_per_strip.min(total_elements.saturating_sub(base));
    let mut needed = BTreeSet::new();
    for &o in offsets {
        let lo = (base as i64 + o).max(0);
        let hi = ((base + len_t) as i64 + o).min(total_elements as i64);
        if lo >= hi {
            continue;
        }
        let u0 = lo as u64 / elems_per_strip;
        let u1 = (hi as u64 - 1) / elems_per_strip;
        for u in u0..=u1 {
            if u != t {
                needed.insert(u);
            }
        }
    }
    needed
}

/// The inputs of the prediction model: element size `E` plus the
/// striping/distribution of the file (strip size, server count `D`,
/// layout policy with group size `r`).
#[derive(Debug, Clone, Copy)]
pub struct StripingParams {
    /// Element size `E` in bytes.
    pub element_size: u64,
    /// Strip size in bytes.
    pub strip_size: u64,
    /// The bound layout (policy + server count `D`).
    pub layout: Layout,
}

impl StripingParams {
    /// Build from a file's [`DistributionInfo`] (as queried from the
    /// parallel file system) and the application's element size.
    ///
    /// # Panics
    /// Panics unless `element_size > 0` and the strip size is a
    /// multiple of the element size (elements must not straddle strip
    /// boundaries; PVFS2-style systems guarantee this for power-of-two
    /// sizes).
    pub fn from_distribution(info: &DistributionInfo, element_size: u64) -> Self {
        assert!(element_size > 0, "element size must be positive");
        assert_eq!(
            info.strip_size as u64 % element_size,
            0,
            "strip size must be a multiple of the element size"
        );
        StripingParams {
            element_size,
            strip_size: info.strip_size as u64,
            layout: Layout::new(info.policy, info.servers),
        }
    }

    /// Elements per strip.
    pub fn elements_per_strip(&self) -> u64 {
        self.strip_size / self.element_size
    }

    /// Paper Eq. 1: the strip of element `i`.
    pub fn strip_of(&self, i: u64) -> StripId {
        StripId(i * self.element_size / self.strip_size)
    }

    /// Paper Eq. 2 / Eq. 14: the server processing element `i` — the
    /// primary holder of its strip, `(i·E / (r·strip_size)) mod D`.
    pub fn location_of(&self, i: u64) -> ServerId {
        self.layout.primary(self.strip_of(i))
    }

    /// Paper Eq. 14 written out literally (used by tests to show the
    /// layout code implements the equation).
    pub fn location_by_equation(&self, i: u64) -> u64 {
        let r = self.layout.policy.group_size();
        (i * self.element_size / (r * self.strip_size)) % u64::from(self.layout.servers)
    }

    /// Paper Eqs. 11–13 / 17: does a symmetric stride dependence stay
    /// on one server *by placement arithmetic alone* (no replication)?
    /// True iff `stride·E` is a whole number of `r·strip_size` groups
    /// *and* that group distance is a multiple of `D`.
    pub fn eq17_holds(&self, stride: i64) -> bool {
        let bytes = stride.unsigned_abs() * self.element_size;
        let group_bytes = self.layout.policy.group_size() * self.strip_size;
        bytes.is_multiple_of(group_bytes)
            && (bytes / group_bytes).is_multiple_of(u64::from(self.layout.servers))
    }

    /// Paper Eq. 5 for one element: `bwcost(i) = E · Σ aj`, where
    /// `aj = 1` iff dependent element `i + offsetⱼ` (clipped to the
    /// file) is not locally available to the server processing `i`
    /// (replicas count as local).
    pub fn element_bw_cost(&self, i: u64, offsets: &[i64], total_elements: u64) -> u64 {
        let server = self.location_of(i);
        let mut aj_sum = 0u64;
        for &o in offsets {
            let d = i as i64 + o;
            if d < 0 || d as u64 >= total_elements {
                continue; // boundary element: dependence falls off the file
            }
            let dep_strip = self.strip_of(d as u64);
            if !self.layout.holds(server, dep_strip) {
                aj_sum += 1;
            }
        }
        self.element_size * aj_sum
    }

    /// Exact whole-file sum of Eq. 5 in `O(strips × offsets)` time.
    ///
    /// # Panics
    /// Panics unless `file_len` is a multiple of the element size.
    pub fn predict_file(&self, offsets: &[i64], file_len: u64) -> DependencePrediction {
        assert_eq!(file_len % self.element_size, 0, "file length must be whole elements");
        let n = file_len / self.element_size;
        let se = self.elements_per_strip();
        let strips = n.div_ceil(se.max(1));
        let mut local = 0u64;
        let mut remote = 0u64;

        for t in 0..strips {
            let base = t * se;
            let len_t = se.min(n - base);
            let server = self.layout.primary(StripId(t));
            for &o in offsets {
                // Dependent elements of this strip's elements: the
                // interval [base + o, base + len_t + o) ∩ [0, n).
                let lo = (base as i64 + o).max(0);
                let hi = ((base + len_t) as i64 + o).min(n as i64);
                if lo >= hi {
                    continue;
                }
                let (lo, hi) = (lo as u64, hi as u64);
                let u0 = lo / se;
                let u1 = (hi - 1) / se;
                for u in u0..=u1 {
                    let seg_lo = lo.max(u * se);
                    let seg_hi = hi.min((u + 1) * se);
                    let count = seg_hi - seg_lo;
                    if u == t || self.layout.holds(server, StripId(u)) {
                        local += count;
                    } else {
                        remote += count;
                    }
                }
            }
        }

        DependencePrediction {
            elements: n,
            local_fetches: local,
            remote_fetches: remote,
            remote_bytes: remote * self.element_size,
        }
    }

    /// Predict the strip-granular fetching a *naive* active storage
    /// service performs: for each strip a server processes, every
    /// dependent strip it does not hold is pulled whole from its
    /// primary (and pulled **again** for the next strip that needs it —
    /// the paper's "each strip was transferred multiple times").
    pub fn predict_nas_fetches(&self, offsets: &[i64], file_len: u64) -> NasFetchPrediction {
        let plan = self.nas_fetch_plan(offsets, file_len);
        let mut distinct = std::collections::BTreeSet::new();
        let mut bytes = 0u64;
        for f in &plan {
            bytes += f.len_bytes;
            distinct.insert(f.u);
        }
        NasFetchPrediction {
            fetches: plan.len() as u64,
            bytes,
            distinct_strips: distinct.len() as u64,
        }
    }

    /// The individual strip pulls behind [`predict_nas_fetches`]: one
    /// entry per (processed strip `t`, remote dependent strip `u`)
    /// pair, in processing order. Exposed so a wire-cost model can map
    /// each entry onto the RPC exchange that realises it
    /// (`GetStrip(u)` / `StripData(len_bytes)`).
    ///
    /// [`predict_nas_fetches`]: StripingParams::predict_nas_fetches
    pub fn nas_fetch_plan(&self, offsets: &[i64], file_len: u64) -> Vec<NasFetch> {
        assert_eq!(file_len % self.element_size, 0, "file length must be whole elements");
        let n = file_len / self.element_size;
        let se = self.elements_per_strip();
        let strips = n.div_ceil(se.max(1));
        let mut plan = Vec::new();

        for t in 0..strips {
            let server = self.layout.primary(StripId(t));
            for u in self.remote_dependent_strips(server, t, offsets, n) {
                plan.push(NasFetch { t, u, len_bytes: self.strip_len_bytes(u, file_len) });
            }
        }

        plan
    }

    /// [`dependent_strips`] of strip `t` under these parameters.
    pub fn dependent_strips(&self, t: u64, offsets: &[i64], total_elements: u64) -> BTreeSet<u64> {
        dependent_strips(t, offsets, self.elements_per_strip(), total_elements)
    }

    /// The dependent strips of `t` that `server` holds no copy of —
    /// what an active-storage executor on `server` must fetch from
    /// peers before processing strip `t`.
    pub fn remote_dependent_strips(
        &self,
        server: ServerId,
        t: u64,
        offsets: &[i64],
        total_elements: u64,
    ) -> BTreeSet<u64> {
        self.dependent_strips(t, offsets, total_elements)
            .into_iter()
            .filter(|&u| !self.layout.holds(server, StripId(u)))
            .collect()
    }

    /// Byte length of strip `u` in a file of `file_len` bytes (the
    /// final strip may be partial).
    pub fn strip_len_bytes(&self, u: u64, file_len: u64) -> u64 {
        file_len.saturating_sub(u * self.strip_size).min(self.strip_size)
    }

    /// The layout these parameters assume.
    pub fn policy(&self) -> LayoutPolicy {
        self.layout.policy
    }
}

/// Whole-file sum of the paper's Eq. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DependencePrediction {
    /// Elements in the file.
    pub elements: u64,
    /// Dependence lookups satisfiable on the processing server
    /// (same strip, or a strip held locally as a replica).
    pub local_fetches: u64,
    /// Dependence lookups requiring another server (`Σ aj`).
    pub remote_fetches: u64,
    /// `E · Σ aj` — the paper's total bandwidth cost.
    pub remote_bytes: u64,
}

impl DependencePrediction {
    /// True when the layout satisfies every dependence locally — the
    /// goal of the DAS improved distribution.
    pub fn all_local(&self) -> bool {
        self.remote_fetches == 0
    }

    /// Fraction of dependence lookups that go remote.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_fetches + self.remote_fetches;
        if total == 0 {
            0.0
        } else {
            self.remote_fetches as f64 / total as f64
        }
    }
}

/// One strip pull from [`StripingParams::nas_fetch_plan`]: while
/// processing strip `t`, the primary server fetches remote dependent
/// strip `u` (`len_bytes` payload bytes on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NasFetch {
    /// Strip being processed when the fetch is issued.
    pub t: u64,
    /// Remote dependent strip pulled from its primary.
    pub u: u64,
    /// Byte length of strip `u` (the final strip may be partial).
    pub len_bytes: u64,
}

/// Predicted strip-fetch traffic of a naive active-storage service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NasFetchPrediction {
    /// Total strip fetches performed (with re-fetches).
    pub fetches: u64,
    /// Total bytes pulled between servers.
    pub bytes: u64,
    /// Distinct strips pulled at least once (`fetches / distinct` is
    /// the paper's "transferred multiple times" amplification).
    pub distinct_strips: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(e: u64, strip: u64, d: u32, policy: LayoutPolicy) -> StripingParams {
        StripingParams {
            element_size: e,
            strip_size: strip,
            layout: Layout::new(policy, d),
        }
    }

    #[test]
    fn eq1_eq2_round_robin() {
        // E = 4, strip = 16 bytes → 4 elements per strip, D = 3.
        let p = params(4, 16, 3, LayoutPolicy::RoundRobin);
        assert_eq!(p.strip_of(0), StripId(0));
        assert_eq!(p.strip_of(3), StripId(0));
        assert_eq!(p.strip_of(4), StripId(1));
        assert_eq!(p.location_of(4), ServerId(1));
        assert_eq!(p.location_of(12), ServerId(0)); // strip 3 → 3 mod 3
    }

    #[test]
    fn eq14_equation_matches_layout_code() {
        for policy in [
            LayoutPolicy::RoundRobin,
            LayoutPolicy::Grouped { group: 3 },
            LayoutPolicy::GroupedReplicated { group: 4 },
        ] {
            let p = params(4, 64, 5, policy);
            for i in 0..1_000u64 {
                assert_eq!(
                    u64::from(p.location_of(i).0),
                    p.location_by_equation(i),
                    "policy {policy:?}, element {i}"
                );
            }
        }
    }

    #[test]
    fn eq17_criterion() {
        // E=4, strip=16, D=3, r=1: stride·4 must be a multiple of 16·3.
        let p = params(4, 16, 3, LayoutPolicy::RoundRobin);
        assert!(p.eq17_holds(12)); // 48 bytes = 16·3
        assert!(p.eq17_holds(-12));
        assert!(p.eq17_holds(24));
        assert!(!p.eq17_holds(4)); // one strip over → next server
        assert!(!p.eq17_holds(6));
        assert!(p.eq17_holds(0));

        // Grouping by r=2 doubles the co-location distance.
        let p2 = params(4, 16, 3, LayoutPolicy::Grouped { group: 2 });
        assert!(p2.eq17_holds(24)); // 96 bytes = (2·16)·3
        assert!(!p2.eq17_holds(12));
    }

    #[test]
    fn eq17_predicts_same_location_for_stride_triples() {
        // Paper Eqs. 11–13: when the criterion holds, l−stride, l and
        // l+stride all land on one server; when it fails, some element
        // has a displaced neighbor.
        let p = params(4, 16, 3, LayoutPolicy::RoundRobin);
        let n = 600u64;
        for stride in [4i64, 6, 12, 24, 7] {
            let holds = p.eq17_holds(stride);
            let mut all_same = true;
            for l in 0..n {
                for d in [l as i64 - stride, l as i64 + stride] {
                    if d >= 0 && (d as u64) < n && p.location_of(d as u64) != p.location_of(l) {
                        all_same = false;
                    }
                }
            }
            assert_eq!(holds, all_same, "stride {stride}");
        }
    }

    #[test]
    fn element_cost_matches_brute_force_file_sum() {
        let offsets = [-9i64, -8, -7, -1, 1, 7, 8, 9]; // 8-neighbor, width 8
        for policy in [
            LayoutPolicy::RoundRobin,
            LayoutPolicy::Grouped { group: 2 },
            LayoutPolicy::GroupedReplicated { group: 2 },
        ] {
            let p = params(4, 16, 3, policy);
            let file_len = 4 * 8 * 30; // 30 rows of 8 elements
            let n = file_len / 4;
            let brute: u64 = (0..n).map(|i| p.element_bw_cost(i, &offsets, n)).sum();
            let fast = p.predict_file(&offsets, file_len);
            assert_eq!(fast.remote_bytes, brute, "policy {policy:?}");
        }
    }

    #[test]
    fn round_robin_8neighbor_has_remote_dependence() {
        // Width 8 elements, 4 elements/strip → vertical neighbors are
        // 2 strips away; on 3 servers round-robin that is remote.
        let p = params(4, 16, 3, LayoutPolicy::RoundRobin);
        let offsets = [-9i64, -8, -7, -1, 1, 7, 8, 9];
        let pred = p.predict_file(&offsets, 4 * 8 * 30);
        assert!(pred.remote_fetches > 0);
        assert!(pred.remote_fraction() > 0.3);
    }

    #[test]
    fn grouped_replicated_makes_8neighbor_fully_local() {
        // Strip = two rows (16 elements ≥ the widest offset 9), so
        // every dependence reaches at most the adjacent strip, which
        // boundary replication covers.
        let p = params(4, 64, 3, LayoutPolicy::GroupedReplicated { group: 4 });
        let offsets = [-9i64, -8, -7, -1, 1, 7, 8, 9];
        let pred = p.predict_file(&offsets, 4 * 8 * 36);
        assert!(pred.all_local(), "remote: {}", pred.remote_fetches);
        assert_eq!(pred.remote_bytes, 0);
    }

    #[test]
    fn one_row_strips_defeat_single_strip_replication() {
        // With a one-row strip the 1-D offset ±(W+1) spans **two**
        // strips, which single-boundary replication cannot cover — the
        // reason the planner must pick strip-relative group geometry.
        let p = params(4, 32, 3, LayoutPolicy::GroupedReplicated { group: 4 });
        let offsets = [-9i64, -8, -7, -1, 1, 7, 8, 9];
        let pred = p.predict_file(&offsets, 4 * 8 * 36);
        assert!(!pred.all_local());
    }

    #[test]
    fn grouping_without_replication_reduces_but_keeps_boundary_traffic() {
        let offsets = [-9i64, -8, -7, -1, 1, 7, 8, 9];
        let rr = params(4, 32, 3, LayoutPolicy::RoundRobin);
        let grouped = params(4, 32, 3, LayoutPolicy::Grouped { group: 4 });
        let len = 4 * 8 * 48;
        let pred_rr = rr.predict_file(&offsets, len);
        let pred_g = grouped.predict_file(&offsets, len);
        assert!(pred_g.remote_fetches < pred_rr.remote_fetches);
        assert!(pred_g.remote_fetches > 0, "group boundaries still cross servers");
    }

    #[test]
    fn boundary_elements_cost_nothing() {
        // A file of one strip: every in-file dependence is same-strip,
        // out-of-file dependence is clipped.
        let p = params(4, 64, 4, LayoutPolicy::RoundRobin);
        let pred = p.predict_file(&[-1, 1], 64);
        assert!(pred.all_local());
        assert_eq!(pred.elements, 16);
        // 16 elements × 2 offsets − 2 clipped = 30 local lookups.
        assert_eq!(pred.local_fetches, 30);
    }

    #[test]
    fn nas_fetch_amplification_counts_refetches() {
        // Width 8, strip = 2 rows, 3 servers round-robin: each strip t
        // needs strips t−1 and t+1, both on other servers.
        let p = params(4, 64, 3, LayoutPolicy::RoundRobin);
        let offsets = [-9i64, -8, -7, -1, 1, 7, 8, 9];
        let rows = 30u64;
        let strips = rows / 2;
        let nas = p.predict_nas_fetches(&offsets, 4 * 8 * rows);
        // Interior strips fetch 2, the two edge strips fetch 1.
        assert_eq!(nas.fetches, 2 * (strips - 2) + 2);
        assert_eq!(nas.bytes, nas.fetches * 64);
        // Every strip is pulled at least once by some neighbor.
        assert_eq!(nas.distinct_strips, strips);
        // Amplification: "each strip was transferred multiple times".
        assert!(nas.fetches as f64 / nas.distinct_strips as f64 > 1.8);
    }

    #[test]
    fn nas_fetches_vanish_under_improved_layout() {
        let p = params(4, 64, 3, LayoutPolicy::GroupedReplicated { group: 4 });
        let offsets = [-9i64, -8, -7, -1, 1, 7, 8, 9];
        let nas = p.predict_nas_fetches(&offsets, 4 * 8 * 36);
        assert_eq!(nas.fetches, 0);
        assert_eq!(nas.bytes, 0);
    }

    #[test]
    #[should_panic(expected = "multiple of the element size")]
    fn misaligned_strip_size_rejected() {
        let info = DistributionInfo {
            strip_size: 10,
            servers: 2,
            policy: LayoutPolicy::RoundRobin,
            file_len: 100,
        };
        let _ = StripingParams::from_distribution(&info, 4);
    }

    #[test]
    #[should_panic(expected = "whole elements")]
    fn partial_element_file_rejected() {
        let p = params(4, 16, 2, LayoutPolicy::RoundRobin);
        let _ = p.predict_file(&[1], 30);
    }
}
