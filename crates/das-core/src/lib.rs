//! # das-core — the Dynamic Active Storage architecture
//!
//! This crate is the reproduction of the actual contribution of
//! *"Dynamic Active Storage for High Performance I/O"* (Chen & Chen,
//! ICPP 2012): an active-storage system that is **aware of data
//! dependence** and decides *dynamically* whether offloading an
//! operation to the storage servers will help or hurt.
//!
//! The paper's architecture (its Fig. 2) has four moving parts, each a
//! module here:
//!
//! * [`features`] — the **Kernel Features** component: per-operator
//!   descriptor files declaring an operation's dependence pattern as
//!   element offsets, possibly symbolic in the image width
//!   (`Dependence: -imgWidth+1, -imgWidth, …`). Both the plain-text
//!   format of the paper's Section III-B and a minimal XML form are
//!   supported, with a small expression parser for the offsets.
//! * [`predict`] — **bandwidth analysis and prediction**: the paper's
//!   Eqs. 1–5 (per-element strip/location arithmetic and the
//!   `bwcost = E · Σ aj` estimate), Eqs. 8–13 (stride analysis) and
//!   Eqs. 14–17 (the grouped/replicated generalization), implemented
//!   exactly and also summed over whole files in O(strips) time.
//! * [`plan`] — the **improved data distribution** calculator: choose
//!   the group size `r` and replication so mutually dependent data is
//!   co-located (paper Section III-D), trading the `2/r` capacity
//!   overhead against the offload criterion.
//! * [`decide`](mod@decide) + [`client`] — the Fig. 3 **workflow**: fetch the
//!   dependence pattern, query the file's distribution from the
//!   parallel file system, predict the bandwidth cost, and accept the
//!   offload (optionally reconfiguring the layout when a successive
//!   operation will reuse it) or reject it and fall back to normal I/O.
//!
//! ```
//! use das_core::features::FeatureRegistry;
//! use das_core::client::{ActiveStorageClient, RequestOptions};
//! use das_pfs::{PfsCluster, StripeSpec, LayoutPolicy};
//!
//! // A 256-wide f32 image on 4 servers, round-robin strips of 1 KiB.
//! let mut pfs = PfsCluster::new(4);
//! let data = vec![0u8; 256 * 256 * 4];
//! let file = pfs
//!     .create("img", &data, StripeSpec::new(1024), LayoutPolicy::RoundRobin)
//!     .unwrap();
//!
//! let client = ActiveStorageClient::with_builtin_features();
//! let decision = client
//!     .decide(&pfs, file, "flow-routing", &RequestOptions { img_width: 256, ..Default::default() })
//!     .unwrap();
//! // The dependence pattern crosses servers on this layout, but whole-
//! // strip service still beats shipping the file to the clients, so it
//! // offloads; with a successive op declared it would also replan the
//! // layout. Either way the decision is explainable:
//! println!("{decision:?}");
//! ```


pub mod client;
pub mod decide;
pub mod features;
pub mod plan;
pub mod predict;
pub mod xml;

pub use client::{ActiveStorageClient, RequestOptions};
pub use decide::{decide, decide_timed, Decision, DecisionInput, LinkCost, RejectReason};
pub use features::{FeatureRegistry, KernelFeatures, OffsetExpr, ParseError};
pub use plan::{plan_distribution, LayoutPlan, PlanOptions};
pub use predict::{
    dependent_strips, DependencePrediction, NasFetch, NasFetchPrediction, StripingParams,
};
pub use xml::parse_kernel_xml;
