//! Property tests for the DAS core: the fast whole-file predictor must
//! agree with the literal per-element equations, descriptors must
//! round-trip through both formats, the planner must keep its promises
//! and Eq. 17 must be sound.

use das_core::{
    plan_distribution, FeatureRegistry, KernelFeatures, OffsetExpr, PlanOptions, StripingParams,
};
use das_pfs::{Layout, LayoutPolicy};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = LayoutPolicy> {
    prop_oneof![
        Just(LayoutPolicy::RoundRobin),
        (1u64..6).prop_map(|group| LayoutPolicy::Grouped { group }),
        (1u64..6).prop_map(|group| LayoutPolicy::GroupedReplicated { group }),
    ]
}

fn arb_offsets() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-200i64..200, 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fast_prediction_equals_per_element_sum(
        policy in arb_policy(),
        servers in 1u32..7,
        offsets in arb_offsets(),
        strips in 1u64..40,
    ) {
        let p = StripingParams {
            element_size: 4,
            strip_size: 32,
            layout: Layout::new(policy, servers),
        };
        let file_len = strips * 32;
        let n = file_len / 4;
        let brute: u64 = (0..n).map(|i| p.element_bw_cost(i, &offsets, n)).sum();
        let fast = p.predict_file(&offsets, file_len);
        prop_assert_eq!(fast.remote_bytes, brute);
        // Every dependence lookup is either local or remote.
        let clipped: u64 = (0..n)
            .map(|i| offsets.iter().filter(|&&o| {
                let d = i as i64 + o;
                d >= 0 && (d as u64) < n
            }).count() as u64)
            .sum();
        prop_assert_eq!(fast.local_fetches + fast.remote_fetches, clipped);
    }

    #[test]
    fn eq14_equation_is_the_layout(
        policy in arb_policy(),
        servers in 1u32..9,
        i in 0u64..100_000,
    ) {
        let p = StripingParams {
            element_size: 8,
            strip_size: 64,
            layout: Layout::new(policy, servers),
        };
        prop_assert_eq!(u64::from(p.location_of(i).0), p.location_by_equation(i));
    }

    #[test]
    fn eq17_soundness(
        group in 1u64..5,
        servers in 1u32..6,
        stride in 1i64..400,
    ) {
        // When Eq. 17 holds, *no* element may have a displaced
        // stride-neighbor (the criterion is exact for pure grouping).
        let p = StripingParams {
            element_size: 4,
            strip_size: 16,
            layout: Layout::new(LayoutPolicy::Grouped { group }, servers),
        };
        if p.eq17_holds(stride) {
            let n = 2_000u64;
            for l in 0..n {
                let d = l as i64 + stride;
                if (d as u64) < n {
                    prop_assert_eq!(p.location_of(l), p.location_of(d as u64));
                }
            }
        }
    }

    #[test]
    fn descriptor_text_roundtrip(
        offsets in prop::collection::vec(-500i64..500, 1..12),
        use_width in any::<bool>(),
    ) {
        let dependence: Vec<OffsetExpr> = offsets
            .iter()
            .map(|&o| {
                let c = OffsetExpr::Const(o);
                if use_width {
                    OffsetExpr::Add(Box::new(OffsetExpr::ImgWidth), Box::new(c))
                } else {
                    c
                }
            })
            .collect();
        let rec = KernelFeatures { name: "op".into(), dependence };
        let text = rec.to_text();
        let parsed = KernelFeatures::parse_text(&text).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        for w in [1u64, 17, 2048] {
            prop_assert_eq!(parsed[0].offsets(w), rec.offsets(w));
        }
    }

    #[test]
    fn descriptor_xml_equals_text(
        offsets in prop::collection::vec(-500i64..500, 1..12),
    ) {
        let deps: Vec<String> = offsets.iter().map(|o| o.to_string()).collect();
        let text = format!("Name:op\nDependence: {}", deps.join(", "));
        let xml = format!(
            "<kernel><name>op</name><dependence>{}</dependence></kernel>",
            deps.join(", ")
        );
        let mut reg_a = FeatureRegistry::new();
        reg_a.load_text(&text).unwrap();
        let mut reg_b = FeatureRegistry::new();
        reg_b.load_xml(&xml).unwrap();
        prop_assert_eq!(
            reg_a.get("op").unwrap().offsets(99),
            reg_b.get("op").unwrap().offsets(99)
        );
    }

    #[test]
    fn planner_promises_hold(
        servers in 2u32..7,
        rows in 16u64..200,
        width in 8u64..64,
    ) {
        // 8-neighbor pattern, strip of two rows: the planner must find
        // a satisfying layout and stay within its overhead bound.
        let w = width as i64;
        let offsets = vec![-w + 1, -w, -w - 1, -1, 1, w - 1, w, w + 1];
        let strip = 2 * width * 4;
        let file = rows * width * 4;
        let opts = PlanOptions::default();
        let plan = plan_distribution(&offsets, 4, strip, servers, file, opts);
        if plan.satisfied {
            prop_assert_eq!(plan.prediction.remote_fetches, 0);
        }
        prop_assert!(plan.capacity_overhead <= 2.0 + 1e-9);
        match plan.policy {
            LayoutPolicy::GroupedReplicated { group } => {
                prop_assert!(group >= 1 && group <= opts.max_group);
                prop_assert!((plan.capacity_overhead - 2.0 / group as f64).abs() < 1e-12);
            }
            _ => prop_assert_eq!(plan.capacity_overhead, 0.0),
        }
        // The plan's prediction must match an independent evaluation.
        let p = StripingParams {
            element_size: 4,
            strip_size: strip,
            layout: Layout::new(plan.policy, servers),
        };
        let check = p.predict_file(&offsets, file);
        prop_assert_eq!(check, plan.prediction);
    }

    #[test]
    fn prediction_is_monotone_in_file_size(
        policy in arb_policy(),
        servers in 1u32..6,
        offsets in arb_offsets(),
    ) {
        let p = StripingParams {
            element_size: 4,
            strip_size: 64,
            layout: Layout::new(policy, servers),
        };
        let small = p.predict_file(&offsets, 64 * 10);
        let big = p.predict_file(&offsets, 64 * 20);
        prop_assert!(big.remote_fetches >= small.remote_fetches);
        prop_assert!(big.local_fetches >= small.local_fetches);
    }
}
