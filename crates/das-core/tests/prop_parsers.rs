//! Robustness fuzzing for the descriptor parsers: arbitrary input must
//! produce `Err`, never a panic, and valid inputs must round-trip.
//! Descriptor files arrive from users (the paper's Kernel Features are
//! plain files on disk), so the parse surface is hostile territory.

use das_core::{KernelFeatures, OffsetExpr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expression_parser_never_panics(src in ".*") {
        let _ = OffsetExpr::parse(&src);
    }

    #[test]
    fn expression_parser_never_panics_on_exprlike(
        src in "[-+*() 0-9a-zA-Z_]{0,40}",
    ) {
        let _ = OffsetExpr::parse(&src);
    }

    #[test]
    fn text_parser_never_panics(src in "(.|\n){0,300}") {
        let _ = KernelFeatures::parse_text(&src);
    }

    #[test]
    fn text_parser_never_panics_on_recordlike(
        name in "[a-z-]{1,12}",
        deps in "[-+*imgWidth0-9, ]{0,60}",
    ) {
        let src = format!("Name:{name}\nDependence: {deps}");
        let _ = KernelFeatures::parse_text(&src);
    }

    #[test]
    fn xml_parser_never_panics(src in "(.|\n){0,300}") {
        let mut reg = das_core::FeatureRegistry::new();
        let _ = reg.load_xml(&src);
    }

    #[test]
    fn xml_parser_never_panics_on_taggy_input(
        src in "(<[a-z/!-]{0,8}>|[a-z0-9, +*-]{0,8}){0,30}",
    ) {
        let mut reg = das_core::FeatureRegistry::new();
        let _ = reg.load_xml(&src);
    }

    #[test]
    fn valid_expressions_always_roundtrip(
        terms in prop::collection::vec((any::<bool>(), -10_000i64..10_000), 1..6),
    ) {
        // Build `±imgWidth*k ± c …` style strings from parts.
        let mut src = String::new();
        for (i, (use_width, c)) in terms.iter().enumerate() {
            if i > 0 {
                src.push_str(if c % 2 == 0 { "+" } else { "-" });
            }
            if *use_width {
                src.push_str(&format!("{}*imgWidth", c.abs() % 100));
            } else {
                src.push_str(&(c.abs() % 10_000).to_string());
            }
        }
        let parsed = OffsetExpr::parse(&src).expect("constructed to be valid");
        // Display → parse is a fixpoint.
        let redisplayed = parsed.to_string();
        let reparsed = OffsetExpr::parse(&redisplayed).expect("display output parses");
        for w in [1u64, 64, 4096] {
            prop_assert_eq!(parsed.eval(w), reparsed.eval(w));
        }
    }
}
