//! In-process loopback fleets: boot N real `dasd` daemons on
//! ephemeral ports inside this process, so `das bench` can compare
//! connection engines with no external orchestration.

use std::io;
use std::net::TcpListener;

use das_net::{spawn, DasCluster, DasdConfig, DasdHandle, Engine, NetError};

/// A running loopback fleet. Shut it down with [`Fleet::shutdown`];
/// dropping without shutdown leaves the daemon threads running until
/// process exit.
pub struct Fleet {
    /// Listen address of every daemon, by server id.
    pub addrs: Vec<String>,
    handles: Vec<DasdHandle>,
}

/// Bind `servers` ephemeral loopback ports and spawn one daemon per
/// port, all running `engine` with a `pool`-sized worker pool.
/// `max_backlog` overrides the daemons' admission-control bound
/// (`None` keeps the default) — small bounds turn a past-capacity run
/// into a reproducible overload/shedding scenario.
pub fn spawn_fleet(
    servers: usize,
    engine: Engine,
    pool: usize,
    max_backlog: Option<usize>,
) -> io::Result<Fleet> {
    let mut listeners = Vec::with_capacity(servers);
    let mut addrs = Vec::with_capacity(servers);
    for _ in 0..servers {
        let l = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(l.local_addr()?.to_string());
        listeners.push(l);
    }
    let mut handles = Vec::with_capacity(servers);
    for (i, l) in listeners.into_iter().enumerate() {
        let mut cfg = DasdConfig::new(i as u32, addrs.clone()).with_engine(engine);
        cfg.pool = pool;
        if let Some(b) = max_backlog {
            cfg = cfg.with_max_backlog(b);
        }
        handles.push(spawn(cfg, l)?);
    }
    Ok(Fleet { addrs, handles })
}

impl Fleet {
    /// Stop every daemon: a protocol `Shutdown` to each, then join
    /// their threads.
    pub fn shutdown(self) -> Result<(), NetError> {
        let mut cluster = DasCluster::connect(&self.addrs)?;
        cluster.shutdown_all()?;
        drop(cluster);
        for h in self.handles {
            h.join();
        }
        Ok(())
    }
}
