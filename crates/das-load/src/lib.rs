//! # das-load — open-loop load generation for the das-net service
//!
//! Drives a live `dasd` fleet with a mixed put/get/exec workload from
//! hundreds of concurrent client workers multiplexed over pipelined
//! connections ([`das_net::PipeClient`]), and reports throughput and
//! latency quantiles per operation class.
//!
//! The generator is **open-loop**: operation *i* is scheduled at an
//! absolute arrival time drawn from a seeded exponential (Poisson)
//! process of the configured rate, independent of when earlier
//! operations complete. Latency is measured from the **scheduled**
//! arrival, not from when a worker got around to issuing the request,
//! so queueing delay under overload is charged to the server — the
//! property that makes open-loop numbers honest where closed-loop
//! generators silently self-throttle (coordinated omission).
//!
//! Two entry points:
//!
//! * [`run_bench`] — drive an already-running fleet once and return a
//!   [`report::BenchReport`].
//! * [`compare_engines`] — boot two in-process loopback fleets (one
//!   per [`das_net::Engine`]), run the identical seeded workload
//!   against each, and return a [`report::CompareReport`] naming the
//!   winner. This is what `das bench` writes to `BENCH_net.json`.

pub mod fleet;
pub mod report;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use das_net::{DasCluster, Message, NetError, PipeClient, RetryPolicy};
use das_obs::{event, Histogram, Level};
use das_pfs::LayoutPolicy;

use report::{BenchReport, ClassStats, CompareReport};

/// One operation class of the mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `GetStrip` of a random strip from its primary holder.
    Get,
    /// `PutStrip` of a full strip to its primary holder.
    Put,
    /// A forced single-server kernel execution (dependence fetches
    /// and all) over a small raster file.
    Exec,
}

impl OpKind {
    /// All classes, in report order.
    pub const ALL: [OpKind; 3] = [OpKind::Get, OpKind::Put, OpKind::Exec];

    /// The class's report label.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Put => "put",
            OpKind::Exec => "exec",
        }
    }
}

/// Relative weights of the operation classes in the arrival stream.
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Weight of [`OpKind::Get`].
    pub get: u32,
    /// Weight of [`OpKind::Put`].
    pub put: u32,
    /// Weight of [`OpKind::Exec`].
    pub exec: u32,
}

impl Default for Mix {
    fn default() -> Self {
        Mix { get: 70, put: 25, exec: 5 }
    }
}

impl Mix {
    /// Parse `get:put:exec` weights, e.g. `70:25:5`. At least one
    /// weight must be nonzero.
    pub fn parse(s: &str) -> Option<Mix> {
        let mut it = s.split(':');
        let get = it.next()?.trim().parse().ok()?;
        let put = it.next()?.trim().parse().ok()?;
        let exec = it.next()?.trim().parse().ok()?;
        if it.next().is_some() || get + put + exec == 0 {
            return None;
        }
        Some(Mix { get, put, exec })
    }

    fn pick(&self, roll: u64) -> OpKind {
        let total = (self.get + self.put + self.exec) as u64;
        let r = roll % total;
        if r < self.get as u64 {
            OpKind::Get
        } else if r < (self.get + self.put) as u64 {
            OpKind::Put
        } else {
            OpKind::Exec
        }
    }
}

/// Everything one benchmark run needs to know.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Target aggregate arrival rate, operations per second.
    pub rate: f64,
    /// Run length: arrivals are scheduled across this window.
    pub duration: Duration,
    /// Concurrent client workers draining the arrival schedule.
    pub clients: usize,
    /// Pipelined connections opened per server; workers share them.
    pub conns_per_server: usize,
    /// Strip size of the benchmark file, bytes.
    pub strip_size: u32,
    /// Number of strips in the benchmark file.
    pub strips: u64,
    /// Operation-class mix.
    pub mix: Mix,
    /// Seed for arrivals, class picks, and strip picks.
    pub seed: u64,
    /// Kernel the exec class runs.
    pub kernel: String,
    /// Rows (= strips) of the small raster the exec class computes on.
    pub exec_rows: u64,
    /// Servers per in-process fleet ([`compare_engines`] only).
    pub servers: usize,
    /// Daemon worker-pool size ([`compare_engines`] only).
    pub pool: usize,
    /// Daemon admission-control bound ([`compare_engines`] only):
    /// `None` keeps the daemon default. Set small together with a
    /// past-capacity `rate` to run a reproducible overload scenario —
    /// the excess is shed as typed `Overloaded`, which the report
    /// shows under `errors_by_code` / `requests_shed` while
    /// `queue_depth_peak` stays at this bound.
    pub max_backlog: Option<usize>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            // A rate the fleet can actually sustain: the exec class
            // (kernel + peer dependence fetches) costs tens of
            // milliseconds of pool time per call, so an open-loop
            // rate far past capacity just measures queueing collapse
            // on BOTH engines instead of the architectural gap.
            rate: 400.0,
            duration: Duration::from_secs(5),
            clients: 64,
            // More sockets per daemon than the daemon has pool
            // threads: the load shape a thread-per-connection core
            // cannot serve (it pins one thread per socket for the
            // socket's lifetime) and the event loop handles without
            // breaking stride.
            conns_per_server: 16,
            strip_size: 4096,
            strips: 64,
            mix: Mix::default(),
            seed: 42,
            kernel: "gaussian-filter".to_string(),
            exec_rows: 32,
            servers: 3,
            pool: 8,
            max_backlog: None,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform f64 in (0, 1] from one rng draw (never 0, so `ln` is safe).
fn unit_open(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// One pre-scheduled arrival.
struct ScheduledOp {
    /// Arrival offset from the run's start, microseconds.
    offset_us: u64,
    kind: OpKind,
    /// Strip the op touches (get/put) — also selects the server.
    strip: u64,
}

/// Deterministic per-strip payload so puts are reproducible and gets
/// verifiable by length.
fn strip_bytes(seed: u64, strip: u64, len: usize) -> Vec<u8> {
    let mut state = seed ^ strip.wrapping_mul(0x9e3779b97f4a7c15);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        out.extend_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Build the full arrival schedule up front: exponential inter-arrival
/// times at `rate` until `duration` is covered.
fn build_schedule(cfg: &BenchConfig) -> Vec<ScheduledOp> {
    let mut state = cfg.seed;
    let mut ops = Vec::new();
    let horizon_us = cfg.duration.as_micros() as u64;
    let mut t_us = 0f64;
    loop {
        t_us += -unit_open(&mut state).ln() / cfg.rate * 1e6;
        if t_us as u64 >= horizon_us {
            break;
        }
        let kind = cfg.mix.pick(splitmix64(&mut state));
        let strip = splitmix64(&mut state) % cfg.strips.max(1);
        ops.push(ScheduledOp { offset_us: t_us as u64, kind, strip });
    }
    ops
}

/// File ids the workload operates on, established during setup.
#[derive(Clone, Copy)]
struct BenchFiles {
    bench: u32,
    exec_in: u32,
    exec_out: u32,
}

/// Create and populate the benchmark files through a serial client.
fn setup_files(
    cluster: &mut DasCluster,
    cfg: &BenchConfig,
    tag: &str,
) -> Result<BenchFiles, NetError> {
    let bench_len = cfg.strips * cfg.strip_size as u64;
    let bench = cluster.create_file(
        &format!("bench-{tag}.dat"),
        bench_len,
        cfg.strip_size,
        LayoutPolicy::RoundRobin,
    )?;
    let data = strip_bytes(cfg.seed, u64::MAX, bench_len as usize);
    cluster.put_file(bench, &data)?;

    let exec_len = cfg.exec_rows * cfg.strip_size as u64;
    let exec_data = strip_bytes(cfg.seed ^ 1, u64::MAX - 1, exec_len as usize);
    let exec_in = cluster.create_file(
        &format!("bench-{tag}-exec.in"),
        exec_len,
        cfg.strip_size,
        LayoutPolicy::RoundRobin,
    )?;
    cluster.put_file(exec_in, &exec_data)?;
    let exec_out = cluster.create_file(
        &format!("bench-{tag}-exec.out"),
        exec_len,
        cfg.strip_size,
        LayoutPolicy::RoundRobin,
    )?;
    Ok(BenchFiles { bench, exec_in, exec_out })
}

/// Per-class accumulation shared by all workers.
struct ClassAcc {
    latency_us: Histogram,
    scheduled: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    max_us: AtomicU64,
}

/// Failure breakdown shared by all workers: typed remote errors are
/// keyed by their wire [`ErrorCode`] name (so an overload run shows
/// exactly how many ops were shed as `Overloaded` vs. timed out),
/// everything else by a coarse transport class. Locked only on the
/// error path, which by construction is off the happy-path clock.
///
/// [`ErrorCode`]: das_net::ErrorCode
type ErrorBreakdown = Mutex<BTreeMap<&'static str, u64>>;

/// Classify one failed operation for the breakdown.
fn error_class(outcome: &Result<Message, NetError>) -> &'static str {
    match outcome {
        Err(NetError::Remote { code, .. }) => code.name(),
        Err(NetError::Io(_)) => "io",
        Err(_) => "protocol",
        Ok(_) => "bad-reply",
    }
}

impl ClassAcc {
    fn new() -> Self {
        ClassAcc {
            latency_us: Histogram::default(),
            scheduled: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

fn class_index(kind: OpKind) -> usize {
    match kind {
        OpKind::Get => 0,
        OpKind::Put => 1,
        OpKind::Exec => 2,
    }
}

/// Drive one already-running fleet at `addrs` with the configured
/// workload and return the measured report. `engine_label` is carried
/// into the report verbatim (the generator cannot see which engine a
/// remote daemon runs).
pub fn run_bench(
    addrs: &[String],
    cfg: &BenchConfig,
    engine_label: &str,
) -> Result<BenchReport, NetError> {
    let policy = bench_policy();
    let mut setup = DasCluster::connect_with(addrs, policy.clone())?;
    let files = setup_files(&mut setup, cfg, engine_label)?;

    // Shared pipelined connections: workers interleave requests on
    // them, which is exactly the concurrency the event-loop server
    // core exists to serve. Dialed in parallel, and a connection the
    // server never serves (a thread-per-connection engine with more
    // sockets than pool threads strands the surplus) becomes a dead
    // slot whose operations count as errors — the generator measures
    // that failure mode instead of refusing to run.
    let per_server = cfg.conns_per_server.max(1);
    let dials: Vec<_> = (0..addrs.len() * per_server)
        .map(|slot| {
            let addr = addrs[slot / per_server].clone();
            let policy = policy.clone();
            std::thread::spawn(move || PipeClient::connect(&addr, &policy).ok())
        })
        .collect();
    let conns: Vec<Option<Arc<PipeClient>>> =
        dials.into_iter().map(|h| h.join().ok().flatten().map(Arc::new)).collect();
    let dead = conns.iter().filter(|c| c.is_none()).count();
    if dead > 0 {
        event(
            Level::Warn,
            "das.bench",
            "connections never served; their ops will fail",
            &[("dead", dead.to_string()), ("total", conns.len().to_string())],
        );
    }
    if conns.iter().all(|c| c.is_none()) {
        return Err(NetError::Protocol("no pipelined connection could be established".into()));
    }
    let conns = Arc::new(conns);
    let n_servers = addrs.len();

    let ops = Arc::new(build_schedule(cfg));
    let accs: Arc<Vec<ClassAcc>> = Arc::new(OpKind::ALL.iter().map(|_| ClassAcc::new()).collect());
    for op in ops.iter() {
        accs[class_index(op.kind)].scheduled.fetch_add(1, Ordering::Relaxed);
    }
    event(
        Level::Info,
        "das.bench",
        "starting open-loop run",
        &[
            ("engine", engine_label.to_string()),
            ("ops", ops.len().to_string()),
            ("rate", format!("{:.0}/s", cfg.rate)),
            ("clients", cfg.clients.to_string()),
        ],
    );

    let next = Arc::new(AtomicUsize::new(0));
    let errs: Arc<ErrorBreakdown> = Arc::new(Mutex::new(BTreeMap::new()));

    // Saturation observer: while the run is in flight, poll every
    // daemon's registry for the live worker-queue depth (MetricsDump
    // is shed-exempt, so this works under full overload) and
    // difference the shed counters across the run. An overloaded run
    // is thereby *characterized*, not just failed: the report shows
    // the queue staying at its bound while the excess is shed.
    let stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let stop = Arc::clone(&stop);
        let mut cluster = setup;
        let maddrs: Vec<String> = addrs.to_vec();
        let mpolicy = policy.clone();
        std::thread::spawn(move || {
            let shed_of = |text: &str| -> u64 {
                das_obs::parse(text)
                    .iter()
                    .filter(|s| s.name == "dasd_requests_shed_total")
                    .map(|s| s.value)
                    .sum::<f64>() as u64
            };
            // Shed counters are tracked as one monotonic high-water
            // mark *per daemon*: a dump that times out under peak
            // load gets its server marked down, after which
            // `metrics_dump_all` silently covers fewer daemons — a
            // single fleet-wide sum would then collapse to whatever
            // subset answered last, undercounting the run.
            let mut base: BTreeMap<u32, u64> = BTreeMap::new();
            let mut seen: BTreeMap<u32, u64> = BTreeMap::new();
            if let Ok(dumps) = cluster.metrics_dump_all() {
                for (id, text) in &dumps {
                    base.insert(*id, shed_of(text));
                }
            }
            let mut depth_peak = 0u64;
            let mut read = |cluster: &mut DasCluster, seen: &mut BTreeMap<u32, u64>| -> bool {
                // `DasCluster` marks a server down for good once a
                // call times out — correct for failover, wrong for a
                // poller whose targets are merely saturated. Swap in
                // a fresh cluster to regain the lost daemons.
                if !cluster.down_servers().is_empty() {
                    if let Ok(fresh) = DasCluster::connect_with(&maddrs, mpolicy.clone()) {
                        *cluster = fresh;
                    }
                }
                let Ok(dumps) = cluster.metrics_dump_all() else { return false };
                for (id, text) in &dumps {
                    let depth = das_obs::parse(text)
                        .iter()
                        .filter(|s| s.name == "dasd_worker_queue_depth")
                        .map(|s| s.value)
                        .fold(0.0, f64::max);
                    depth_peak = depth_peak.max(depth as u64);
                    let e = seen.entry(*id).or_insert(0);
                    *e = (*e).max(shed_of(text));
                }
                true
            };
            // The final counts come from the settling reads below, after the
            // worker threads are joined (join is the synchronization edge).
            // das-lint: allow(DA711) pure quiesce flag — no data rides on it
            while !stop.load(Ordering::Relaxed) {
                read(&mut cluster, &mut seen);
                std::thread::sleep(Duration::from_millis(25));
            }
            // The workers have drained, so the fleet is idle: retry
            // the settling read a few times so one dump that raced
            // the drain (or timed out under peak load) cannot
            // undercount the final shed total.
            for _ in 0..10 {
                if read(&mut cluster, &mut seen) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            let shed: u64 = seen
                .iter()
                .map(|(id, v)| v.saturating_sub(base.get(id).copied().unwrap_or(0)))
                .sum();
            // One final settled dump per daemon feeds the report's
            // server-side stage attribution.
            let final_dumps = cluster.metrics_dump_all().unwrap_or_default();
            (depth_peak, shed, final_dumps)
        })
    };

    let t0 = Instant::now();
    let mut workers = Vec::new();
    for w in 0..cfg.clients.max(1) {
        let ops = Arc::clone(&ops);
        let accs = Arc::clone(&accs);
        let next = Arc::clone(&next);
        let conns = Arc::clone(&conns);
        let errs = Arc::clone(&errs);
        let cfg = cfg.clone();
        workers.push(std::thread::spawn(move || {
            worker_loop(w, &ops, &accs, &errs, &next, &conns, n_servers, &cfg, &files, t0)
        }));
    }
    for w in workers {
        let _ = w.join();
    }
    let wall = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    let (queue_depth_peak, requests_shed, final_dumps) =
        monitor.join().unwrap_or((0, 0, Vec::new()));
    let stages = stage_attribution(&final_dumps);

    // Leave the target fleet exactly as capable as we found it: the
    // bench files stay (ids are monotone, names are tagged), and the
    // pipelined connections close on drop.
    drop(conns);

    Ok(build_report(engine_label, cfg, &accs, &errs, queue_depth_peak, requests_shed, wall, stages))
}

/// The retry policy of every bench connection: short timeouts so an
/// overloaded run fails fast instead of hanging out a 15 s default.
fn bench_policy() -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_millis(2000),
        read_timeout: Duration::from_millis(1000),
        write_timeout: Duration::from_millis(1000),
        max_attempts: 2,
        ..RetryPolicy::default()
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    worker: usize,
    ops: &[ScheduledOp],
    accs: &[ClassAcc],
    errs: &ErrorBreakdown,
    next: &AtomicUsize,
    conns: &[Option<Arc<PipeClient>>],
    n_servers: usize,
    cfg: &BenchConfig,
    files: &BenchFiles,
    t0: Instant,
) {
    let per_server = conns.len() / n_servers.max(1);
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(op) = ops.get(i) else { return };
        // Open loop: wait for the scheduled arrival, then charge all
        // time from that instant — including any lateness of this
        // worker — to the operation.
        let offset = Duration::from_micros(op.offset_us);
        let now = t0.elapsed();
        if offset > now {
            std::thread::sleep(offset - now);
        }
        let (server, msg) = match op.kind {
            OpKind::Get => (
                (op.strip % n_servers as u64) as usize,
                Message::GetStrip { file: files.bench, strip: op.strip },
            ),
            OpKind::Put => (
                (op.strip % n_servers as u64) as usize,
                Message::PutStrip {
                    file: files.bench,
                    strip: op.strip,
                    payload: strip_bytes(cfg.seed, op.strip, cfg.strip_size as usize),
                },
            ),
            OpKind::Exec => (
                (op.strip % n_servers as u64) as usize,
                Message::Execute {
                    file: files.exec_in,
                    out_file: files.exec_out,
                    kernel: cfg.kernel.clone(),
                    img_width: cfg.strip_size as u64 / 4,
                    element_size: 4,
                    successive: true,
                    force: true,
                },
            ),
        };
        let slot = server * per_server + worker % per_server.max(1);
        let acc = &accs[class_index(op.kind)];
        let (ok, class) = match &conns[slot.min(conns.len() - 1)] {
            Some(conn) => {
                let outcome = conn.call(&msg);
                let ok = match &outcome {
                    Ok(Message::StripData { payload }) => {
                        payload.len() == cfg.strip_size as usize
                    }
                    Ok(Message::PutStripOk) | Ok(Message::ExecuteOk { .. }) => true,
                    Ok(_) | Err(_) => false,
                };
                (ok, error_class(&outcome))
            }
            None => (false, "no-connection"),
        };
        let lat_us = (t0.elapsed().saturating_sub(offset)).as_micros() as u64;
        if ok {
            acc.latency_us.observe(lat_us);
            acc.completed.fetch_add(1, Ordering::Relaxed);
            acc.max_us.fetch_max(lat_us, Ordering::Relaxed);
        } else {
            acc.errors.fetch_add(1, Ordering::Relaxed);
            let mut by_code = match errs.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            *by_code.entry(class).or_insert(0) += 1;
        }
    }
}

/// Fleet-aggregate the daemons' `dasd_stage_duration_us{stage,op}`
/// histograms into per-cell attribution: counts and sums add across
/// daemons, p99 interpolates on the merged cumulative buckets. This is
/// where `das bench` learns *where the time went* server-side — queue
/// wait vs. decode vs. kernel vs. reply write, per op class — instead
/// of one opaque end-to-end number.
fn stage_attribution(dumps: &[(u32, String)]) -> Vec<report::StageStats> {
    use report::StageStats;
    /// One cell's accumulator: duration sum, observation count, and
    /// merged cumulative bucket counts keyed by the `le` label.
    type Cell = (f64, f64, BTreeMap<String, f64>);
    let parsed: Vec<Vec<das_obs::Sample>> =
        dumps.iter().map(|(_, text)| das_obs::parse(text)).collect();
    let mut cells: BTreeMap<(String, String), Cell> = BTreeMap::new();
    for s in parsed.iter().flatten() {
        let stage = s.labels.iter().find(|(k, _)| k == "stage").map(|(_, v)| v.clone());
        let op = s.labels.iter().find(|(k, _)| k == "op").map(|(_, v)| v.clone());
        let (Some(stage), Some(op)) = (stage, op) else { continue };
        let cell = cells.entry((stage, op)).or_default();
        match s.name.as_str() {
            "dasd_stage_duration_us_sum" => cell.0 += s.value,
            "dasd_stage_duration_us_count" => cell.1 += s.value,
            "dasd_stage_duration_us_bucket" => {
                if let Some((_, le)) = s.labels.iter().find(|(k, _)| k == "le") {
                    *cell.2.entry(le.clone()).or_default() += s.value;
                }
            }
            _ => {}
        }
    }
    cells
        .into_iter()
        .filter(|(_, (_, count, _))| *count > 0.0)
        .map(|((stage, op), (sum_us, count, by_le))| {
            let merged: Vec<das_obs::Sample> = by_le
                .into_iter()
                .map(|(le, value)| das_obs::Sample {
                    name: "cell_us_bucket".to_string(),
                    labels: vec![("le".to_string(), le)],
                    value,
                })
                .collect();
            let p99 =
                das_obs::histogram_quantile(&merged, "cell_us", &[], 0.99).unwrap_or(0.0);
            StageStats { stage, op, count: count as u64, mean_us: sum_us / count, p99_us: p99 }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn build_report(
    engine: &str,
    cfg: &BenchConfig,
    accs: &[ClassAcc],
    errs: &ErrorBreakdown,
    queue_depth_peak: u64,
    requests_shed: u64,
    wall: Duration,
    stages: Vec<report::StageStats>,
) -> BenchReport {
    let errors_by_code: Vec<(String, u64)> = match errs.lock() {
        Ok(g) => g.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        Err(poisoned) => poisoned.into_inner().iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    };
    let wall_s = wall.as_secs_f64().max(1e-9);
    let classes: Vec<ClassStats> = OpKind::ALL
        .iter()
        .map(|&k| {
            let a = &accs[class_index(k)];
            let completed = a.completed.load(Ordering::Relaxed);
            let count = a.latency_us.count();
            ClassStats {
                class: k.name().to_string(),
                scheduled: a.scheduled.load(Ordering::Relaxed),
                completed,
                errors: a.errors.load(Ordering::Relaxed),
                throughput_ops_s: completed as f64 / wall_s,
                mean_us: if count > 0 { a.latency_us.sum() as f64 / count as f64 } else { 0.0 },
                p50_us: a.latency_us.quantile(0.50).unwrap_or(0),
                p99_us: a.latency_us.quantile(0.99).unwrap_or(0),
                p999_us: a.latency_us.quantile(0.999).unwrap_or(0),
                max_us: a.max_us.load(Ordering::Relaxed),
            }
        })
        .collect();
    let total_completed: u64 = classes.iter().map(|c| c.completed).sum();
    let total_errors: u64 = classes.iter().map(|c| c.errors).sum();
    BenchReport {
        engine: engine.to_string(),
        target_rate_ops_s: cfg.rate,
        duration_ms: cfg.duration.as_millis() as u64,
        clients: cfg.clients,
        conns_per_server: cfg.conns_per_server,
        strip_size: cfg.strip_size,
        seed: cfg.seed,
        wall_ms: wall.as_millis() as u64,
        total_completed,
        total_errors,
        errors_by_code,
        queue_depth_peak,
        requests_shed,
        achieved_ops_s: total_completed as f64 / wall_s,
        classes,
        stages,
    }
}

/// Boot an in-process loopback fleet per engine, run the identical
/// seeded workload against each, and report both runs plus the winner
/// (higher achieved throughput; ties break on lower aggregate p99).
pub fn compare_engines(cfg: &BenchConfig) -> Result<CompareReport, NetError> {
    let mut reports = Vec::new();
    for engine in [das_net::Engine::EventLoop, das_net::Engine::Threads] {
        let fleet = fleet::spawn_fleet(cfg.servers, engine, cfg.pool, cfg.max_backlog)
            .map_err(NetError::Io)?;
        let report = run_bench(&fleet.addrs, cfg, engine.name());
        let shutdown = fleet.shutdown();
        let report = report?;
        shutdown?;
        event(
            Level::Info,
            "das.bench",
            "engine run complete",
            &[
                ("engine", report.engine.clone()),
                ("achieved", format!("{:.0}/s", report.achieved_ops_s)),
                ("errors", report.total_errors.to_string()),
            ],
        );
        reports.push(report);
    }
    Ok(CompareReport::from_runs(reports))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parses_and_rejects() {
        let m = Mix::parse("70:25:5").unwrap();
        assert_eq!((m.get, m.put, m.exec), (70, 25, 5));
        assert!(Mix::parse("0:0:0").is_none());
        assert!(Mix::parse("1:2").is_none());
        assert!(Mix::parse("1:2:3:4").is_none());
        assert!(Mix::parse("a:b:c").is_none());
    }

    #[test]
    fn mix_pick_respects_zero_weights() {
        let m = Mix { get: 1, put: 0, exec: 0 };
        for roll in 0..100 {
            assert_eq!(m.pick(roll), OpKind::Get);
        }
        let m = Mix { get: 0, put: 0, exec: 3 };
        for roll in 0..100 {
            assert_eq!(m.pick(roll), OpKind::Exec);
        }
    }

    #[test]
    fn schedule_is_deterministic_and_ordered() {
        let cfg = BenchConfig {
            rate: 1000.0,
            duration: Duration::from_millis(500),
            ..BenchConfig::default()
        };
        let a = build_schedule(&cfg);
        let b = build_schedule(&cfg);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        let horizon = cfg.duration.as_micros() as u64;
        let mut prev = 0;
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.offset_us, y.offset_us);
            assert_eq!(x.strip, y.strip);
            assert!(x.offset_us >= prev, "arrivals out of order");
            assert!(x.offset_us < horizon);
            assert!(x.strip < cfg.strips);
            prev = x.offset_us;
        }
        // ~rate * duration arrivals, within loose Poisson slack.
        let expect = (cfg.rate * cfg.duration.as_secs_f64()) as usize;
        assert!(a.len() > expect / 2 && a.len() < expect * 2, "{} vs {}", a.len(), expect);
    }

    #[test]
    fn stage_attribution_merges_daemon_histograms() {
        // Two daemons each observed the same (stage, op) cell; the
        // fleet view must sum counts/sums and merge the buckets.
        let reg = das_obs::Registry::new();
        let h = reg.histogram("dasd_stage_duration_us", &[("stage", "queue_wait"), ("op", "get")]);
        h.observe(10);
        h.observe(100);
        let text = reg.encode();
        let dumps = vec![(0u32, text.clone()), (1u32, text)];
        let stages = stage_attribution(&dumps);
        assert_eq!(stages.len(), 1);
        let s = &stages[0];
        assert_eq!((s.stage.as_str(), s.op.as_str()), ("queue_wait", "get"));
        assert_eq!(s.count, 4);
        assert!((s.mean_us - 55.0).abs() < 1e-9, "mean {}", s.mean_us);
        assert!(s.p99_us > 0.0);
        // A daemon with no stage histograms contributes nothing.
        assert!(stage_attribution(&[(0, das_obs::Registry::new().encode())]).is_empty());
    }

    #[test]
    fn strip_bytes_deterministic_and_sized() {
        assert_eq!(strip_bytes(1, 2, 100), strip_bytes(1, 2, 100));
        assert_ne!(strip_bytes(1, 2, 100), strip_bytes(1, 3, 100));
        assert_eq!(strip_bytes(7, 0, 4096).len(), 4096);
        assert_eq!(strip_bytes(7, 0, 0).len(), 0);
    }
}
