//! Benchmark reports and their `BENCH_net.json` serialization.
//!
//! The JSON writer is hand-rolled (this workspace takes no external
//! dependencies); the shape is stable so CI and downstream tooling can
//! assert on it:
//!
//! ```json
//! {
//!   "bench": "das-load",
//!   "engines": [ { "engine": "evloop", ..., "classes": [...] }, ... ],
//!   "winner": "evloop",
//!   "speedup": 1.42
//! }
//! ```

/// Throughput and latency of one operation class in one run.
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// Class label: `get`, `put` or `exec`.
    pub class: String,
    /// Arrivals the schedule assigned to this class.
    pub scheduled: u64,
    /// Operations that completed successfully.
    pub completed: u64,
    /// Operations that failed (transport error, timeout, wrong or
    /// short reply).
    pub errors: u64,
    /// Completed operations per wall-clock second.
    pub throughput_ops_s: f64,
    /// Mean latency from scheduled arrival to completion, µs.
    pub mean_us: f64,
    /// Median latency, µs.
    pub p50_us: u64,
    /// 99th-percentile latency, µs.
    pub p99_us: u64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: u64,
    /// Worst observed latency, µs.
    pub max_us: u64,
}

/// Server-side latency attribution for one `(stage, op)` cell,
/// aggregated across the fleet from each daemon's
/// `dasd_stage_duration_us` histograms after the run drained.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Request-path stage label (`queue_wait`, `decode`, `local_read`,
    /// `peer_fetch`, `kernel`, `assemble`, `reply_write`, …).
    pub stage: String,
    /// Op class label (`get`, `put`, `exec`, …).
    pub op: String,
    /// Observations across all daemons.
    pub count: u64,
    /// Mean stage duration, µs.
    pub mean_us: f64,
    /// 99th-percentile stage duration, µs (bucket-interpolated).
    pub p99_us: f64,
}

impl StageStats {
    /// Serialize one stage cell as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"stage\": {}, \"op\": {}, \"count\": {}, \"mean_us\": {}, \"p99_us\": {}}}",
            json_str(&self.stage),
            json_str(&self.op),
            self.count,
            json_num(self.mean_us),
            json_num(self.p99_us),
        )
    }
}

/// One full open-loop run against one fleet.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Engine label (`evloop`, `threads`, or `external`).
    pub engine: String,
    /// Configured aggregate arrival rate, ops/s.
    pub target_rate_ops_s: f64,
    /// Configured run length, ms.
    pub duration_ms: u64,
    /// Concurrent client workers.
    pub clients: usize,
    /// Pipelined connections per server.
    pub conns_per_server: usize,
    /// Strip size, bytes.
    pub strip_size: u32,
    /// Workload seed.
    pub seed: u64,
    /// Measured wall-clock of the drain, ms.
    pub wall_ms: u64,
    /// Successful operations across all classes.
    pub total_completed: u64,
    /// Failed operations across all classes.
    pub total_errors: u64,
    /// Failure breakdown, sorted by class name: typed remote errors
    /// keyed by wire `ErrorCode` name (`Overloaded`, `Retryable`, …),
    /// transport failures as `io`, malformed traffic as `protocol`,
    /// wrong/short replies as `bad-reply`, dead bench connections as
    /// `no-connection`. Sums to `total_errors`.
    pub errors_by_code: Vec<(String, u64)>,
    /// Highest `dasd_worker_queue_depth` observed on any daemon while
    /// the run was in flight (sampled via shed-exempt `MetricsDump`).
    /// Under overload this stays at the daemon's backlog bound — the
    /// queue is bounded, the excess is shed.
    pub queue_depth_peak: u64,
    /// Fleet-wide `dasd_requests_shed_total` growth during the run
    /// (both `backlog` and `deadline` reasons).
    pub requests_shed: u64,
    /// Aggregate successful throughput, ops/s.
    pub achieved_ops_s: f64,
    /// Per-class breakdown, in `get`/`put`/`exec` order.
    pub classes: Vec<ClassStats>,
    /// Fleet-aggregated server-side stage attribution, sorted by
    /// `(stage, op)`. Empty when the fleet predates `CAP_SPANS`
    /// instrumentation or no request was served.
    pub stages: Vec<StageStats>,
}

/// Two engine runs over the identical seeded workload, plus the
/// verdict.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// One report per engine, in run order.
    pub runs: Vec<BenchReport>,
    /// Engine label of the winner.
    pub winner: String,
    /// Winner throughput over the other run's throughput (1.0 when
    /// only one run exists).
    pub speedup: f64,
}

impl CompareReport {
    /// Pick the winner from finished runs: higher achieved
    /// throughput; ties (within 1%) break on lower aggregate p99.
    pub fn from_runs(runs: Vec<BenchReport>) -> CompareReport {
        let mut winner = 0usize;
        for i in 1..runs.len() {
            let (a, b) = (&runs[winner], &runs[i]);
            let close = (a.achieved_ops_s - b.achieved_ops_s).abs()
                <= 0.01 * a.achieved_ops_s.max(b.achieved_ops_s);
            let better = if close {
                worst_p99(b) < worst_p99(a)
            } else {
                b.achieved_ops_s > a.achieved_ops_s
            };
            if better {
                winner = i;
            }
        }
        let speedup = match runs.len() {
            0 | 1 => 1.0,
            _ => {
                let best = runs[winner].achieved_ops_s;
                let other = runs
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != winner)
                    .map(|(_, r)| r.achieved_ops_s)
                    .fold(f64::INFINITY, f64::min);
                if other > 0.0 {
                    best / other
                } else {
                    f64::INFINITY
                }
            }
        };
        let winner_label =
            runs.get(winner).map(|r| r.engine.clone()).unwrap_or_else(|| "none".to_string());
        CompareReport { runs, winner: winner_label, speedup }
    }

    /// Serialize the whole comparison as the `BENCH_net.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"bench\": \"das-load\",\n  \"engines\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            out.push_str(&indent(&r.to_json(), 4));
            out.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"winner\": {},\n", json_str(&self.winner)));
        out.push_str(&format!("  \"speedup\": {}\n}}\n", json_num(self.speedup)));
        out
    }
}

fn worst_p99(r: &BenchReport) -> u64 {
    r.classes.iter().map(|c| c.p99_us).max().unwrap_or(0)
}

impl BenchReport {
    /// Serialize one run as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"engine\": {},\n", json_str(&self.engine)));
        out.push_str(&format!("  \"target_rate_ops_s\": {},\n", json_num(self.target_rate_ops_s)));
        out.push_str(&format!("  \"duration_ms\": {},\n", self.duration_ms));
        out.push_str(&format!("  \"clients\": {},\n", self.clients));
        out.push_str(&format!("  \"conns_per_server\": {},\n", self.conns_per_server));
        out.push_str(&format!("  \"strip_size\": {},\n", self.strip_size));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"wall_ms\": {},\n", self.wall_ms));
        out.push_str(&format!("  \"total_completed\": {},\n", self.total_completed));
        out.push_str(&format!("  \"total_errors\": {},\n", self.total_errors));
        let by_code: Vec<String> = self
            .errors_by_code
            .iter()
            .map(|(code, n)| format!("{}: {}", json_str(code), n))
            .collect();
        out.push_str(&format!("  \"errors_by_code\": {{{}}},\n", by_code.join(", ")));
        out.push_str(&format!("  \"queue_depth_peak\": {},\n", self.queue_depth_peak));
        out.push_str(&format!("  \"requests_shed\": {},\n", self.requests_shed));
        out.push_str(&format!("  \"achieved_ops_s\": {},\n", json_num(self.achieved_ops_s)));
        out.push_str("  \"classes\": [\n");
        for (i, c) in self.classes.iter().enumerate() {
            out.push_str(&indent(&c.to_json(), 4));
            out.push_str(if i + 1 < self.classes.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&indent(&s.to_json(), 4));
            out.push_str(if i + 1 < self.stages.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}");
        out
    }
}

impl ClassStats {
    /// Serialize one class's stats as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"class\": {},\n  \"scheduled\": {},\n  \"completed\": {},\n  \
             \"errors\": {},\n  \"throughput_ops_s\": {},\n  \"mean_us\": {},\n  \
             \"p50_us\": {},\n  \"p99_us\": {},\n  \"p999_us\": {},\n  \"max_us\": {}\n}}",
            json_str(&self.class),
            self.scheduled,
            self.completed,
            self.errors,
            json_num(self.throughput_ops_s),
            json_num(self.mean_us),
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.max_us,
        )
    }
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite float formatting JSON accepts (JSON has no NaN/Infinity).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn indent(block: &str, spaces: usize) -> String {
    let pad = " ".repeat(spaces);
    block.lines().map(|l| format!("{pad}{l}")).collect::<Vec<_>>().join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(engine: &str, achieved: f64, p99: u64) -> BenchReport {
        BenchReport {
            engine: engine.to_string(),
            target_rate_ops_s: 1000.0,
            duration_ms: 1000,
            clients: 8,
            conns_per_server: 2,
            strip_size: 4096,
            seed: 42,
            wall_ms: 1003,
            total_completed: achieved as u64,
            total_errors: 1,
            errors_by_code: vec![("Overloaded".to_string(), 1)],
            queue_depth_peak: 2,
            requests_shed: 1,
            achieved_ops_s: achieved,
            classes: vec![ClassStats {
                class: "get".to_string(),
                scheduled: 10,
                completed: 9,
                errors: 1,
                throughput_ops_s: achieved,
                mean_us: 120.5,
                p50_us: 100,
                p99_us: p99,
                p999_us: p99 * 2,
                max_us: p99 * 3,
            }],
            stages: vec![StageStats {
                stage: "queue_wait".to_string(),
                op: "get".to_string(),
                count: 9,
                mean_us: 12.5,
                p99_us: 40.0,
            }],
        }
    }

    #[test]
    fn winner_prefers_throughput_then_p99() {
        let r = CompareReport::from_runs(vec![
            sample_report("evloop", 2000.0, 500),
            sample_report("threads", 1000.0, 100),
        ]);
        assert_eq!(r.winner, "evloop");
        assert!((r.speedup - 2.0).abs() < 1e-9);

        // Throughput within 1% → lower p99 wins.
        let r = CompareReport::from_runs(vec![
            sample_report("evloop", 1000.0, 100),
            sample_report("threads", 1001.0, 900),
        ]);
        assert_eq!(r.winner, "evloop");
    }

    #[test]
    fn json_escapes_and_structure() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_num(f64::NAN), "null");
        let r = CompareReport::from_runs(vec![sample_report("evloop", 10.0, 5)]);
        let doc = r.to_json();
        assert!(doc.contains("\"bench\": \"das-load\""));
        assert!(doc.contains("\"winner\": \"evloop\""));
        assert!(doc.contains("\"p999_us\": 10"));
        assert!(doc.contains("\"errors_by_code\": {\"Overloaded\": 1}"));
        assert!(doc.contains("\"stages\": ["));
        assert!(doc.contains("{\"stage\": \"queue_wait\", \"op\": \"get\", \"count\": 9, \"mean_us\": 12.500, \"p99_us\": 40.000}"));
        // Crude structural sanity: brackets balance.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }
}
