//! `das-analyze` — run the workspace's static-analysis passes.
//!
//! ```text
//! das-analyze [--root PATH] [--deny] [--json] [--timings] [--pass NAME]... [--list]
//! ```
//!
//! * `--root PATH` — repository root to analyze (default `.`).
//! * `--pass NAME` — run only the named pass (repeatable; default
//!   all of `registry`, `descriptors`, `protocol`, `fetchgraph`,
//!   `lints`, `taint`, `lockgraph`, `model`, `lockset`, `atomics`,
//!   `pipemodel`, `hotpath`, `costmodel`).
//! * `--json` — one JSON object per finding on stdout instead of
//!   aligned text.
//! * `--timings` — per-pass wall-clock milliseconds on stderr
//!   (stdout stays parseable under `--json`).
//! * `--deny` — exit 1 if any warning- or error-level finding was
//!   produced (the CI mode).
//! * `--list` — print every registered finding code with its nominal
//!   severity and summary, then exit.
//!
//! The passes are independent of each other (each reads sources and
//! linked constants, none consumes another's findings), so they run
//! on one thread per pass; findings are still printed in the
//! requested pass order, so output is deterministic.
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 denied,
//! 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use das_analyze::{run_pass, Report, Severity, PASSES};

struct Opts {
    root: PathBuf,
    deny: bool,
    json: bool,
    timings: bool,
    passes: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: das-analyze [--root PATH] [--deny] [--json] [--timings] [--pass NAME]... [--list]"
    );
    eprintln!("passes: {}", PASSES.join(", "));
    ExitCode::from(2)
}

fn parse_args() -> Result<Opts, ExitCode> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        deny: false,
        json: false,
        timings: false,
        passes: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => opts.root = PathBuf::from(p),
                None => return Err(usage()),
            },
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--timings" => opts.timings = true,
            "--list" => {
                print!("{}", das_analyze::registry::list());
                return Err(ExitCode::SUCCESS);
            }
            "--pass" => match args.next() {
                Some(p) if PASSES.contains(&p.as_str()) => opts.passes.push(p),
                Some(p) => {
                    eprintln!("das-analyze: unknown pass `{p}`");
                    return Err(usage());
                }
                None => return Err(usage()),
            },
            "--help" | "-h" => {
                println!(
                    "usage: das-analyze [--root PATH] [--deny] [--json] [--timings] [--pass NAME]... [--list]"
                );
                println!("passes: {}", PASSES.join(", "));
                return Err(ExitCode::SUCCESS);
            }
            other => {
                eprintln!("das-analyze: unknown argument `{other}`");
                return Err(usage());
            }
        }
    }
    if opts.passes.is_empty() {
        opts.passes = PASSES.iter().map(|p| p.to_string()).collect();
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(code) => return code,
    };

    // Run the passes concurrently — they share nothing but the root —
    // and reassemble results in the requested order so the printed
    // report is byte-identical to a sequential run.
    let mut slots: Vec<Option<(Vec<das_analyze::Finding>, Duration)>> =
        (0..opts.passes.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let root = &opts.root;
        let handles: Vec<_> = opts
            .passes
            .iter()
            .map(|pass| {
                scope.spawn(move || {
                    let started = Instant::now();
                    run_pass(pass, root).map(|findings| (findings, started.elapsed()))
                })
            })
            .collect();
        for (slot, h) in slots.iter_mut().zip(handles) {
            *slot = h.join().expect("analysis pass panicked");
        }
    });

    let mut report = Report::default();
    for (pass, slot) in opts.passes.iter().zip(slots) {
        let Some((findings, took)) = slot else {
            return usage();
        };
        if opts.timings {
            eprintln!("das-analyze: pass {pass}: {} ms", took.as_millis());
        }
        report.findings.extend(findings);
    }

    for f in &report.findings {
        if opts.json {
            println!("{}", f.to_json());
        } else {
            println!("{f}");
        }
    }

    let (info, warn, err) = report.counts();
    if !opts.json {
        println!(
            "das-analyze: {} pass(es), {info} info, {warn} warning(s), {err} error(s)",
            opts.passes.len()
        );
    }

    if opts.deny && report.denied() {
        let worst = report.worst().unwrap_or(Severity::Info);
        eprintln!("das-analyze: --deny failed (worst severity: {worst})");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
