//! `das-analyze` — run the workspace's static-analysis passes.
//!
//! ```text
//! das-analyze [--root PATH] [--deny] [--json] [--pass NAME]... [--list]
//! ```
//!
//! * `--root PATH` — repository root to analyze (default `.`).
//! * `--pass NAME` — run only the named pass (repeatable; default
//!   all of `registry`, `descriptors`, `protocol`, `fetchgraph`,
//!   `lints`, `taint`, `lockgraph`, `model`, `lockset`, `atomics`,
//!   `pipemodel`).
//! * `--json` — one JSON object per finding on stdout instead of
//!   aligned text.
//! * `--deny` — exit 1 if any warning- or error-level finding was
//!   produced (the CI mode).
//! * `--list` — print every registered finding code with its nominal
//!   severity and summary, then exit.
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 denied,
//! 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use das_analyze::{run_pass, Report, Severity, PASSES};

struct Opts {
    root: PathBuf,
    deny: bool,
    json: bool,
    passes: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!("usage: das-analyze [--root PATH] [--deny] [--json] [--pass NAME]... [--list]");
    eprintln!("passes: {}", PASSES.join(", "));
    ExitCode::from(2)
}

fn parse_args() -> Result<Opts, ExitCode> {
    let mut opts =
        Opts { root: PathBuf::from("."), deny: false, json: false, passes: Vec::new() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => opts.root = PathBuf::from(p),
                None => return Err(usage()),
            },
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--list" => {
                print!("{}", das_analyze::registry::list());
                return Err(ExitCode::SUCCESS);
            }
            "--pass" => match args.next() {
                Some(p) if PASSES.contains(&p.as_str()) => opts.passes.push(p),
                Some(p) => {
                    eprintln!("das-analyze: unknown pass `{p}`");
                    return Err(usage());
                }
                None => return Err(usage()),
            },
            "--help" | "-h" => {
                println!(
                    "usage: das-analyze [--root PATH] [--deny] [--json] [--pass NAME]... [--list]"
                );
                println!("passes: {}", PASSES.join(", "));
                return Err(ExitCode::SUCCESS);
            }
            other => {
                eprintln!("das-analyze: unknown argument `{other}`");
                return Err(usage());
            }
        }
    }
    if opts.passes.is_empty() {
        opts.passes = PASSES.iter().map(|p| p.to_string()).collect();
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(code) => return code,
    };

    let mut report = Report::default();
    for pass in &opts.passes {
        match run_pass(pass, &opts.root) {
            Some(findings) => report.findings.extend(findings),
            None => return usage(),
        }
    }

    for f in &report.findings {
        if opts.json {
            println!("{}", f.to_json());
        } else {
            println!("{f}");
        }
    }

    let (info, warn, err) = report.counts();
    if !opts.json {
        println!(
            "das-analyze: {} pass(es), {info} info, {warn} warning(s), {err} error(s)",
            opts.passes.len()
        );
    }

    if opts.deny && report.denied() {
        let worst = report.worst().unwrap_or(Severity::Info);
        eprintln!("das-analyze: --deny failed (worst severity: {worst})");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
