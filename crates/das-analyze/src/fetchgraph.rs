//! Pass 3 — peer-fetch deadlock analysis.
//!
//! When a `dasd` daemon executes an offloaded kernel, strips whose
//! dependence window crosses a strip boundary force it to fetch
//! neighbor strips from the peer daemons that hold them. If servers
//! fetched from each other *while blocking their own service loop*,
//! a cyclic server→server dependence graph would be a distributed
//! deadlock waiting for a full request queue. This pass:
//!
//! 1. builds the server-level dependence-fetch digraph each shipped
//!    descriptor induces on every layout of a (D, r, policy) grid,
//!    using the same strip arithmetic as the bandwidth predictor
//!    ([`StripingParams::remote_dependent_strips`]);
//! 2. finds cycles (strongly connected components with more than one
//!    node — the graph has no self-loops, a server never peer-fetches
//!    from itself);
//! 3. emits a canonical deadlock-free fetch order — ascending strip
//!    id, ties by server id — for every cyclic cell, and
//! 4. proves the shipped service cannot deadlock anyway, by checking
//!    the `GetStrip` handler in `das-net/src/server.rs` performs no
//!    nested peer fetch: the fetch protocol is depth-1, so a cycle in
//!    the server graph never becomes a cycle in the waits-for graph.
//!
//! Finding codes:
//!
//! * `DA301` (info) — a descriptor induces cyclic fetch graphs on
//!   some grid cells; the finding carries the canonical acyclic order
//!   and the depth-1 bound that makes the cycles harmless.
//! * `DA302` (error) — the `GetStrip` handler performs a nested peer
//!   fetch, so cyclic cells are a real distributed-deadlock risk.
//! * `DA303` (info) — proof records: a descriptor whose fetch graph
//!   is edge-free on the whole grid, or the depth-1 service check
//!   passing.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use das_core::features::KernelFeatures;
use das_core::predict::StripingParams;
use das_pfs::{Layout, LayoutPolicy, ServerId, StripId};

use crate::finding::{Finding, Severity};

const PASS: &str = "fetchgraph";

/// Element size, image width and strip shape for the grid sweep: f32
/// elements, 64-element rows, 2 rows per strip — small enough that
/// every stencil in the shipped set crosses strips, so the graph is
/// exercised, and matching the shapes the descriptor pass sweeps.
const ELEMENT: u64 = 4;
const WIDTH: u64 = 64;
const STRIP_ROWS: u64 = 2;

/// The (D, r) grid from the acceptance criteria.
const SERVER_COUNTS: [u32; 3] = [2, 4, 8];
const GROUP_SIZES: [u64; 3] = [1, 2, 4];

/// One analyzed grid cell.
#[derive(Debug)]
struct Cell {
    servers: u32,
    policy: LayoutPolicy,
    /// Edges server → set of servers it fetches from.
    edges: BTreeMap<ServerId, BTreeSet<ServerId>>,
    /// A cycle, as a server sequence `s0 → s1 → … → s0`, if any.
    cycle: Option<Vec<ServerId>>,
}

/// Run the pass: grid analysis over `root/descriptors/kernels.txt`
/// plus the depth-1 source proof over `root/crates/das-net`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    check_service_depth(root, &mut out);

    let desc = root.join("descriptors/kernels.txt");
    let src = match std::fs::read_to_string(&desc) {
        Ok(src) => src,
        // The descriptor pass already reports unreadable/unparseable
        // descriptor files; this pass just has nothing to sweep.
        Err(_) => return out,
    };
    let kernels = match KernelFeatures::parse_text_with_lines(&src) {
        Ok(recs) => recs,
        Err(_) => return out,
    };

    for (_, kernel) in &kernels {
        analyze_kernel(kernel, &mut out);
    }
    out
}

fn analyze_kernel(kernel: &KernelFeatures, out: &mut Vec<Finding>) {
    let offsets = kernel.offsets(WIDTH);
    let entity = format!("kernel {}", kernel.name);
    if offsets.is_empty() {
        out.push(Finding::new(
            "DA303",
            Severity::Info,
            PASS,
            entity,
            "pointwise (no dependence offsets): fetch graph is empty on every layout".to_string(),
        ));
        return;
    }

    let mut cyclic_cells = Vec::new();
    let mut edge_cells = 0usize;
    let mut total_cells = 0usize;
    let mut example: Option<(Cell, Vec<(u64, ServerId)>)> = None;

    for servers in SERVER_COUNTS {
        for group in GROUP_SIZES {
            for policy in [
                LayoutPolicy::Grouped { group },
                LayoutPolicy::GroupedReplicated { group },
            ] {
                total_cells += 1;
                let cell = analyze_cell(&offsets, servers, policy);
                if !cell.edges.is_empty() {
                    edge_cells += 1;
                }
                if cell.cycle.is_some() {
                    let label = format!("D={} r={} {}", servers, group, policy.name());
                    if example.is_none() {
                        let order = canonical_order(&offsets, servers, policy);
                        example = Some((cell, order));
                    }
                    cyclic_cells.push(label);
                }
            }
        }
    }

    if cyclic_cells.is_empty() {
        out.push(Finding::new(
            "DA303",
            Severity::Info,
            PASS,
            entity,
            format!(
                "fetch graph acyclic on all {total_cells} grid cells ({edge_cells} with cross-server edges): no fetch ordering constraint needed"
            ),
        ));
        return;
    }

    let (cell, order) = example.expect("cyclic cells imply an example");
    let cycle = cell.cycle.as_ref().expect("example cell is cyclic");
    let cycle_str = cycle
        .iter()
        .map(|s| format!("S{}", s.0))
        .collect::<Vec<_>>()
        .join(" → ");
    let order_str = order
        .iter()
        .take(8)
        .map(|(strip, server)| format!("strip {strip}@S{}", server.0))
        .collect::<Vec<_>>()
        .join(", ");
    out.push(Finding::new(
        "DA301",
        Severity::Info,
        PASS,
        entity,
        format!(
            "fetch graph cyclic on {}/{} grid cells (e.g. D={} {}: {cycle_str}); safe because GetStrip is depth-1 (no nested fetch), and a canonical acyclic order exists: ascending (strip, server) — first of {}: {order_str}, …",
            cyclic_cells.len(),
            total_cells,
            cell.servers,
            cell.policy.name(),
            order.len(),
        ),
    ));
}

/// Strip count for a cell: enough strips that every server appears in
/// the layout several times, bounded below for small D·r.
fn strip_count(servers: u32, policy: LayoutPolicy) -> u64 {
    let span = u64::from(servers) * policy.group_size();
    (span * 3).max(24)
}

/// The sweep's striping parameters for one grid cell.
fn cell_params(servers: u32, policy: LayoutPolicy) -> StripingParams {
    StripingParams {
        element_size: ELEMENT,
        strip_size: ELEMENT * WIDTH * STRIP_ROWS,
        layout: Layout::new(policy, servers),
    }
}

fn analyze_cell(offsets: &[i64], servers: u32, policy: LayoutPolicy) -> Cell {
    let params = cell_params(servers, policy);
    let strips = strip_count(servers, policy);
    let total_elements = strips * WIDTH * STRIP_ROWS;
    let mut edges: BTreeMap<ServerId, BTreeSet<ServerId>> = BTreeMap::new();
    for t in 0..strips {
        let owner = params.layout.primary(StripId(t));
        // remote_dependent_strips already excludes strips a local
        // replica covers, so with replication the fetch only goes out
        // when no copy is held.
        for u in params.remote_dependent_strips(owner, t, offsets, total_elements) {
            let target = params.layout.primary(StripId(u));
            if target != owner {
                edges.entry(owner).or_default().insert(target);
            }
        }
    }
    let cycle = find_cycle(&edges);
    Cell { servers, policy, edges, cycle }
}

/// DFS cycle detection over the server digraph; returns one witness
/// cycle as `s0 → … → s0`.
fn find_cycle(edges: &BTreeMap<ServerId, BTreeSet<ServerId>>) -> Option<Vec<ServerId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let nodes: Vec<ServerId> = edges.keys().copied().collect();
    let mut mark: BTreeMap<ServerId, Mark> = nodes.iter().map(|&n| (n, Mark::White)).collect();

    fn dfs(
        n: ServerId,
        edges: &BTreeMap<ServerId, BTreeSet<ServerId>>,
        mark: &mut BTreeMap<ServerId, Mark>,
        stack: &mut Vec<ServerId>,
    ) -> Option<Vec<ServerId>> {
        mark.insert(n, Mark::Grey);
        stack.push(n);
        if let Some(next) = edges.get(&n) {
            for &m in next {
                match mark.get(&m).copied().unwrap_or(Mark::White) {
                    Mark::Grey => {
                        // Cycle: slice the stack from m's position.
                        let start = stack.iter().position(|&s| s == m).unwrap_or(0);
                        let mut cycle = stack[start..].to_vec();
                        cycle.push(m);
                        return Some(cycle);
                    }
                    Mark::White => {
                        if let Some(c) = dfs(m, edges, mark, stack) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
        }
        stack.pop();
        mark.insert(n, Mark::Black);
        None
    }

    for n in nodes {
        if mark[&n] == Mark::White {
            let mut stack = Vec::new();
            if let Some(c) = dfs(n, edges, &mut mark, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

/// The canonical deadlock-free fetch order for a cell: all
/// (strip, owner) fetch obligations sorted ascending by strip id,
/// ties by server id. Acquiring fetches in a global total order can
/// never form a waits-for cycle.
fn canonical_order(offsets: &[i64], servers: u32, policy: LayoutPolicy) -> Vec<(u64, ServerId)> {
    let params = cell_params(servers, policy);
    let strips = strip_count(servers, policy);
    let total_elements = strips * WIDTH * STRIP_ROWS;
    let mut order = BTreeSet::new();
    for t in 0..strips {
        let owner = params.layout.primary(StripId(t));
        for u in params.remote_dependent_strips(owner, t, offsets, total_elements) {
            order.insert((u, params.layout.primary(StripId(u))));
        }
    }
    order.into_iter().collect()
}

/// Source proof that the peer-fetch protocol is depth-1: the
/// `GetStrip` handler in the daemon must not itself call into the
/// peer table, so a server blocked on a peer fetch still answers the
/// `GetStrip` requests other servers send it, and no waits-for cycle
/// can form regardless of the dependence graph's shape.
fn check_service_depth(root: &Path, out: &mut Vec<Finding>) {
    let rel = "crates/das-net/src/server.rs";
    let path = root.join(rel);
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        // Not every analyzed root ships das-net (fixtures); nothing
        // to prove or refute.
        Err(_) => return,
    };
    let Some(body) = getstrip_arm(&src) else {
        out.push(Finding::new(
            "DA302",
            Severity::Error,
            PASS,
            rel,
            "cannot locate the Message::GetStrip handler arm — the depth-1 service proof no longer applies; re-verify the fetch protocol".to_string(),
        ));
        return;
    };
    let nested = ["peers.", ".call(", ".call_traced(", "get_strip("];
    if let Some(pat) = nested.iter().find(|p| body.contains(**p)) {
        out.push(Finding::new(
            "DA302",
            Severity::Error,
            PASS,
            rel,
            format!(
                "the GetStrip handler contains `{pat}` — a nested peer fetch makes the fetch protocol recursive, and cyclic dependence-fetch graphs become a distributed-deadlock risk"
            ),
        ));
    } else {
        out.push(Finding::new(
            "DA303",
            Severity::Info,
            PASS,
            rel,
            "GetStrip handler performs no nested peer fetch: the fetch protocol is depth-1, so server-graph cycles cannot become waits-for cycles".to_string(),
        ));
    }
}

/// The source text of the `Message::GetStrip { … } => { … }` match
/// arm, by brace matching from the pattern to the arm's end.
fn getstrip_arm(src: &str) -> Option<&str> {
    let start = src.find("Message::GetStrip")?;
    let rest = &src[start..];
    let arrow = rest.find("=>")?;
    let body = &rest[arrow + 2..];
    // The arm body is either a block or an expression ending at the
    // next `,` at depth 0; handle the block case (das-net style).
    let open = body.find('{')?;
    let mut depth = 0usize;
    for (i, c) in body[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&body[open..open + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-row-up/1-row-down stencil on a 2-server grouped layout with
    /// 2-row strips: consecutive strips alternate groups, so S0 and S1
    /// must fetch from each other — the canonical cyclic case.
    #[test]
    fn symmetric_stencil_on_grouped_layout_is_cyclic() {
        let offsets: Vec<i64> = vec![-(WIDTH as i64), WIDTH as i64];
        let cell = analyze_cell(&offsets, 2, LayoutPolicy::Grouped { group: 1 });
        assert!(!cell.edges.is_empty());
        assert!(cell.cycle.is_some(), "{:?}", cell.edges);
    }

    /// Replication with a group large enough to cover the reach kills
    /// every edge: neighbors are held locally.
    #[test]
    fn covering_replication_removes_all_edges() {
        let offsets: Vec<i64> = vec![-(WIDTH as i64), WIDTH as i64];
        let cell = analyze_cell(&offsets, 2, LayoutPolicy::GroupedReplicated { group: 4 });
        assert!(cell.edges.is_empty(), "{:?}", cell.edges);
    }

    #[test]
    fn canonical_order_is_sorted_and_total() {
        let offsets: Vec<i64> = vec![-(WIDTH as i64), WIDTH as i64];
        let order = canonical_order(&offsets, 4, LayoutPolicy::Grouped { group: 2 });
        assert!(!order.is_empty());
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(order, sorted, "canonical order must be a sorted set");
    }

    #[test]
    fn cycle_detector_finds_two_cycle_and_accepts_dag() {
        let mut edges: BTreeMap<ServerId, BTreeSet<ServerId>> = BTreeMap::new();
        edges.entry(ServerId(0)).or_default().insert(ServerId(1));
        edges.entry(ServerId(1)).or_default().insert(ServerId(0));
        let cycle = find_cycle(&edges).expect("2-cycle");
        assert!(cycle.len() >= 3, "{cycle:?}");
        assert_eq!(cycle.first(), cycle.last());

        let mut dag: BTreeMap<ServerId, BTreeSet<ServerId>> = BTreeMap::new();
        dag.entry(ServerId(0)).or_default().insert(ServerId(1));
        dag.entry(ServerId(1)).or_default().insert(ServerId(2));
        assert!(find_cycle(&dag).is_none());
    }

    #[test]
    fn getstrip_arm_extraction_and_nested_fetch_detection() {
        let clean = r#"
            match msg {
                Message::GetStrip { file, strip } => {
                    let inner = lock(&self.inner);
                    inner.store.read_strip(file, strip)
                }
                _ => {}
            }
        "#;
        let body = getstrip_arm(clean).expect("arm found");
        assert!(body.contains("read_strip"));
        assert!(!body.contains("peers."));

        let dirty = r#"
            match msg {
                Message::GetStrip { file, strip } => {
                    if !local { return self.peers.get_strip(file, strip); }
                    inner.store.read_strip(file, strip)
                }
            }
        "#;
        let body = getstrip_arm(dirty).expect("arm found");
        assert!(body.contains("peers."));
    }

    /// Acceptance sweep: every builtin kernel must come out either
    /// edge-free or cyclic-but-proven-safe — never DA302 — and the
    /// analysis must terminate over the full D×r grid.
    #[test]
    fn builtin_kernels_sweep_produces_only_info() {
        let recs = KernelFeatures::parse_text_with_lines(das_core::features::BUILTIN_DESCRIPTORS)
            .expect("builtin descriptors parse");
        let mut out = Vec::new();
        for (_, k) in &recs {
            analyze_kernel(k, &mut out);
        }
        assert_eq!(out.len(), recs.len());
        assert!(out.iter().all(|f| f.severity == Severity::Info), "{out:#?}");
        assert!(out.iter().any(|f| f.code == "DA301"), "expected at least one cyclic kernel");
    }
}
