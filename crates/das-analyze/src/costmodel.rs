//! Pass 13: `costmodel` — symbolic wire-cost verification against
//! the paper's Eqs. 1–17 bookkeeping.
//!
//! The das-core predictors (`predict_file`, `predict_nas_fetches`,
//! `nas_fetch_plan`) promise byte counts that the das-net codec must
//! actually put on the wire, or every capacity/offload decision the
//! paper's equations drive is made against fiction. This pass closes
//! that loop without trusting either side:
//!
//! 1. **Extract** — parse `das-net/src/proto.rs` *as source* and
//!    derive a symbolic per-variant payload-size expression
//!    (`konst + Σ |blob|`) from the `encode_payload` match arms and
//!    the `put_*` primitive bodies. No hand-maintained size table:
//!    the formulas come from the same tokens the compiler sees.
//! 2. **Verify** — evaluate each expression against the *linked*
//!    codec: fixed-size variants against `Message::samples()`,
//!    variable-length ones against purpose-built messages over
//!    `n ∈ {0, 1, 7, 1024}`. Divergence is `DA811` (deny).
//! 3. **Compose** — for the paper's RPC sequences (peer dependence
//!    fetches from `nas_fetch_plan`, client strip reads, client
//!    strip writes) compose per-sequence wire-cost formulas from the
//!    verified per-message expressions plus frame overhead extracted
//!    from `codec.rs`, and cross-check the totals against measured
//!    `frame_parts_opts` byte counts over a (D, strip, policy, caps)
//!    grid. Divergence is `DA812` (deny).
//!
//! Codes: `DA810` proof record (per-variant formula verified),
//! `DA811` symbolic/measured payload drift, `DA812` composed
//! sequence-cost drift or plan/predictor inconsistency, `DA813`
//! unextractable or unverifiable variant (completeness, gated on the
//! source declaring `KNOWN_OPCODES`), `DA814` frame-overhead
//! constant drift, `DA815` census. `DA811`/`DA813`/`DA814` honor
//! `// das-lint: allow(...)` waivers at the anchored source line;
//! grid findings (`DA812`) have no source line and cannot be waived.

use std::collections::BTreeMap;
use std::ops::Range;
use std::path::Path;

use das_core::StripingParams;
use das_net::codec::frame_parts_opts;
use das_net::proto::{ErrorCode, Message};
use das_pfs::{Layout, LayoutPolicy};

use crate::finding::{Finding, Severity};
use crate::lints;
use crate::syntax::{self, TokKind, Token};

const PASS: &str = "costmodel";

/// Variable lengths to sweep when verifying a blob-carrying variant.
const BLOB_LENS: [usize; 4] = [0, 1, 7, 1024];

/// Cap at which individual `DA812` grid findings stop; the remainder
/// collapses into one summary so a single drifted constant does not
/// produce 72 near-identical findings.
const GRID_FINDING_CAP: usize = 6;

/// A symbolic payload size: a byte constant plus one `|name|` term
/// per variable-length (string/blob) field.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct SizeExpr {
    konst: u64,
    lens: Vec<String>,
}

impl SizeExpr {
    fn formula(&self) -> String {
        let mut s = self.konst.to_string();
        for l in &self.lens {
            s.push_str(&format!(" + |{l}|"));
        }
        s
    }
}

/// One extracted `encode_payload` arm: variant name, source line of
/// the arm pattern, and the derived size expression (`None` when the
/// arm resisted extraction).
struct Arm {
    variant: String,
    line: u32,
    expr: Option<SizeExpr>,
}

/// Frame overhead constants extracted from source: header and CRC
/// always present (`frame_parts_opts` sets `FLAG_CRC`), trace and
/// budget lengths added per caps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Overhead {
    header: u64,
    crc: u64,
    trace: u64,
    budget: u64,
}

impl Overhead {
    fn of(&self, trace: bool, budget: bool) -> u64 {
        self.header
            + self.crc
            + if trace { self.trace } else { 0 }
            + if budget { self.budget } else { 0 }
    }
}

/// Run the costmodel pass against a repository root.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let sources = lints::workspace_sources(root);
    let proto = sources
        .iter()
        .find(|(rel, _)| lints::crate_of(rel) == "das-net" && rel.ends_with("src/proto.rs"));
    let Some((proto_rel, proto_src)) = proto else {
        out.push(Finding::new(
            "DA815",
            Severity::Info,
            PASS,
            "costmodel",
            "no das-net/src/proto.rs under this root; nothing to model",
        ));
        return out;
    };
    let codec = sources
        .iter()
        .find(|(rel, _)| lints::crate_of(rel) == "das-net" && rel.ends_with("src/codec.rs"));

    let lx = syntax::lex(proto_src);
    let toks = &lx.tokens;
    let fns = syntax::extract_fns(&lx);

    // The completeness contract (DA813) only binds the real protocol
    // module — recognized by its `KNOWN_OPCODES` table. Fixture
    // protos that model a handful of arms stay quiet.
    let full_proto = toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "KNOWN_OPCODES");

    // ---- extraction --------------------------------------------------
    let helpers = extract_helpers(toks, &fns);
    let arms = extract_encode_arms(toks, &fns, &helpers);
    let opcodes = extract_opcode_map(toks, &fns);
    let mut used: Vec<(u32, String)> = Vec::new();

    // ---- per-variant verification against the linked codec -----------
    let mut samples_by_op: BTreeMap<u8, Message> = BTreeMap::new();
    for m in Message::samples() {
        samples_by_op.entry(m.opcode()).or_insert(m);
    }
    let mut exprs_by_op: BTreeMap<u8, SizeExpr> = BTreeMap::new();
    let mut verified = 0usize;
    let mut fixed = 0usize;
    let mut varlen = 0usize;

    for arm in &arms {
        let entity = format!("{proto_rel}:{}", arm.line);
        let Some(op) = opcodes.get(&arm.variant).copied() else {
            // `opcode()` is a total match over the enum, so a missing
            // entry means the extractor failed on that fn, not the
            // source — surface it only for the real module.
            if full_proto {
                emit_waivable(&lx, arm.line, &mut used, &mut out, Finding::new(
                    "DA813",
                    Severity::Error,
                    PASS,
                    entity,
                    format!(
                        "Message::{}: no opcode extracted from `opcode()`; cannot match the symbolic formula to the linked codec",
                        arm.variant
                    ),
                ));
            }
            continue;
        };
        let Some(expr) = &arm.expr else {
            if full_proto {
                emit_waivable(&lx, arm.line, &mut used, &mut out, Finding::new(
                    "DA813",
                    Severity::Error,
                    PASS,
                    entity,
                    format!(
                        "Message::{} (opcode {op:#04x}): encode arm resisted symbolic extraction; the Eqs. 1-17 cost model cannot cover it",
                        arm.variant
                    ),
                ));
            }
            continue;
        };
        exprs_by_op.insert(op, expr.clone());
        if expr.lens.is_empty() {
            fixed += 1;
            // Fixed-size variant: one linked instance settles it.
            let linked = samples_by_op
                .get(&op)
                .cloned()
                .or_else(|| builder(op, 0));
            let Some(msg) = linked else {
                if full_proto {
                    emit_waivable(&lx, arm.line, &mut used, &mut out, Finding::new(
                        "DA813",
                        Severity::Error,
                        PASS,
                        entity,
                        format!(
                            "Message::{} (opcode {op:#04x}): no linked sample or builder to verify the symbolic size against",
                            arm.variant
                        ),
                    ));
                }
                continue;
            };
            let measured = msg.encode_payload().len() as u64;
            if measured != expr.konst {
                emit_waivable(&lx, arm.line, &mut used, &mut out, Finding::new(
                    "DA811",
                    Severity::Error,
                    PASS,
                    entity,
                    format!(
                        "Message::{}: symbolic |payload| = {}, but the linked codec encodes {measured} B — the source formula has drifted from the wire",
                        arm.variant, expr.konst
                    ),
                ));
                continue;
            }
            verified += 1;
            out.push(Finding::new(
                "DA810",
                Severity::Info,
                PASS,
                entity,
                format!(
                    "Message::{}: |payload| ≡ {} — verified against the linked codec",
                    arm.variant,
                    expr.formula()
                ),
            ));
        } else {
            varlen += 1;
            let k = expr.lens.len() as u64;
            let Some(probe) = builder(op, 0) else {
                if full_proto {
                    emit_waivable(&lx, arm.line, &mut used, &mut out, Finding::new(
                        "DA813",
                        Severity::Error,
                        PASS,
                        entity,
                        format!(
                            "Message::{} (opcode {op:#04x}): variable-length variant with no in-analyzer builder; |payload| = {} is unverified",
                            arm.variant,
                            expr.formula()
                        ),
                    ));
                }
                continue;
            };
            drop(probe);
            let mut drifted = false;
            for n in BLOB_LENS {
                let msg = builder(op, n).expect("builder succeeded at n=0");
                let measured = msg.encode_payload().len() as u64;
                let symbolic = expr.konst + k * n as u64;
                if measured != symbolic {
                    emit_waivable(&lx, arm.line, &mut used, &mut out, Finding::new(
                        "DA811",
                        Severity::Error,
                        PASS,
                        entity.clone(),
                        format!(
                            "Message::{}: symbolic |payload| = {} gives {symbolic} at n = {n}, but the linked codec encodes {measured} B",
                            arm.variant,
                            expr.formula()
                        ),
                    ));
                    drifted = true;
                    break;
                }
            }
            if !drifted {
                verified += 1;
                out.push(Finding::new(
                    "DA810",
                    Severity::Info,
                    PASS,
                    entity,
                    format!(
                        "Message::{}: |payload| ≡ {} — verified against the linked codec for n ∈ {{0, 1, 7, 1024}}",
                        arm.variant,
                        expr.formula()
                    ),
                ));
            }
        }
    }

    // Completeness: every opcode-mapped variant must carry a size
    // expression, and the declared KNOWN_OPCODES count must match.
    if full_proto {
        let arm_names: Vec<&str> = arms.iter().map(|a| a.variant.as_str()).collect();
        for (variant, op) in &opcodes {
            if !arm_names.contains(&variant.as_str()) {
                out.push(Finding::new(
                    "DA813",
                    Severity::Error,
                    PASS,
                    format!("{proto_rel}:Message::{variant}"),
                    format!(
                        "Message::{variant} (opcode {op:#04x}) appears in `opcode()` but no encode arm was extracted for it"
                    ),
                ));
            }
        }
        if let Some(declared) = known_opcodes_len(toks) {
            if declared != opcodes.len() as u64 {
                out.push(Finding::new(
                    "DA813",
                    Severity::Error,
                    PASS,
                    format!("{proto_rel}:KNOWN_OPCODES"),
                    format!(
                        "KNOWN_OPCODES declares {declared} opcodes but `opcode()` maps {} variants — the table has drifted",
                        opcodes.len()
                    ),
                ));
            }
        }
    }

    // ---- frame overhead: extracted constants vs the linked framer ----
    let caps: [(Option<u64>, Option<u32>); 4] =
        [(None, None), (Some(0xD05E), None), (None, Some(250)), (Some(0xD05E), Some(250))];
    let measured_overhead = |trace: Option<u64>, budget: Option<u32>| -> u64 {
        let ping = Message::Ping;
        (frame_parts_opts(&ping, trace, budget).len() - ping.encode_payload().len()) as u64
    };
    let extracted_overhead = codec.and_then(|(codec_rel, codec_src)| {
        let clx = syntax::lex(codec_src);
        match extract_overhead(toks, &clx.tokens) {
            Some((oh, line)) => Some((oh, codec_rel.clone(), clx, line)),
            None => {
                out.push(Finding::new(
                    "DA814",
                    Severity::Error,
                    PASS,
                    format!("{codec_rel}:0"),
                    "could not extract frame overhead constants (HEADER_LEN / trace_len / budget_len / crc_len) from source — the overhead model is unverifiable",
                ));
                None
            }
        }
    });
    let overhead = if let Some((oh, codec_rel, clx, line)) = &extracted_overhead {
        let mut codec_used: Vec<(u32, String)> = Vec::new();
        let mut ok = true;
        for (tr, bu) in caps {
            let want = oh.of(tr.is_some(), bu.is_some());
            let got = measured_overhead(tr, bu);
            if want != got {
                ok = false;
                emit_waivable(clx, *line, &mut codec_used, &mut out, Finding::new(
                    "DA814",
                    Severity::Error,
                    PASS,
                    format!("{codec_rel}:{line}"),
                    format!(
                        "frame overhead with trace={} budget={}: source constants give {want} B, the linked framer produces {got} B",
                        tr.is_some(),
                        bu.is_some()
                    ),
                ));
            }
        }
        if ok {
            out.push(Finding::new(
                "DA810",
                Severity::Info,
                PASS,
                format!("{codec_rel}:{line}"),
                format!(
                    "frame overhead ≡ {} (header) + {} (CRC) + {}·[trace] + {}·[budget] — verified over all caps combinations",
                    oh.header, oh.crc, oh.trace, oh.budget
                ),
            ));
        }
        lints::stale_waivers(PASS, codec_rel, clx, &["DA814"], &codec_used, &mut out);
        *oh
    } else {
        // No codec source (fixture runs): trust the linked framer for
        // composition so DA812 still isolates payload-formula drift.
        Overhead {
            header: 12,
            crc: measured_overhead(None, None) - 12,
            trace: measured_overhead(Some(1), None) - measured_overhead(None, None),
            budget: measured_overhead(None, Some(1)) - measured_overhead(None, None),
        }
    };

    // ---- composed sequence costs over the layout grid ----------------
    let frames_measured =
        grid_check(&exprs_by_op, overhead, &caps, &mut out);

    lints::stale_waivers(PASS, proto_rel, &lx, &["DA811", "DA813", "DA814"], &used, &mut out);

    out.push(Finding::new(
        "DA815",
        Severity::Info,
        PASS,
        "costmodel",
        format!(
            "{} encode arms extracted ({fixed} fixed, {varlen} variable-length), {verified} formulas verified against the linked codec; sequence grid: 18 layout cells × 4 caps, {frames_measured} frames measured",
            arms.len()
        ),
    ));
    out
}

/// Push `f` unless a waiver covers its line; track fired waivers.
fn emit_waivable(
    lx: &syntax::Lexed,
    line: u32,
    used: &mut Vec<(u32, String)>,
    out: &mut Vec<Finding>,
    f: Finding,
) {
    if lx.waived(line, f.code) {
        used.push((line, f.code.to_string()));
    } else {
        out.push(f);
    }
}

// ---- grid composition ----------------------------------------------------

/// Sweep the (D, strip, policy) × caps grid: compose symbolic
/// sequence costs from per-message formulas + overhead, measure the
/// same sequences through the linked codec, and compare. Also checks
/// `nas_fetch_plan` against `predict_nas_fetches` (the plan is the
/// itemization of the prediction). Returns the number of frames
/// measured.
fn grid_check(
    exprs: &BTreeMap<u8, SizeExpr>,
    oh: Overhead,
    caps: &[(Option<u64>, Option<u32>)],
    out: &mut Vec<Finding>,
) -> u64 {
    const OP_PUT: u8 = 0x12;
    const OP_PUT_OK: u8 = 0x13;
    const OP_GET: u8 = 0x14;
    const OP_DATA: u8 = 0x15;
    // Sequences need a *fixed* request formula and a blob reply
    // formula; skip composition when the extraction didn't yield them
    // (a doctored or partial proto).
    let fixed_k = |op: u8| exprs.get(&op).filter(|e| e.lens.is_empty()).map(|e| e.konst);
    let blob_k = |op: u8| exprs.get(&op).filter(|e| e.lens.len() == 1).map(|e| e.konst);
    let read_ks = fixed_k(OP_GET).zip(blob_k(OP_DATA));
    let write_ks = blob_k(OP_PUT).zip(fixed_k(OP_PUT_OK));

    let offsets: [i64; 8] = [-9, -8, -7, -1, 1, 7, 8, 9];
    const FILE_LEN: u64 = 768;
    const ELEMENT: u64 = 4;
    let policies = [
        LayoutPolicy::RoundRobin,
        LayoutPolicy::Grouped { group: 2 },
        LayoutPolicy::GroupedReplicated { group: 2 },
    ];

    let mut memo: BTreeMap<(u8, u64, bool, bool), u64> = BTreeMap::new();
    let mut frames = 0u64;
    let mut flen = |msg: &Message, tr: Option<u64>, bu: Option<u32>| -> u64 {
        let key = (msg.opcode(), msg.encode_payload().len() as u64, tr.is_some(), bu.is_some());
        if let Some(v) = memo.get(&key) {
            return *v;
        }
        frames += 1;
        let v = frame_parts_opts(msg, tr, bu).len() as u64;
        memo.insert(key, v);
        v
    };

    let mut grid_findings = 0usize;
    let mut suppressed = 0usize;
    let mut emit = |out: &mut Vec<Finding>, entity: String, msg: String| {
        if grid_findings < GRID_FINDING_CAP {
            out.push(Finding::new("DA812", Severity::Error, PASS, entity, msg));
        } else {
            suppressed += 1;
        }
        grid_findings += 1;
    };

    for d in [2u32, 3, 4] {
        for strip in [64u64, 256] {
            for policy in policies {
                let cell = format!("grid:D={d},strip={strip},policy={}", policy_name(policy));
                let params = StripingParams {
                    element_size: ELEMENT,
                    strip_size: strip,
                    layout: Layout::new(policy, d),
                };
                let plan = params.nas_fetch_plan(&offsets, FILE_LEN);
                let pred = params.predict_nas_fetches(&offsets, FILE_LEN);
                let plan_bytes: u64 = plan.iter().map(|f| f.len_bytes).sum();
                if plan.len() as u64 != pred.fetches || plan_bytes != pred.bytes {
                    emit(
                        out,
                        cell.clone(),
                        format!(
                            "nas_fetch_plan itemizes {} fetches / {} B but predict_nas_fetches promises {} / {} — the plan is not the prediction's itemization",
                            plan.len(),
                            plan_bytes,
                            pred.fetches,
                            pred.bytes
                        ),
                    );
                    continue;
                }
                let strips = (FILE_LEN / ELEMENT).div_ceil((strip / ELEMENT).max(1));
                let strip_len = |t: u64| strip.min(FILE_LEN - t * strip);
                for &(tr, bu) in caps {
                    let o = oh.of(tr.is_some(), bu.is_some());
                    let cap_cell = format!(
                        "{cell},caps={}{}",
                        if tr.is_some() { "T" } else { "-" },
                        if bu.is_some() { "B" } else { "-" }
                    );
                    if let Some((k_get, k_data)) = read_ks {
                        // Peer dependence-fetch sequence: one
                        // GetStrip + StripData(len) per planned fetch
                        // — the wire realization of Eq. 16's Cdata.
                        let sym = pred.fetches * (2 * o + k_get + k_data) + pred.bytes;
                        let meas: u64 = plan
                            .iter()
                            .map(|f| {
                                flen(&Message::GetStrip { file: 1, strip: f.u }, tr, bu)
                                    + flen(
                                        &Message::StripData {
                                            payload: vec![0u8; f.len_bytes as usize],
                                        },
                                        tr,
                                        bu,
                                    )
                            })
                            .sum();
                        if sym != meas {
                            emit(out, cap_cell.clone(), format!(
                                "peer-fetch sequence: symbolic cost {sym} B ({} fetches × (2·{o} + {k_get} + {k_data}) + {} B), codec produces {meas} B",
                                pred.fetches, pred.bytes
                            ));
                        }
                        // Client whole-file read: GetStrip +
                        // StripData(strip_len) per strip.
                        let sym_r: u64 = (0..strips)
                            .map(|t| 2 * o + k_get + k_data + strip_len(t))
                            .sum();
                        let meas_r: u64 = (0..strips)
                            .map(|t| {
                                flen(&Message::GetStrip { file: 1, strip: t }, tr, bu)
                                    + flen(
                                        &Message::StripData {
                                            payload: vec![0u8; strip_len(t) as usize],
                                        },
                                        tr,
                                        bu,
                                    )
                            })
                            .sum();
                        if sym_r != meas_r {
                            emit(out, cap_cell.clone(), format!(
                                "client-read sequence over {strips} strips: symbolic cost {sym_r} B, codec produces {meas_r} B"
                            ));
                        }
                    }
                    if let Some((k_put, k_put_ok)) = write_ks {
                        // Client whole-file write: PutStrip(strip_len)
                        // + PutStripOk per strip.
                        let sym_w: u64 = (0..strips)
                            .map(|t| 2 * o + k_put + strip_len(t) + k_put_ok)
                            .sum();
                        let meas_w: u64 = (0..strips)
                            .map(|t| {
                                flen(
                                    &Message::PutStrip {
                                        file: 1,
                                        strip: t,
                                        payload: vec![0u8; strip_len(t) as usize],
                                    },
                                    tr,
                                    bu,
                                ) + flen(&Message::PutStripOk, tr, bu)
                            })
                            .sum();
                        if sym_w != meas_w {
                            emit(out, cap_cell, format!(
                                "client-write sequence over {strips} strips: symbolic cost {sym_w} B, codec produces {meas_w} B"
                            ));
                        }
                    }
                }
            }
        }
    }
    if suppressed > 0 {
        out.push(Finding::new(
            "DA812",
            Severity::Error,
            PASS,
            "grid:summary",
            format!("… and {suppressed} further grid cells diverge the same way"),
        ));
    }
    frames
}

fn policy_name(p: LayoutPolicy) -> String {
    match p {
        LayoutPolicy::RoundRobin => "RoundRobin".into(),
        LayoutPolicy::Grouped { group } => format!("Grouped{{{group}}}"),
        LayoutPolicy::GroupedReplicated { group } => format!("GroupedReplicated{{{group}}}"),
    }
}

/// Purpose-built messages for variable-length variants (and fixed
/// fallbacks), keyed by opcode. `n` sizes every blob/string field.
fn builder(op: u8, n: usize) -> Option<Message> {
    Some(match op {
        0x10 => Message::CreateFile {
            name: "x".repeat(n),
            file_len: 768,
            strip_size: 64,
            policy: LayoutPolicy::RoundRobin,
            servers: 3,
        },
        0x12 => Message::PutStrip { file: 1, strip: 0, payload: vec![0u8; n] },
        0x15 => Message::StripData { payload: vec![0u8; n] },
        0x16 => Message::Lookup { name: "x".repeat(n) },
        0x30 => Message::Execute {
            file: 1,
            out_file: 2,
            kernel: "k".repeat(n),
            img_width: 8,
            element_size: 4,
            successive: false,
            force: false,
        },
        0x45 => Message::MetricsText { text: "m".repeat(n) },
        0x47 => Message::TraceDumpResp { spans: vec![0u8; n] },
        0x49 => Message::SlowLogResp { spans: vec![0u8; n] },
        0x7F => Message::Error { code: ErrorCode::Retryable, message: "e".repeat(n) },
        _ => return None,
    })
}

// ---- source extraction ---------------------------------------------------

/// Sizes of the `put_*` encoding primitives, solved to a fixpoint so
/// helpers may call helpers (`put_dist` → `put_policy` → `put_u8`).
fn extract_helpers(toks: &[Token], fns: &[syntax::FnItem]) -> BTreeMap<String, SizeExpr> {
    let mut helpers: BTreeMap<String, SizeExpr> = BTreeMap::new();
    for _round in 0..5 {
        let mut changed = false;
        for f in fns {
            if !f.name.starts_with("put_") || helpers.contains_key(&f.name) {
                continue;
            }
            let params = param_types(toks, f.body.start);
            if let Some(expr) = size_of(toks, f.body.clone(), &helpers, &params) {
                helpers.insert(f.name.clone(), expr);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    helpers
}

/// Parse the `encode_payload` match into per-variant size arms.
fn extract_encode_arms(
    toks: &[Token],
    fns: &[syntax::FnItem],
    helpers: &BTreeMap<String, SizeExpr>,
) -> Vec<Arm> {
    let mut arms = Vec::new();
    let Some(f) = fns.iter().find(|f| f.name == "encode_payload") else {
        return arms;
    };
    let params = param_types(toks, f.body.start);
    let Some((open, close)) = first_match_block(toks, f.body.clone()) else {
        return arms;
    };
    for (pat, body) in split_arms(toks, open + 1..close) {
        let variants = pattern_variants(toks, pat.clone());
        if variants.is_empty() {
            continue;
        }
        let expr = size_of(toks, body, helpers, &params);
        let line = toks[pat.start].line;
        for v in variants {
            arms.push(Arm { variant: v, line, expr: expr.clone() });
        }
    }
    arms
}

/// Parse the `opcode()` match into a variant → opcode map.
fn extract_opcode_map(toks: &[Token], fns: &[syntax::FnItem]) -> BTreeMap<String, u8> {
    let mut map = BTreeMap::new();
    let Some(f) = fns.iter().find(|f| f.name == "opcode") else {
        return map;
    };
    let Some((open, close)) = first_match_block(toks, f.body.clone()) else {
        return map;
    };
    for (pat, body) in split_arms(toks, open + 1..close) {
        let Some(op) = toks[body].iter().find_map(|t| {
            if t.kind == TokKind::Num { num_value(&t.text) } else { None }
        }) else {
            continue;
        };
        for v in pattern_variants(toks, pat) {
            map.insert(v, op as u8);
        }
    }
    map
}

/// The declared length of `KNOWN_OPCODES: [u8; N]`, if present.
fn known_opcodes_len(toks: &[Token]) -> Option<u64> {
    let i = toks
        .iter()
        .position(|t| t.kind == TokKind::Ident && t.text == "KNOWN_OPCODES")?;
    // …: [u8; N] — the first Num within the type brackets.
    toks[i..].iter().take(8).find_map(|t| {
        if t.kind == TokKind::Num { num_value(&t.text) } else { None }
    })
}

/// Extract frame overhead constants: `HEADER_LEN` from the proto
/// source, `trace_len`/`budget_len`/`crc_len` from the codec's
/// `next_frame_ex` (the first numeric literal inside each binding's
/// conditional). Returns the overhead plus the codec line to anchor
/// findings on.
fn extract_overhead(proto_toks: &[Token], codec_toks: &[Token]) -> Option<(Overhead, u32)> {
    let header = const_value(proto_toks, "HEADER_LEN")?;
    let (trace, line) = flag_len(codec_toks, "trace_len")?;
    let (budget, _) = flag_len(codec_toks, "budget_len")?;
    let (crc, _) = flag_len(codec_toks, "crc_len")?;
    Some((Overhead { header, crc, trace, budget }, line))
}

/// `const NAME: _ = N` — the first numeric literal after `NAME :`.
fn const_value(toks: &[Token], name: &str) -> Option<u64> {
    let i = toks.iter().position(|t| {
        t.kind == TokKind::Ident && t.text == name
    })?;
    if toks.get(i + 1).map(|t| t.text.as_str()) != Some(":") {
        return None;
    }
    toks[i..].iter().take(12).find_map(|t| {
        if t.kind == TokKind::Num { num_value(&t.text) } else { None }
    })
}

/// `let NAME = if flags & FLAG_X != 0 { N } else { 0 };` — the first
/// numeric literal inside the first brace block after `NAME`.
fn flag_len(toks: &[Token], name: &str) -> Option<(u64, u32)> {
    let i = toks.iter().position(|t| t.kind == TokKind::Ident && t.text == name)?;
    let line = toks[i].line;
    let open = (i..toks.len().min(i + 25)).find(|&j| toks[j].text == "{")?;
    let v = toks[open..toks.len().min(open + 4)]
        .iter()
        .find_map(|t| if t.kind == TokKind::Num { num_value(&t.text) } else { None })?;
    Some((v, line))
}

fn num_value(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// Find the first `match` in `range` and return its brace block
/// `(open, close)`.
fn first_match_block(toks: &[Token], range: Range<usize>) -> Option<(usize, usize)> {
    let m = (range.start..range.end)
        .find(|&i| toks[i].kind == TokKind::Ident && toks[i].text == "match")?;
    let mut depth = 0i64;
    let mut j = m + 1;
    loop {
        if j >= range.end {
            return None;
        }
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let close = syntax::matching(toks, j, "{", "}")?;
    Some((j, close.min(range.end)))
}

/// Split a match body (between its braces) into `(pattern, body)`
/// token ranges, one per arm. Handles `A | B =>` multi-patterns,
/// brace-block bodies with optional trailing commas, and expression
/// bodies terminated by a top-level comma.
fn split_arms(toks: &[Token], range: Range<usize>) -> Vec<(Range<usize>, Range<usize>)> {
    let mut arms = Vec::new();
    let mut i = range.start;
    while i < range.end {
        let pat_start = i;
        let mut depth = 0i64;
        let mut arrow = None;
        let mut j = i;
        while j < range.end {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0
                    && toks.get(j + 1).is_some_and(|t| t.text == ">") =>
                {
                    arrow = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(a) = arrow else { break };
        let body_start = a + 2;
        if body_start >= range.end {
            break;
        }
        let (body_end, next) = if toks[body_start].text == "{" {
            let Some(close) = syntax::matching(toks, body_start, "{", "}") else { break };
            let mut nx = close + 1;
            if nx < range.end && toks[nx].text == "," {
                nx += 1;
            }
            (close + 1, nx)
        } else {
            let mut d = 0i64;
            let mut k = body_start;
            while k < range.end {
                match toks[k].text.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d -= 1,
                    "," if d == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            (k, (k + 1).min(range.end))
        };
        arms.push((pat_start..a, body_start..body_end));
        i = next;
    }
    arms
}

/// Variant names in an arm pattern: every ident following `Message::`.
fn pattern_variants(toks: &[Token], range: Range<usize>) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i + 3 < range.end + 3 && i + 3 <= range.end {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "Message"
            && toks[i + 1].text == ":"
            && toks[i + 2].text == ":"
            && toks[i + 3].kind == TokKind::Ident
        {
            out.push(toks[i + 3].text.clone());
            i += 4;
        } else {
            i += 1;
        }
    }
    out
}

/// Parameter name → type name for the fn whose body starts at
/// `body_start` (scan back to the `fn` keyword).
fn param_types(toks: &[Token], body_start: usize) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let lo = body_start.saturating_sub(80);
    let Some(f) = (lo..body_start).rev().find(|&i| toks[i].text == "fn") else {
        return map;
    };
    let mut j = f;
    while j + 2 < body_start {
        if toks[j].kind == TokKind::Ident
            && toks[j + 1].text == ":"
            && toks[j + 2].text != ":"
            && (j == 0 || toks[j - 1].text != ":")
        {
            let mut k = j + 2;
            while k < body_start
                && (toks[k].text == "&"
                    || toks[k].text == "mut"
                    || toks[k].kind == TokKind::Lifetime)
            {
                k += 1;
            }
            if k < body_start && toks[k].kind == TokKind::Ident {
                map.insert(toks[j].text.clone(), toks[k].text.clone());
            }
        }
        j += 1;
    }
    map
}

fn int_width(ty: &str) -> Option<u64> {
    match ty {
        "u8" | "i8" => Some(1),
        "u16" | "i16" => Some(2),
        "u32" | "i32" | "f32" => Some(4),
        "u64" | "i64" | "f64" | "usize" | "isize" => Some(8),
        _ => None,
    }
}

/// Buffer mutators we do not model — their presence makes a body
/// unextractable rather than silently miscounted.
const OPAQUE_MUTATORS: [&str; 5] = ["extend", "append", "extend_from_within", "resize", "write_all"];

/// Derive the byte-size expression of a code range: recognized
/// contributions are `put_*` helper calls (sizes composed, blob args
/// becoming `|len|` terms), `.push(_)` (+1), and
/// `.extend_from_slice(..)` (int width when the arg is
/// `x.to_le_bytes()`, else a `|len|` term). A `match` contributes
/// only if all arms agree. Unknown `put_*` calls and opaque buffer
/// mutators abort extraction (`None`).
fn size_of(
    toks: &[Token],
    range: Range<usize>,
    helpers: &BTreeMap<String, SizeExpr>,
    params: &BTreeMap<String, String>,
) -> Option<SizeExpr> {
    let mut expr = SizeExpr::default();
    let mut i = range.start;
    while i < range.end {
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text == "match" {
            let (open, close) = first_match_block(toks, i..range.end)?;
            let arms = split_arms(toks, open + 1..close);
            if arms.is_empty() {
                return None;
            }
            let mut arm_exprs = Vec::new();
            for (_, body) in &arms {
                arm_exprs.push(size_of(toks, body.clone(), helpers, params)?);
            }
            let first = arm_exprs[0].clone();
            if !arm_exprs
                .iter()
                .all(|e| e.konst == first.konst && e.lens.len() == first.lens.len())
            {
                return None;
            }
            expr.konst += first.konst;
            expr.lens.extend(first.lens);
            i = close + 1;
            continue;
        }
        if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.text == "(") {
            let close = syntax::matching(toks, i + 1, "(", ")")?;
            let dotted = i > range.start && toks[i - 1].text == ".";
            let name = t.text.as_str();
            if !dotted {
                if let Some(h) = helpers.get(name) {
                    expr.konst += h.konst;
                    if !h.lens.is_empty() {
                        let arg = second_arg_ident(toks, i + 2..close)
                            .unwrap_or_else(|| "len".to_string());
                        for _ in &h.lens {
                            expr.lens.push(arg.clone());
                        }
                    }
                    i = close + 1;
                    continue;
                }
                if name.starts_with("put_") {
                    // A primitive we have not sized yet — defer (the
                    // fixpoint will retry) rather than undercount.
                    return None;
                }
            } else {
                if name == "push" {
                    expr.konst += 1;
                    i = close + 1;
                    continue;
                }
                if name == "extend_from_slice" {
                    let args = i + 2..close;
                    if toks[args.clone()].iter().any(|t| t.text == "to_le_bytes") {
                        let recv = toks[args].iter().find(|t| t.kind == TokKind::Ident)?;
                        let ty = params.get(&recv.text)?;
                        expr.konst += int_width(ty)?;
                    } else {
                        let recv = toks[args]
                            .iter()
                            .find(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.clone())
                            .unwrap_or_else(|| "bytes".to_string());
                        expr.lens.push(recv);
                    }
                    i = close + 1;
                    continue;
                }
                if OPAQUE_MUTATORS.contains(&name) {
                    return None;
                }
            }
            // Unrecognized call: step into its args so nested helper
            // calls still count (asserts, casts, etc. contribute 0).
            i += 1;
            continue;
        }
        i += 1;
    }
    Some(expr)
}

/// The first ident of the second top-level argument in a call's
/// argument token range (`put_str(&mut b, name)` → `name`).
fn second_arg_ident(toks: &[Token], range: Range<usize>) -> Option<String> {
    let mut depth = 0i64;
    let mut comma = None;
    for i in range.clone() {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                comma = Some(i);
                break;
            }
            _ => {}
        }
    }
    let c = comma?;
    toks[c + 1..range.end]
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text != "mut")
        .map(|t| t.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run the pass against an in-memory mini-crate materialized
    /// under a temp dir.
    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let dir = std::env::temp_dir().join(format!(
            "das-costmodel-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let src = dir.join("crates/das-net/src");
        std::fs::create_dir_all(&src).unwrap();
        for (name, body) in files {
            std::fs::write(src.join(name), body).unwrap();
        }
        let out = run(&dir);
        std::fs::remove_dir_all(&dir).ok();
        out
    }

    /// A minimal faithful proto: GetStrip/StripData arms matching the
    /// real codec byte-for-byte.
    const FAITHFUL: &str = "\
fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}
fn put_blob(b: &mut Vec<u8>, blob: &[u8]) {
    put_u32(b, blob.len() as u32);
    b.extend_from_slice(blob);
}
impl Message {
    pub fn opcode(&self) -> u8 {
        match self {
            Message::GetStrip { .. } => 0x14,
            Message::StripData { .. } => 0x15,
        }
    }
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Message::GetStrip { file, strip } => {
                put_u32(&mut b, *file);
                put_u64(&mut b, *strip);
            }
            Message::StripData { payload } => put_blob(&mut b, payload),
        }
        b
    }
}
";

    #[test]
    fn faithful_proto_verifies_clean() {
        let out = run_on(&[("proto.rs", FAITHFUL)]);
        assert!(
            !out.iter().any(|f| f.severity >= Severity::Warning),
            "{out:?}"
        );
        let proofs: Vec<_> = out.iter().filter(|f| f.code == "DA810").collect();
        assert_eq!(proofs.len(), 2, "{out:?}");
        assert!(proofs.iter().any(|f| f.message.contains("|payload| ≡ 12")), "{proofs:?}");
        assert!(proofs.iter().any(|f| f.message.contains("4 + |payload|")), "{proofs:?}");
    }

    #[test]
    fn doctored_fixed_arm_is_da811_and_da812() {
        // An extra put_u64 in the GetStrip arm: symbolic 20 vs wire 12.
        let drifted = FAITHFUL.replace(
            "put_u64(&mut b, *strip);\n            }",
            "put_u64(&mut b, *strip);\n                put_u64(&mut b, 0);\n            }",
        );
        assert_ne!(drifted, FAITHFUL);
        let out = run_on(&[("proto.rs", drifted.as_str())]);
        let d811: Vec<_> = out.iter().filter(|f| f.code == "DA811").collect();
        assert_eq!(d811.len(), 1, "{out:?}");
        assert!(d811[0].message.contains("symbolic |payload| = 20"), "{d811:?}");
        assert!(out.iter().any(|f| f.code == "DA812"), "{out:?}");
    }

    #[test]
    fn doctored_blob_constant_is_da811() {
        // put_blob's length prefix misdeclared as u64: 8+len vs 4+len.
        let drifted = FAITHFUL.replace(
            "fn put_blob(b: &mut Vec<u8>, blob: &[u8]) {\n    put_u32(b, blob.len() as u32);",
            "fn put_blob(b: &mut Vec<u8>, blob: &[u8]) {\n    put_u64(b, blob.len() as u64);",
        );
        assert_ne!(drifted, FAITHFUL);
        let out = run_on(&[("proto.rs", drifted.as_str())]);
        let d811: Vec<_> = out.iter().filter(|f| f.code == "DA811").collect();
        assert!(
            d811.iter().any(|f| f.message.contains("8 + |payload|")),
            "{out:?}"
        );
    }

    #[test]
    fn waiver_suppresses_da811_and_stale_waiver_fires() {
        let drifted = FAITHFUL.replace(
            "            Message::StripData { payload } => put_blob(&mut b, payload),",
            "            // das-lint: allow(DA811) modelling a legacy u64-prefixed peer\n            Message::StripData { payload } => {\n                put_u64(&mut b, payload.len() as u64);\n                b.extend_from_slice(payload);\n            }",
        );
        assert_ne!(drifted, FAITHFUL);
        let out = run_on(&[("proto.rs", drifted.as_str())]);
        assert!(!out.iter().any(|f| f.code == "DA811"), "{out:?}");
        assert!(!out.iter().any(|f| f.code == "DA430"), "{out:?}");

        let stale = FAITHFUL.replace(
            "            Message::StripData { payload } => put_blob(&mut b, payload),",
            "            // das-lint: allow(DA811) nothing wrong here\n            Message::StripData { payload } => put_blob(&mut b, payload),",
        );
        let out = run_on(&[("proto.rs", stale.as_str())]);
        assert!(out.iter().any(|f| f.code == "DA430"), "{out:?}");
    }

    #[test]
    fn multi_variant_and_unit_group_arms_extract() {
        let src = "\
fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}
impl Message {
    pub fn opcode(&self) -> u8 {
        match self {
            Message::RedistPrepare { .. } => 0x20,
            Message::RedistCommit { .. } => 0x22,
            Message::Ping => 0x50,
            Message::Pong => 0x51,
        }
    }
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Message::RedistPrepare { file, .. } | Message::RedistCommit { file, .. } => {
                put_u32(&mut b, *file);
                put_u32(&mut b, 0);
                put_u32(&mut b, 0);
                b.push(0);
            }
            Message::Ping | Message::Pong => {}
        }
        b
    }
}
";
        // RedistPrepare/RedistCommit really are 13 B on the wire
        // (u32 + 9-byte policy) — the mock mirrors that; Ping/Pong 0.
        let out = run_on(&[("proto.rs", src)]);
        assert!(!out.iter().any(|f| f.severity >= Severity::Warning), "{out:?}");
        assert_eq!(out.iter().filter(|f| f.code == "DA810").count(), 4, "{out:?}");
    }

    #[test]
    fn helper_match_with_equal_arms_composes() {
        // put_policy-style helper: a match whose arms all add 9 B.
        let src = "\
fn put_u8(b: &mut Vec<u8>, v: u8) {
    b.push(v);
}
fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}
fn put_policy(b: &mut Vec<u8>, p: LayoutPolicy) {
    match p {
        LayoutPolicy::RoundRobin => {
            put_u8(b, 0);
            put_u64(b, 0);
        }
        LayoutPolicy::Grouped { group } => {
            put_u8(b, 1);
            put_u64(b, group);
        }
    }
}
fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}
impl Message {
    pub fn opcode(&self) -> u8 {
        match self {
            Message::RedistPrepare { .. } => 0x20,
        }
    }
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Message::RedistPrepare { file, policy } => {
                put_u32(&mut b, *file);
                put_policy(&mut b, *policy);
            }
        }
        b
    }
}
";
        let out = run_on(&[("proto.rs", src)]);
        let proofs: Vec<_> = out.iter().filter(|f| f.code == "DA810").collect();
        assert_eq!(proofs.len(), 1, "{out:?}");
        assert!(proofs[0].message.contains("|payload| ≡ 13"), "{proofs:?}");
    }

    #[test]
    fn overhead_constants_verified_from_codec_source() {
        let codec = "\
pub fn next_frame_ex(flags: u16) {
    let trace_len = if flags & FLAG_TRACE != 0 { 8 } else { 0 };
    let budget_len = if flags & FLAG_DEADLINE != 0 { 4 } else { 0 };
    let crc_len = if flags & FLAG_CRC != 0 { 4 } else { 0 };
}
";
        let proto = format!("pub const HEADER_LEN: usize = 12;\n{FAITHFUL}");
        let out = run_on(&[("proto.rs", proto.as_str()), ("codec.rs", codec)]);
        assert!(!out.iter().any(|f| f.severity >= Severity::Warning), "{out:?}");
        assert!(
            out.iter().any(|f| f.code == "DA810" && f.message.contains("frame overhead")),
            "{out:?}"
        );

        let bad = codec.replace("{ 8 }", "{ 6 }");
        let out = run_on(&[("proto.rs", proto.as_str()), ("codec.rs", bad.as_str())]);
        assert!(out.iter().any(|f| f.code == "DA814"), "{out:?}");
    }

    #[test]
    fn grid_findings_are_capped_with_summary() {
        // Every cell diverges (GetStrip symbolic 20 ≠ 12), so the cap
        // plus summary line must bound the emission.
        let drifted = FAITHFUL.replace(
            "put_u64(&mut b, *strip);\n            }",
            "put_u64(&mut b, *strip);\n                put_u64(&mut b, 0);\n            }",
        );
        let out = run_on(&[("proto.rs", drifted.as_str())]);
        let d812: Vec<_> = out.iter().filter(|f| f.code == "DA812").collect();
        assert!(d812.len() <= GRID_FINDING_CAP + 1, "{}", d812.len());
        assert!(d812.iter().any(|f| f.entity == "grid:summary"), "{d812:?}");
    }

    #[test]
    fn census_reports_extraction_counts() {
        let out = run_on(&[("proto.rs", FAITHFUL)]);
        let census = out.iter().find(|f| f.code == "DA815").unwrap();
        assert!(census.message.contains("2 encode arms"), "{census:?}");
        assert!(census.message.contains("1 fixed, 1 variable-length"), "{census:?}");
    }

    #[test]
    fn no_proto_source_is_a_quiet_skip() {
        let out = run_on(&[("engine.rs", "fn shard_loop() {}\n")]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, "DA815");
    }
}
