//! Pass — bounded model checker for the *pipelined* session
//! (`DA62x`).
//!
//! The `model` pass (PR 5) proves the serial request/reply session:
//! one outstanding request, ladder retries, breaker cooldowns. The
//! engine has since grown pipelining (PR 7): up to 4 in-flight
//! requests per connection with completion-order replies matched by
//! trace id, a deficit-round-robin `FairQueue` with per-class
//! weights, `--max-backlog` admission with shed-then-retry, deadline
//! budgets decrementing per peer hop, and one hedge lane per strip
//! fetch. This pass explores that protocol exhaustively within a
//! bounded script and asserts the invariants the serial model cannot
//! see:
//!
//! * **No lost replies** (`DA621`) — every admitted request's reply
//!   reaches the client by quiescence.
//! * **No duplicate or unmatched reply ids** (`DA622`) — each trace
//!   id is answered exactly once, whatever the completion order.
//! * **Shed-then-retry liveness** (`DA623`) — a shed request is
//!   retried to completion once the backlog drains; overload may
//!   delay work, never lose it.
//! * **Deadline monotonicity** (`DA624`) — the deadline budget
//!   strictly decreases across every peer hop.
//! * **Hedge-winner uniqueness** (`DA625`) — of the two hedge lanes
//!   racing for one strip fetch, exactly one reply is delivered; the
//!   loser is swallowed.
//! * **Backlog bound** (`DA626`) — admission never lets the queue
//!   exceed `--max-backlog`.
//!
//! The script: connection A pipelines four requests — `A1` (heavy:
//! weighted 8 in the DRR scheduler, two service ticks, two peer hops
//! spending deadline budget) then `A2`/`A3`/`A4` (light; `A4`
//! hedged) — while connection B pipelines `B1`/`B2`. Two workers
//! drain the shared FairQueue. Every interleaving of submission,
//! scheduling, service, hops, hedging, shedding and retry is
//! explored by BFS across a grid of worker counts, backlog bounds,
//! DRR weights and hedge delays, so any counterexample trace is
//! minimal.
//!
//! Seeded defects (`analyze/model-defects.txt`, names prefixed
//! `pipe-`) are mutations of the model that must each reproduce as a
//! numbered counterexample — the same self-test discipline as the
//! serial model's defect list. `DA627` flags a `pipe-` defect name
//! the model does not know, or one that fails to reproduce. `DA620`
//! is the exploration summary.

use std::collections::{HashMap, VecDeque};
use std::path::Path;

use crate::finding::{Finding, Severity};
use crate::model;

const PASS: &str = "pipemodel";

/// Requests in the script: index → connection. Index 6 is `A4'`,
/// the hedge lane for `A4` (index 3), racing on connection B.
const CONN: [u8; 7] = [0, 0, 0, 0, 1, 1, 1];
/// Display names used in trace steps.
const NAME: [&str; 7] = ["A1", "A2", "A3", "A4", "B1", "B2", "A4'"];
/// Service ticks per request (A1 is the heavy Execute).
const SVC: [u8; 7] = [2, 1, 1, 1, 1, 1, 1];
/// Peer hops per request (A1 fans out twice).
const HOPS: [u8; 7] = [2, 0, 0, 0, 0, 0, 0];
/// Index of the hedged request and its hedge lane.
const HEDGED: usize = 3;
const HEDGE_LANE: usize = 6;
/// Deadline budget every request starts with.
const DEADLINE: u8 = 4;
/// Per-connection pipelining window (requests in flight at once).
const PIPE_DEPTH: usize = 4;

/// Request phases.
const WAITING: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const HOPPING: u8 = 3;
const DONE: u8 = 4;
const SHED: u8 = 5;

/// Seeded defects: deliberate mutations of the model that must each
/// reproduce as a counterexample.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Defect {
    /// Drop `A2`'s reply on the floor after completion.
    ReplyDrop,
    /// Deliver `A2`'s reply twice.
    ReplyDup,
    /// Never retry shed requests.
    ShedNoRetry,
    /// A peer hop *adds* deadline budget instead of spending it.
    DeadlineInflate,
    /// The losing hedge lane delivers its reply instead of
    /// swallowing it.
    HedgeDoubleDeliver,
    /// Admission ignores `--max-backlog`.
    BacklogIgnored,
}

impl Defect {
    fn parse(name: &str) -> Option<Defect> {
        Some(match name {
            "pipe-reply-drop" => Defect::ReplyDrop,
            "pipe-reply-dup" => Defect::ReplyDup,
            "pipe-shed-no-retry" => Defect::ShedNoRetry,
            "pipe-deadline-inflate" => Defect::DeadlineInflate,
            "pipe-hedge-double-deliver" => Defect::HedgeDoubleDeliver,
            "pipe-backlog-ignored" => Defect::BacklogIgnored,
            _ => return None,
        })
    }
}

/// One model configuration.
#[derive(Clone, Copy)]
struct Cfg {
    workers: usize,
    max_backlog: usize,
    heavy_weight: u8,
    hedge_delay: u8,
    defect: Option<Defect>,
}

/// Per-request dynamic state.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Req {
    phase: u8,
    svc: u8,
    hops: u8,
    deadline: u8,
    attempt: u8,
}

/// The full model state: requests, FairQueue scheduler state,
/// workers, reply ledger, hedge machinery.
#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    req: [Req; 7],
    /// Per-connection FIFO of queued request indices.
    queues: [Vec<u8>; 2],
    /// DRR rotation order over connections with queued jobs.
    order: Vec<u8>,
    /// DRR deficit per connection.
    debt: [u8; 2],
    /// Worker slots: the request each worker is running.
    workers: Vec<Option<u8>>,
    /// Replies delivered per request id (the hedge lane shares id
    /// with its primary and records there).
    replies: [u8; 7],
    hedge_spawned: bool,
    /// Scheduling grants remaining before the hedge lane fires.
    hedge_timer: u8,
}

/// An invariant violation with the step that exposed it.
struct Violation {
    code: &'static str,
    message: String,
}

/// A successor state with the transition's human-readable label.
struct Succ {
    label: String,
    next: State,
    violation: Option<Violation>,
}

/// Exploration result for one configuration.
struct Explored {
    states: usize,
    transitions: usize,
    violation: Option<(Violation, Vec<String>)>,
}

fn initial(cfg: &Cfg) -> State {
    let mk = |i: usize| Req {
        phase: if i == HEDGE_LANE { DONE } else { WAITING },
        svc: SVC[i],
        hops: HOPS[i],
        deadline: DEADLINE,
        attempt: 0,
    };
    State {
        req: [mk(0), mk(1), mk(2), mk(3), mk(4), mk(5), mk(6)],
        queues: [Vec::new(), Vec::new()],
        order: Vec::new(),
        debt: [0, 0],
        workers: vec![None; cfg.workers],
        replies: [0; 7],
        hedge_spawned: false,
        hedge_timer: cfg.hedge_delay,
    }
}

fn weight(cfg: &Cfg, idx: usize) -> u8 {
    if idx == 0 {
        cfg.heavy_weight
    } else {
        1
    }
}

fn qlen(s: &State) -> usize {
    s.queues[0].len() + s.queues[1].len()
}

/// Requests of connection `c` currently in flight (admitted, not yet
/// done or shed) — the client-side pipelining window.
fn in_flight(s: &State, c: u8) -> usize {
    (0..7)
        .filter(|&i| CONN[i] == c && matches!(s.req[i].phase, QUEUED | RUNNING | HOPPING))
        .count()
}

/// Enqueue request `idx` into the FairQueue (no admission check —
/// callers decide). Reports `DA626` when the bound is exceeded.
fn push_job(cfg: &Cfg, s: &mut State, idx: usize) -> Option<Violation> {
    let c = CONN[idx];
    s.queues[c as usize].push(idx as u8);
    if !s.order.contains(&c) {
        s.order.push(c);
    }
    s.req[idx].phase = QUEUED;
    if qlen(s) > cfg.max_backlog {
        return Some(Violation {
            code: "DA626",
            message: format!(
                "backlog bound violated: {} jobs queued with --max-backlog {} — admission let {} in past the bound",
                qlen(s),
                cfg.max_backlog,
                NAME[idx]
            ),
        });
    }
    None
}

/// The engine's DRR dequeue, verbatim in miniature: pay one debt
/// unit and rotate, or take the head job, charge its weight, and
/// drop drained connections from the rotation. Deterministic given
/// the scheduler state.
fn drr_dequeue(cfg: &Cfg, s: &mut State) -> Option<usize> {
    let mut guard = 0usize;
    while !s.order.is_empty() {
        guard += 1;
        if guard > 64 {
            return None; // unreachable; belt and braces for the BFS
        }
        let c = s.order.remove(0);
        if s.debt[c as usize] > 0 {
            s.debt[c as usize] -= 1;
            s.order.push(c);
            continue;
        }
        if s.queues[c as usize].is_empty() {
            continue;
        }
        let idx = s.queues[c as usize].remove(0) as usize;
        s.debt[c as usize] = weight(cfg, idx).saturating_sub(1);
        if !s.queues[c as usize].is_empty() {
            s.order.push(c);
        }
        return Some(idx);
    }
    None
}

/// Deliver (or swallow) the reply for a completed request. Returns
/// the violation when the reply ledger goes wrong plus the label
/// suffix describing what happened.
fn deliver(cfg: &Cfg, s: &mut State, idx: usize) -> (Option<Violation>, &'static str) {
    let primary = if idx == HEDGE_LANE { HEDGED } else { idx };
    let hedge_pair = idx == HEDGE_LANE || (idx == HEDGED && s.hedge_spawned);

    // Seeded reply defects target A2.
    if cfg.defect == Some(Defect::ReplyDrop) && idx == 1 {
        return (None, "reply lost in flight");
    }
    let dup = cfg.defect == Some(Defect::ReplyDup) && idx == 1;

    if hedge_pair && s.replies[primary] >= 1 {
        // The race is already decided: the loser's reply is swallowed
        // by the trace-id match — unless the seeded defect delivers
        // it anyway.
        if cfg.defect == Some(Defect::HedgeDoubleDeliver) {
            s.replies[primary] += 1;
            return (
                Some(Violation {
                    code: "DA625",
                    message: format!(
                        "hedge-winner uniqueness violated: both lanes of {} delivered — the client sees two replies for one trace id",
                        NAME[HEDGED]
                    ),
                }),
                "loser reply delivered",
            );
        }
        return (None, "loser reply swallowed");
    }

    s.replies[primary] += if dup { 2 } else { 1 };
    if s.replies[primary] > 1 {
        return (
            Some(Violation {
                code: "DA622",
                message: format!(
                    "duplicate reply: trace id of {} answered {} times — completion-order reply matching broke",
                    NAME[primary], s.replies[primary]
                ),
            }),
            "duplicate reply delivered",
        );
    }
    (None, "reply delivered")
}

/// Enumerate every successor of `s` under `cfg`.
fn succ(cfg: &Cfg, s: &State) -> Vec<Succ> {
    let mut out = Vec::new();

    // 1. Submission: each connection pipelines its next request,
    //    in order, up to PIPE_DEPTH in flight.
    for c in 0..2u8 {
        let next = (0..7)
            .filter(|&i| i != HEDGE_LANE && CONN[i] == c && s.req[i].phase == WAITING)
            .min();
        if let Some(idx) = next {
            if in_flight(s, c) < PIPE_DEPTH {
                let mut n = s.clone();
                let exceeds = qlen(&n) >= cfg.max_backlog;
                if exceeds && cfg.defect != Some(Defect::BacklogIgnored) {
                    n.req[idx].phase = SHED;
                    out.push(Succ {
                        label: format!("{} shed at admission (backlog full)", NAME[idx]),
                        next: n,
                        violation: None,
                    });
                } else {
                    let v = push_job(cfg, &mut n, idx);
                    out.push(Succ {
                        label: format!(
                            "submit {} (weight {}, {} hops)",
                            NAME[idx],
                            weight(cfg, idx),
                            HOPS[idx]
                        ),
                        next: n,
                        violation: v,
                    });
                }
            }
        }
    }

    // 2. Retry of shed requests once the backlog has drained.
    if cfg.defect != Some(Defect::ShedNoRetry) {
        for idx in 0..7 {
            if s.req[idx].phase == SHED && qlen(s) < cfg.max_backlog {
                let mut n = s.clone();
                n.req[idx].attempt += 1;
                n.req[idx].svc = SVC[idx];
                n.req[idx].hops = HOPS[idx];
                let v = push_job(cfg, &mut n, idx);
                out.push(Succ {
                    label: format!("{} retried after shed", NAME[idx]),
                    next: n,
                    violation: v,
                });
            }
        }
    }

    // 3. Scheduling: an idle worker takes the next DRR grant.
    if !s.order.is_empty() {
        for w in 0..s.workers.len() {
            if s.workers[w].is_some() {
                continue;
            }
            let mut n = s.clone();
            if let Some(idx) = drr_dequeue(cfg, &mut n) {
                n.workers[w] = Some(idx as u8);
                n.req[idx].phase = RUNNING;
                if n.hedge_timer > 0 {
                    n.hedge_timer -= 1;
                }
                out.push(Succ {
                    label: format!("worker {w} dequeues {} (DRR grant)", NAME[idx]),
                    next: n,
                    violation: None,
                });
            }
            break; // idle workers are interchangeable; one suffices
        }
    }

    // 4. Service ticks, peer hops and completion.
    for w in 0..s.workers.len() {
        let Some(idx8) = s.workers[w] else { continue };
        let idx = idx8 as usize;
        let r = s.req[idx];
        match r.phase {
            RUNNING if r.svc > 1 => {
                let mut n = s.clone();
                n.req[idx].svc -= 1;
                out.push(Succ {
                    label: format!("{} computes on worker {w}", NAME[idx]),
                    next: n,
                    violation: None,
                });
            }
            RUNNING if r.hops > 0 => {
                let mut n = s.clone();
                n.req[idx].svc = 0;
                n.req[idx].phase = HOPPING;
                out.push(Succ {
                    label: format!("{} issues a peer fetch (deadline {})", NAME[idx], r.deadline),
                    next: n,
                    violation: None,
                });
            }
            RUNNING => {
                let mut n = s.clone();
                n.req[idx].phase = DONE;
                n.workers[w] = None;
                let (v, what) = deliver(cfg, &mut n, idx);
                out.push(Succ {
                    label: format!("{} completes on worker {w}: {what}", NAME[idx]),
                    next: n,
                    violation: v,
                });
            }
            HOPPING => {
                let mut n = s.clone();
                let old = r.deadline;
                let new = if cfg.defect == Some(Defect::DeadlineInflate) {
                    old + 1
                } else {
                    old.saturating_sub(1)
                };
                let v = if new >= old {
                    Some(Violation {
                        code: "DA624",
                        message: format!(
                            "deadline monotonicity violated on {}: budget {old} → {new} across a peer hop — the downstream peer is granted more time than the client has left",
                            NAME[idx]
                        ),
                    })
                } else {
                    None
                };
                n.req[idx].deadline = new;
                n.req[idx].hops -= 1;
                n.req[idx].svc = 1;
                n.req[idx].phase = RUNNING;
                out.push(Succ {
                    label: format!(
                        "{} peer hop returns (deadline {old}→{new}, {} hops left)",
                        NAME[idx],
                        n.req[idx].hops
                    ),
                    next: n,
                    violation: v,
                });
            }
            _ => {}
        }
    }

    // 5. Hedging: after `hedge_delay` scheduling grants with A4
    //    still unreplied, its hedge lane races on connection B.
    if !s.hedge_spawned
        && s.hedge_timer == 0
        && s.replies[HEDGED] == 0
        && matches!(s.req[HEDGED].phase, QUEUED | RUNNING | HOPPING)
    {
        let mut n = s.clone();
        n.hedge_spawned = true;
        if qlen(&n) >= cfg.max_backlog && cfg.defect != Some(Defect::BacklogIgnored) {
            // The hedge lane is best-effort: shed at admission means
            // no race, the primary carries on alone.
            out.push(Succ {
                label: format!("hedge lane {} shed at admission", NAME[HEDGE_LANE]),
                next: n,
                violation: None,
            });
        } else {
            n.req[HEDGE_LANE].phase = WAITING;
            let v = push_job(cfg, &mut n, HEDGE_LANE);
            out.push(Succ {
                label: format!("hedge lane {} spawned for {}", NAME[HEDGE_LANE], NAME[HEDGED]),
                next: n,
                violation: v,
            });
        }
    }

    out
}

/// Invariant check on a quiescent (successor-free) state.
fn terminal_violation(cfg: &Cfg, s: &State) -> Option<Violation> {
    for (idx, name) in NAME.iter().enumerate().take(6) {
        if s.req[idx].phase == SHED {
            return Some(Violation {
                code: "DA623",
                message: format!(
                    "shed-then-retry liveness violated: {name} was shed and never retried — overload turned into data loss (config: {} workers, backlog {})",
                    cfg.workers, cfg.max_backlog
                ),
            });
        }
        if s.replies[idx] == 0 {
            return Some(Violation {
                code: "DA621",
                message: format!(
                    "lost reply: the session quiesced with no reply ever delivered for {name} — its trace id is orphaned on the client"
                ),
            });
        }
    }
    None
}

/// BFS over the full state space of one configuration. Traces are
/// shortest-path by construction.
fn explore(cfg: &Cfg) -> Explored {
    let init = initial(cfg);
    let mut seen: HashMap<State, Option<(State, String)>> = HashMap::new();
    seen.insert(init.clone(), None);
    let mut queue: VecDeque<State> = VecDeque::from([init]);
    let mut transitions = 0usize;

    let trace_to = |seen: &HashMap<State, Option<(State, String)>>, last: &State, final_label: Option<String>| {
        let mut steps = Vec::new();
        if let Some(l) = final_label {
            steps.push(l);
        }
        let mut cur = last.clone();
        while let Some(Some((parent, label))) = seen.get(&cur) {
            steps.push(label.clone());
            cur = parent.clone();
        }
        steps.reverse();
        steps
    };

    while let Some(s) = queue.pop_front() {
        let succs = succ(cfg, &s);
        if succs.is_empty() {
            if let Some(v) = terminal_violation(cfg, &s) {
                let trace = trace_to(&seen, &s, Some("session quiesces".to_string()));
                return Explored { states: seen.len(), transitions, violation: Some((v, trace)) };
            }
            continue;
        }
        for sc in succs {
            transitions += 1;
            if let Some(v) = sc.violation {
                let trace = trace_to(&seen, &s, Some(sc.label));
                return Explored { states: seen.len(), transitions, violation: Some((v, trace)) };
            }
            if !seen.contains_key(&sc.next) {
                seen.insert(sc.next.clone(), Some((s.clone(), sc.label)));
                queue.push_back(sc.next);
            }
        }
    }
    Explored { states: seen.len(), transitions, violation: None }
}

/// The baseline configuration grid: worker counts × backlog bounds ×
/// DRR weights × hedge delays, all defect-free.
fn grid() -> Vec<Cfg> {
    let mut out = Vec::new();
    for &workers in &[1usize, 2] {
        for &max_backlog in &[1usize, 2, 3] {
            for &heavy_weight in &[8u8, 1] {
                for &hedge_delay in &[1u8, 2] {
                    out.push(Cfg { workers, max_backlog, heavy_weight, hedge_delay, defect: None });
                }
            }
        }
    }
    out
}

/// The configuration used to reproduce seeded defects: small enough
/// to make counterexamples short, contended enough (one worker, a
/// one-slot backlog) that shedding and hedging actually occur.
fn defect_cfg(defect: Defect) -> Cfg {
    Cfg { workers: 1, max_backlog: 1, heavy_weight: 8, hedge_delay: 1, defect: Some(defect) }
}

/// Total states and transitions explored by the defect-free grid —
/// shared with the test asserting the pipelined model dominates the
/// serial one.
#[cfg(test)]
pub(crate) fn baseline_counts() -> (usize, usize) {
    let mut states = 0usize;
    let mut transitions = 0usize;
    for cfg in grid() {
        let e = explore(&cfg);
        states += e.states;
        transitions += e.transitions;
    }
    (states, transitions)
}

fn render_trace(steps: &[String]) -> String {
    steps
        .iter()
        .enumerate()
        .map(|(i, s)| format!("[{}] {}", i + 1, s))
        .collect::<Vec<_>>()
        .join(" → ")
}

/// Run the pipelined-session model checker. `root` is consulted only
/// for `analyze/model-defects.txt`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut states = 0usize;
    let mut transitions = 0usize;
    let configs = grid();
    let n_configs = configs.len();
    for cfg in configs {
        let e = explore(&cfg);
        states += e.states;
        transitions += e.transitions;
        if let Some((v, trace)) = e.violation {
            out.push(Finding::new(
                v.code,
                Severity::Error,
                PASS,
                format!(
                    "pipemodel:workers={},backlog={},weight={},hedge={}",
                    cfg.workers, cfg.max_backlog, cfg.heavy_weight, cfg.hedge_delay
                ),
                format!("{} — counterexample: {}", v.message, render_trace(&trace)),
            ));
        }
    }

    // Seeded defects: every `pipe-` entry must reproduce.
    for name in model::read_defects(root) {
        if !name.starts_with("pipe-") {
            continue; // the serial model's defects
        }
        let Some(defect) = Defect::parse(&name) else {
            out.push(Finding::new(
                "DA627",
                Severity::Warning,
                PASS,
                format!("pipemodel-defect:{name}"),
                "unknown pipelined-model defect name — the defect list drifted from the model"
                    .to_string(),
            ));
            continue;
        };
        let e = explore(&defect_cfg(defect));
        match e.violation {
            Some((v, trace)) => {
                out.push(Finding::new(
                    v.code,
                    Severity::Error,
                    PASS,
                    format!("pipemodel-defect:{name}"),
                    format!(
                        "seeded defect reproduced: {} — counterexample: {}",
                        v.message,
                        render_trace(&trace)
                    ),
                ));
            }
            None => {
                out.push(Finding::new(
                    "DA627",
                    Severity::Warning,
                    PASS,
                    format!("pipemodel-defect:{name}"),
                    "seeded defect produced no counterexample — the model no longer detects it"
                        .to_string(),
                ));
            }
        }
    }

    out.push(Finding::new(
        "DA620",
        Severity::Info,
        PASS,
        "pipemodel",
        format!(
            "explored {states} states / {transitions} transitions across {n_configs} pipelined configurations (4-deep pipelining, DRR weights, admission, deadlines, hedging); all invariants hold"
        ),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_grid_is_violation_free() {
        for cfg in grid() {
            let e = explore(&cfg);
            assert!(
                e.violation.is_none(),
                "workers={} backlog={} weight={} hedge={}: {:?}",
                cfg.workers,
                cfg.max_backlog,
                cfg.heavy_weight,
                cfg.hedge_delay,
                e.violation.map(|(v, t)| format!("{}: {} @ {}", v.code, v.message, t.join(" → ")))
            );
            assert!(e.states > 100, "degenerate exploration: {} states", e.states);
        }
    }

    #[test]
    fn every_seeded_defect_reproduces_with_its_code() {
        let cases = [
            (Defect::ReplyDrop, "DA621"),
            (Defect::ReplyDup, "DA622"),
            (Defect::ShedNoRetry, "DA623"),
            (Defect::DeadlineInflate, "DA624"),
            (Defect::HedgeDoubleDeliver, "DA625"),
            (Defect::BacklogIgnored, "DA626"),
        ];
        for (defect, code) in cases {
            let e = explore(&defect_cfg(defect));
            let (v, trace) = e.violation.unwrap_or_else(|| panic!("{code} did not reproduce"));
            assert_eq!(v.code, code, "{}", v.message);
            assert!(!trace.is_empty());
        }
    }

    #[test]
    fn counterexample_traces_are_minimal_prefixes() {
        // The deadline defect must reproduce on A1's *first* hop: the
        // trace ends on the hop step and is a straight-line prefix.
        let e = explore(&defect_cfg(Defect::DeadlineInflate));
        let (v, trace) = e.violation.expect("must reproduce");
        assert_eq!(v.code, "DA624");
        assert!(trace.last().unwrap().contains("peer hop"), "{trace:?}");
        assert!(trace.len() <= 8, "not minimal: {trace:?}");
    }

    #[test]
    fn pipelined_model_explores_at_least_the_serial_model() {
        let (pipe_states, _) = baseline_counts();
        let (serial_states, _) = model::baseline_counts();
        assert!(
            pipe_states >= serial_states,
            "pipelined model explores {pipe_states} states, serial explores {serial_states}"
        );
    }

    #[test]
    fn unknown_pipe_defect_is_da627() {
        let dir = std::env::temp_dir().join(format!(
            "das-pipemodel-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("analyze")).unwrap();
        std::fs::write(
            dir.join("analyze/model-defects.txt"),
            "pipe-no-such-defect\npipe-reply-drop\ncreate-file-dup-id\n",
        )
        .unwrap();
        let out = run(&dir);
        std::fs::remove_dir_all(&dir).ok();
        assert!(out.iter().any(|f| f.code == "DA627"), "{out:?}");
        assert!(out.iter().any(|f| f.code == "DA621"), "known defect reproduces: {out:?}");
        // The serial model's defect names are not this pass's
        // business.
        assert!(!out.iter().any(|f| f.entity.contains("create-file-dup-id")), "{out:?}");
    }
}
