//! The finding model shared by every analysis pass: a typed code, a
//! severity, an entity anchor (`file:line` or a logical entity like a
//! kernel name or opcode), and a human-readable message. Findings are
//! machine-readable — the CLI renders them as aligned text or JSON
//! lines — and drive the exit code in `--deny` mode.

use std::fmt;

/// How bad a finding is.
///
/// * [`Severity::Info`] — a proof or a summary the pass wants on the
///   record (an acyclic fetch graph, a canonical fetch order). Never
///   fails a build.
/// * [`Severity::Warning`] — a smell that deserves a look (a dead
///   descriptor that can never be offloaded). Fails `--deny`.
/// * [`Severity::Error`] — a correctness hazard (descriptor drift, a
///   protocol/doc mismatch, an unwrap on a request path). Fails
///   `--deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: proofs, summaries, canonical orders.
    Info,
    /// Suspicious but not provably wrong.
    Warning,
    /// A correctness hazard; `--deny` fails the build.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable finding code (`DA101`…); `docs/ANALYSIS.md` is the
    /// registry.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// The pass that produced it (`descriptors`, `protocol`,
    /// `fetchgraph`, `lints`).
    pub pass: &'static str,
    /// What the finding is about: `file:line` for source-anchored
    /// findings, otherwise a logical entity (kernel name, opcode,
    /// deployment name).
    pub entity: String,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Build a finding.
    pub fn new(
        code: &'static str,
        severity: Severity,
        pass: &'static str,
        entity: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Finding { code, severity, pass, entity: entity.into(), message: message.into() }
    }

    /// Render as one JSON object (hand-rolled: the workspace is
    /// dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"pass\":\"{}\",\"entity\":{},\"message\":{}}}",
            self.code,
            self.severity.label(),
            self.pass,
            json_string(&self.entity),
            json_string(&self.message),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:7} {} [{}] {}: {}",
            self.severity.label(),
            self.code,
            self.pass,
            self.entity,
            self.message
        )
    }
}

/// Escape a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The result of running one or more passes.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, in pass order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// The most severe finding present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Whether `--deny` should fail: any warning- or error-level
    /// finding.
    pub fn denied(&self) -> bool {
        self.worst().is_some_and(|s| s >= Severity::Warning)
    }

    /// Findings at or above `min`.
    pub fn at_least(&self, min: Severity) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.severity >= min)
    }

    /// Count findings per severity: `(info, warning, error)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for f in &self.findings {
            match f.severity {
                Severity::Info => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Error => c.2 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_denies() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        let mut r = Report::default();
        assert!(!r.denied());
        r.findings.push(Finding::new("DA303", Severity::Info, "fetchgraph", "x", "ok"));
        assert!(!r.denied());
        assert_eq!(r.worst(), Some(Severity::Info));
        r.findings.push(Finding::new("DA108", Severity::Warning, "descriptors", "k", "dead"));
        assert!(r.denied());
        assert_eq!(r.counts(), (1, 1, 0));
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        let f = Finding::new("DA101", Severity::Error, "descriptors", "f:1", "bad \"x\"");
        let j = f.to_json();
        assert!(j.contains("\\\"x\\\""), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
