//! A dependency-free Rust tokenizer and item extractor — the
//! syntactic substrate of the source-level passes.
//!
//! The line-based lints of PR 4 had a structural false-positive
//! class: a string literal containing `.unwrap()`, a `//` comment
//! containing `eprintln!`, or a `#[cfg(test)]` module whose body
//! contains a brace inside a string all confused the per-line
//! heuristics. This module lexes source into a real token stream
//! (string/char/raw-string literals are single tokens, comments are
//! trivia on the side) and recovers just enough structure — `fn`
//! items with brace-balanced bodies, attributes, `#[cfg(test)]`
//! regions — for the lint, taint and lock-graph passes to reason on
//! tokens instead of lines.
//!
//! Design constraints:
//!
//! * **Total.** [`lex`] never panics, whatever the input: an
//!   unterminated string or comment consumes to end of input and the
//!   stream stays well-formed. The tokenizer property tests throw
//!   mutated and truncated inputs at it.
//! * **Reprint-stable.** [`reprint`] renders a token stream back to
//!   text (one space between tokens, newlines preserved by line
//!   number); lexing the reprint yields the same kinds and texts —
//!   the lex→reprint→relex fixpoint the property tests assert.
//!   Punctuation is lexed one character at a time, which makes the
//!   fixpoint trivially stable (`<<` and `< <` are the same stream).

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `lock`, `unwrap`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — the quote is part of the text.
    Lifetime,
    /// Numeric literal, suffix included (`42`, `0x1F`, `1.5e3f64`).
    Num,
    /// String-like literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"` — one
    /// token, escapes and all.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// One punctuation character (`.`, `{`, `!`, …).
    Punct,
    /// A byte the lexer could not classify (stray `\u{7f}`, an
    /// unterminated quote's remainder, …). Kept in the stream so
    /// downstream passes see *something* rather than silently
    /// skipping bytes.
    Unknown,
}

/// One lexed token: kind, verbatim text, and the 1-based line it
/// starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// The token's exact source text.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// A comment, kept out of the token stream but retained for waiver
/// lookup (`// das-lint: allow(CODE)` lives in comments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in order. Comments and whitespace are excluded.
    pub tokens: Vec<Token>,
    /// Comment trivia, in order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Whether any comment on `line` or the line directly above
    /// carries the waiver token `das-lint: allow(<code>)`.
    pub fn waived(&self, line: u32, code: &str) -> bool {
        let token = format!("das-lint: allow({code})");
        self.comments
            .iter()
            .any(|c| (c.line == line || c.line + 1 == line) && c.text.contains(&token))
    }

    /// Every waiver in the comment trivia as `(comment line, code)`
    /// pairs — one per `das-lint: allow(CODE)` occurrence. Fuel for
    /// the stale-waiver lint (`DA430`): a pass that knows which of
    /// its waivers actually fired can flag the ones that suppressed
    /// nothing.
    pub fn waivers(&self) -> Vec<(u32, String)> {
        const NEEDLE: &str = "das-lint: allow(";
        let mut out = Vec::new();
        for c in &self.comments {
            let mut rest = c.text.as_str();
            while let Some(p) = rest.find(NEEDLE) {
                let tail = &rest[p + NEEDLE.len()..];
                let Some(end) = tail.find(')') else { break };
                let code = &tail[..end];
                if code.starts_with("DA") && code.len() > 2 {
                    out.push((c.line, code.to_string()));
                }
                rest = &tail[end..];
            }
        }
        out
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comment trivia. Never panics; malformed
/// input degrades to [`TokKind::Unknown`] tokens or literals that run
/// to end of input.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    // Count newlines in b[from..to] into `line`.
    let bump = |line: &mut u32, b: &[char], from: usize, to: usize| {
        *line += b[from..to.min(b.len())].iter().filter(|&&c| c == '\n').count() as u32;
    };

    while i < n {
        let c = b[i];
        let start_line = line;
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments
                .push(Comment { line: start_line, text: b[start..i].iter().collect() });
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            i += 2;
            let mut depth = 1u32;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            bump(&mut line, &b, start, i);
            out.comments
                .push(Comment { line: start_line, text: b[start..i].iter().collect() });
            continue;
        }
        // Raw / byte strings: r"…", r#"…"#, b"…", br#"…"#, brb? no.
        if (c == 'r' || c == 'b') && raw_or_byte_string_start(&b, i) {
            let (end, _terminated) = scan_string_like(&b, i);
            bump(&mut line, &b, i, end);
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: b[i..end].iter().collect(),
                line: start_line,
            });
            i = end;
            continue;
        }
        // Byte char b'x'.
        if c == 'b' && i + 1 < n && b[i + 1] == '\'' {
            let end = scan_char(&b, i + 1);
            out.tokens.push(Token {
                kind: TokKind::Char,
                text: b[i..end].iter().collect(),
                line: start_line,
            });
            bump(&mut line, &b, i, end);
            i = end;
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let end = scan_number(&b, i);
            out.tokens.push(Token {
                kind: TokKind::Num,
                text: b[i..end].iter().collect(),
                line: start_line,
            });
            i = end;
            continue;
        }
        // Plain strings.
        if c == '"' {
            let (end, _terminated) = scan_plain_string(&b, i);
            bump(&mut line, &b, i, end);
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: b[i..end].iter().collect(),
                line: start_line,
            });
            i = end;
            continue;
        }
        // Quote: lifetime or char literal.
        if c == '\'' {
            // Lifetime: 'ident NOT followed by a closing quote.
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j >= n || b[j] != '\'' {
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: b[i..j].iter().collect(),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
            }
            let end = scan_char(&b, i);
            bump(&mut line, &b, i, end);
            out.tokens.push(Token {
                kind: TokKind::Char,
                text: b[i..end].iter().collect(),
                line: start_line,
            });
            i = end;
            continue;
        }
        // Punctuation: one character at a time (reprint-stable).
        if c.is_ascii_punctuation() {
            out.tokens.push(Token { kind: TokKind::Punct, text: c.to_string(), line: start_line });
            i += 1;
            continue;
        }
        // Anything else.
        out.tokens.push(Token { kind: TokKind::Unknown, text: c.to_string(), line: start_line });
        i += 1;
    }
    out
}

/// Whether position `i` (at `r` or `b`) starts a raw or byte string:
/// `r"`, `r#`, `b"`, `br"`, `br#`, `rb` is not a thing.
fn raw_or_byte_string_start(b: &[char], i: usize) -> bool {
    let n = b.len();
    match b[i] {
        'r' => i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#'),
        'b' => {
            (i + 1 < n && b[i + 1] == '"')
                || (i + 2 < n && b[i + 1] == 'r' && (b[i + 2] == '"' || b[i + 2] == '#'))
        }
        _ => false,
    }
}

/// Scan a string-like literal starting at `i` (on `r`, `b` or `"`).
/// Returns (end index, terminated?). Handles raw-string `#` fences
/// and escape sequences; an unterminated literal runs to end of
/// input.
fn scan_string_like(b: &[char], i: usize) -> (usize, bool) {
    let n = b.len();
    let mut j = i;
    // Skip the b / r / br introducer.
    while j < n && (b[j] == 'b' || b[j] == 'r') {
        j += 1;
    }
    let raw = j > i && b[i..j].contains(&'r');
    // Count raw-string fence hashes.
    let mut hashes = 0usize;
    while raw && j < n && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || b[j] != '"' {
        // Not actually a string (e.g. `r#` of a raw identifier
        // `r#type`): treat introducer as done; caller falls back.
        // We still scan as best we can from the quote if present.
        return (j, false);
    }
    j += 1; // opening quote
    while j < n {
        if !raw && b[j] == '\\' {
            j += 2;
            continue;
        }
        if b[j] == '"' {
            // A raw string needs `hashes` following '#'s to close.
            let mut k = 0usize;
            while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return (j + 1 + hashes, true);
            }
        }
        j += 1;
    }
    (n, false)
}

/// Scan a plain `"…"` literal starting at the quote.
fn scan_plain_string(b: &[char], i: usize) -> (usize, bool) {
    let n = b.len();
    let mut j = i + 1;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '"' => return (j + 1, true),
            _ => j += 1,
        }
    }
    (n, false)
}

/// Scan a char/byte-char literal starting at the opening quote.
/// Bounded lookahead: a char literal holds at most one (possibly
/// escaped) character; give up (returning what was consumed) rather
/// than scanning to end of file on a stray quote.
fn scan_char(b: &[char], i: usize) -> usize {
    let n = b.len();
    let mut j = i + 1;
    if j < n && b[j] == '\\' {
        j += 2;
        // \u{…} escapes.
        if j <= n && j >= 1 && j - 1 < n && b[j - 1] == '{' {
            while j < n && b[j] != '}' {
                j += 1;
            }
            j += 1;
        }
    } else if j < n {
        j += 1;
    }
    if j < n && b[j] == '\'' {
        return j + 1;
    }
    // Unterminated or not really a char literal: consume just the
    // quote as an Unknown-ish char token of length 1.
    i + 1
}

/// Scan a numeric literal (ints, floats, hex/oct/bin, exponents,
/// suffixes, underscores). `.` is consumed only when followed by a
/// digit, so `1..2` lexes as `1`, `.`, `.`, `2`.
fn scan_number(b: &[char], i: usize) -> usize {
    let n = b.len();
    let mut j = i;
    let radix_prefix = j + 1 < n && b[j] == '0' && matches!(b[j + 1], 'x' | 'o' | 'b' | 'X' | 'O' | 'B');
    if radix_prefix {
        j += 2;
        while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        return j;
    }
    while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
        j += 1;
    }
    // Fractional part.
    if j + 1 < n && b[j] == '.' && b[j + 1].is_ascii_digit() {
        j += 1;
        while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
            j += 1;
        }
    }
    // Exponent.
    if j < n && (b[j] == 'e' || b[j] == 'E') {
        let mut k = j + 1;
        if k < n && (b[k] == '+' || b[k] == '-') {
            k += 1;
        }
        if k < n && b[k].is_ascii_digit() {
            j = k;
            while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix (u8, f64, usize, …).
    while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    j
}

/// Render a token stream back to text: tokens joined by single
/// spaces, with newlines inserted when the line number advances so
/// line anchors survive a reprint. Comments are trivia and are not
/// reprinted.
pub fn reprint(tokens: &[Token]) -> String {
    let mut out = String::new();
    let mut line = 1u32;
    for t in tokens {
        if t.line > line {
            for _ in line..t.line {
                out.push('\n');
            }
            line = t.line;
        } else if !out.is_empty() && !out.ends_with('\n') {
            out.push(' ');
        }
        out.push_str(&t.text);
        line += t.text.matches('\n').count() as u32;
    }
    out
}

/// A `fn` item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body **between** (exclusive of) the
    /// outer braces. Empty for braceless (`;`-terminated) signatures.
    pub body: std::ops::Range<usize>,
    /// Whether the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Per-token mask: `true` where the token is inside a `#[cfg(test)]`
/// item (the attribute itself, the item's tokens, and everything
/// nested in its braces). Brace balance is computed on *tokens*, so
/// braces inside strings, chars and comments cannot desynchronize it
/// — the exact false-positive class the old line heuristic had.
pub fn test_mask(lx: &Lexed) -> Vec<bool> {
    let toks = &lx.tokens;
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct && toks[i].text == "#" && is_cfg_test_attr(toks, i) {
            // Mark the attribute and the item it decorates.
            let attr_end = match matching(toks, i + 1, "[", "]") {
                Some(e) => e,
                None => {
                    i += 1;
                    continue;
                }
            };
            let item_end = item_end_after_attrs(toks, attr_end + 1);
            for m in mask.iter_mut().take(item_end.min(toks.len())).skip(i) {
                *m = true;
            }
            i = item_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Whether the `#` at token index `i` opens a `#[cfg(test)]` (or
/// `#[cfg(all(test, …))]`-style) attribute.
fn is_cfg_test_attr(toks: &[Token], i: usize) -> bool {
    // Expect `#` `[` cfg `(` … test … `)` `]`.
    if toks.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
        return false;
    }
    if toks.get(i + 2).map(|t| t.text.as_str()) != Some("cfg") {
        return false;
    }
    let Some(end) = matching(toks, i + 1, "[", "]") else {
        return false;
    };
    toks[i + 2..end].iter().any(|t| t.kind == TokKind::Ident && t.text == "test")
}

/// Index of the matching closer for the opener at `open_idx` (whose
/// text must be `open`). `None` when unbalanced.
pub(crate) fn matching(toks: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    if toks.get(open_idx).map(|t| t.text.as_str()) != Some(open) {
        return None;
    }
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

/// Given the index just past an attribute, find the index just past
/// the decorated item: further attributes are skipped, then the item
/// runs to its matching `}` (brace items) or its `;` (braceless
/// items like `use` / `mod x;`).
fn item_end_after_attrs(toks: &[Token], mut i: usize) -> usize {
    let n = toks.len();
    // Skip any further attributes.
    while i < n && toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
        match matching(toks, i + 1, "[", "]") {
            Some(e) => i = e + 1,
            None => return n,
        }
    }
    // Scan forward to the first `{` or `;` at depth 0 of `(<>)`-ish
    // nesting; parens and brackets can hold braces only in
    // expressions (const generics etc.), which attributes rarely
    // decorate — a `{` seen first is the item body.
    let mut j = i;
    while j < n {
        match toks[j].text.as_str() {
            ";" => return j + 1,
            "{" => return matching(toks, j, "{", "}").map_or(n, |e| e + 1),
            _ => j += 1,
        }
    }
    n
}

/// Extract every `fn` item (free functions and methods alike) with
/// its body token range and test-region flag.
pub fn extract_fns(lx: &Lexed) -> Vec<FnItem> {
    let toks = &lx.tokens;
    let in_test = test_mask(lx);
    let mut out = Vec::new();
    let mut i = 0usize;
    let n = toks.len();
    while i < n {
        let t = &toks[i];
        if !(t.kind == TokKind::Ident && t.text == "fn") {
            i += 1;
            continue;
        }
        // `fn` in `extern "C" fn`-typed positions without a name is
        // rare in this workspace; require an ident name.
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Find the body: first `{` before a terminating `;` at
        // signature level. Track `(`/`[`/`<`? Generic angle brackets
        // don't nest braces in signatures we care about; scanning for
        // the first `{` or `;` is sufficient here because where-bound
        // closures in signatures don't occur in this workspace.
        let mut j = i + 2;
        let mut body = 0..0;
        // A `;` terminates the signature only at paren/bracket depth
        // zero — `fn f(hdr: [u8; 4])` carries one inside its type.
        let mut depth = 0i64;
        while j < n {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => {
                    j += 1;
                    break;
                }
                "{" => {
                    let end = matching(toks, j, "{", "}").unwrap_or(n);
                    body = j + 1..end;
                    j = end + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        out.push(FnItem {
            name: name_tok.text.clone(),
            line: t.line,
            body,
            in_test: in_test.get(i).copied().unwrap_or(false),
        });
        i = j.max(i + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn literals_are_single_tokens() {
        let toks = kinds(r#"let s = "call .unwrap() for fun"; x"#);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t.contains(".unwrap()")));
        // The unwrap inside the string is NOT an Ident token.
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn comments_are_trivia_with_lines() {
        let lx = lex("a // eprintln! in a comment\nb /* block\nspanning */ c");
        let idents: Vec<&str> = lx.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, ["a", "b", "c"]);
        assert_eq!(lx.comments.len(), 2);
        assert_eq!(lx.comments[0].line, 1);
        assert_eq!(lx.comments[1].line, 2);
        assert_eq!(lx.tokens[2].line, 3, "line count survives block comments");
    }

    #[test]
    fn raw_and_byte_strings_lex_whole() {
        let toks = kinds(r##"r#"a "quoted" b"# b"bytes" br#"raw }"# 'x' '\n' 'a"##);
        let strs: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Str).map(|(_, t)| t.as_str()).collect();
        assert_eq!(strs.len(), 3, "{toks:?}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = kinds("for i in 1..20 { 0x1F 1.5e3f64 }");
        let nums: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Num).map(|(_, t)| t.as_str()).collect();
        assert_eq!(nums, ["1", "20", "0x1F", "1.5e3f64"]);
    }

    #[test]
    fn waivers_resolve_from_comment_trivia() {
        let lx = lex("// das-lint: allow(DA401)\nx.unwrap();\ny.unwrap();");
        assert!(lx.waived(2, "DA401"));
        assert!(!lx.waived(3, "DA401"));
        assert!(!lx.waived(2, "DA402"));
    }

    #[test]
    fn waiver_enumeration_lists_every_allow() {
        let lx = lex(
            "// das-lint: allow(DA401) reason\nx();\n/* das-lint: allow(DA502) */ y();\n// a plain comment\n",
        );
        assert_eq!(lx.waivers(), vec![(1, "DA401".to_string()), (3, "DA502".to_string())]);
    }

    #[test]
    fn test_mask_survives_braces_in_strings() {
        let src = "#[cfg(test)]\nmod tests {\n    const B: &str = \"}\";\n    fn t() { x.unwrap(); }\n}\nfn live() { y.unwrap(); }\n";
        let lx = lex(src);
        let mask = test_mask(&lx);
        // Every token of the test mod is masked; `live`'s body is not.
        for (t, m) in lx.tokens.iter().zip(&mask) {
            if t.text == "live" {
                assert!(!m, "live fn wrongly masked");
            }
            if t.text == "t" {
                assert!(m, "test fn not masked");
            }
        }
        let fns = extract_fns(&lx);
        assert_eq!(fns.len(), 2);
        assert!(fns.iter().any(|f| f.name == "t" && f.in_test));
        assert!(fns.iter().any(|f| f.name == "live" && !f.in_test));
    }

    #[test]
    fn extract_fns_recovers_bodies_and_lines() {
        let src = "fn a(x: u32) -> u32 { x + 1 }\nimpl T {\n    fn b(&self) { self.c(); }\n}\ntrait Q { fn sig(&self); }\n";
        let lx = lex(src);
        let fns = extract_fns(&lx);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "sig"]);
        assert_eq!(fns[0].line, 1);
        assert_eq!(fns[1].line, 3);
        assert!(fns[2].body.is_empty(), "braceless signature has no body");
        // Body range of `b` covers the self.c() call.
        let body: Vec<&str> =
            lx.tokens[fns[1].body.clone()].iter().map(|t| t.text.as_str()).collect();
        assert!(body.contains(&"c"), "{body:?}");
    }

    #[test]
    fn reprint_relex_fixpoint_on_tricky_input() {
        let src = "fn f<'a>(x: &'a [u8]) -> Vec<Vec<u8>> {\n    let s = \"}\"; // brace in string\n    let r = r#\"raw \" quote\"#;\n    if x.len() > 1..2 { y << 3 } else { 'q' }\n}\n";
        let first = lex(src);
        let printed = reprint(&first.tokens);
        let second = lex(&printed);
        let a: Vec<(TokKind, &str)> =
            first.tokens.iter().map(|t| (t.kind, t.text.as_str())).collect();
        let b: Vec<(TokKind, &str)> =
            second.tokens.iter().map(|t| (t.kind, t.text.as_str())).collect();
        assert_eq!(a, b);
        // Line numbers survive too (reprint inserts newlines).
        for (x, y) in first.tokens.iter().zip(second.tokens.iter()) {
            assert_eq!(x.line, y.line, "line drift at {:?}", x.text);
        }
    }

    #[test]
    fn unterminated_input_does_not_panic() {
        for src in ["\"unterminated", "r#\"open", "/* open comment", "'", "b'", "0x", "#["] {
            let _ = lex(src); // must not panic
        }
    }
}
