//! Pass 1 — descriptor validation (`descriptors/`).
//!
//! Finding codes:
//!
//! * `DA101` (error) — a descriptor file fails to parse.
//! * `DA102` (error) — an offset is not affine in `imgWidth`
//!   (`a·imgWidth + b`): it cannot describe a fixed stencil and the
//!   symbolic checks cannot reason about it.
//! * `DA103` (warning) — a kernel lists the same offset twice.
//! * `DA104` (warning) — a kernel lists offset `0` (an element
//!   "depends" on itself; every implementation reads its own element
//!   anyway, so this only inflates the predicted cost).
//! * `DA105` (error) — a kernel present in one of `kernels.txt` /
//!   `kernels.xml` is missing from the other.
//! * `DA106` (error) — the txt and XML forms disagree on a shared
//!   kernel's dependence pattern.
//! * `DA107` (warning) — a deployment in `layouts.txt` uses grouped
//!   replication whose radius (always one strip ring) does not cover
//!   the kernel's stencil reach: the layout silently pays peer
//!   fetches it was chosen to eliminate.
//! * `DA108` (warning) — a "dead" descriptor: the paper's Eqs. 1–13
//!   decision rejects offloading in every cell of a
//!   (D, strip, r, policy) grid, so the descriptor can never be
//!   offloaded on any supported layout.
//! * `DA109` (error) — `descriptors/kernels.txt` drifts from the
//!   compiled-in copy (`das_core::features::BUILTIN_DESCRIPTORS`).
//! * `DA110` (error) — `descriptors/layouts.txt` fails to parse or
//!   references unknown kernels / inconsistent geometry.

use std::path::Path;

use das_core::features::{KernelFeatures, BUILTIN_DESCRIPTORS};
use das_core::{decide, parse_kernel_xml, DecisionInput, PlanOptions, StripingParams};
use das_pfs::{DistributionInfo, Layout, LayoutPolicy, StripId};

use crate::finding::{Finding, Severity};

const PASS: &str = "descriptors";

/// Widths used to compare non-affine dependence patterns (affine ones
/// are compared symbolically, which covers every width at once).
const SAMPLE_WIDTHS: [u64; 3] = [16, 100, 2048];

/// Run the pass against `root`. A repository without a `descriptors/`
/// directory produces no findings.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let dir = root.join("descriptors");
    if !dir.is_dir() {
        return out;
    }

    let txt_rel = "descriptors/kernels.txt";
    let txt = read_descriptor_text(&dir.join("kernels.txt"), txt_rel, &mut out);
    if let Some(records) = &txt {
        for (line, rec) in records {
            check_offsets(rec, &format!("{txt_rel}:{line}"), &mut out);
        }
        check_builtin_drift(records, txt_rel, &mut out);
    }

    let xml_rel = "descriptors/kernels.xml";
    let xml_path = dir.join("kernels.xml");
    let xml = if xml_path.is_file() {
        read_descriptor_xml(&xml_path, xml_rel, &mut out)
    } else {
        None
    };
    if let (Some(txt_records), Some(xml_records)) = (&txt, &xml) {
        cross_check(txt_records, xml_records, txt_rel, xml_rel, &mut out);
    }

    if let Some(records) = &txt {
        let layouts_path = dir.join("layouts.txt");
        if layouts_path.is_file() {
            check_layout_manifest(&layouts_path, records, &mut out);
        }
        for (line, rec) in records {
            check_dead_descriptor(rec, &format!("{txt_rel}:{line}"), &mut out);
        }
        out.push(Finding::new(
            "DA100",
            Severity::Info,
            PASS,
            txt_rel,
            format!(
                "{} kernel descriptors validated (symbolic offsets, txt/XML agreement, decision grid)",
                records.len()
            ),
        ));
    }
    out
}

fn read_descriptor_text(
    path: &Path,
    rel: &str,
    out: &mut Vec<Finding>,
) -> Option<Vec<(usize, KernelFeatures)>> {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            out.push(Finding::new(
                "DA101",
                Severity::Error,
                PASS,
                rel,
                format!("cannot read descriptor file: {e}"),
            ));
            return None;
        }
    };
    match KernelFeatures::parse_text_with_lines(&src) {
        Ok(records) => Some(records),
        Err(e) => {
            out.push(Finding::new(
                "DA101",
                Severity::Error,
                PASS,
                rel,
                format!("descriptor parse failed: {e}"),
            ));
            None
        }
    }
}

fn read_descriptor_xml(path: &Path, rel: &str, out: &mut Vec<Finding>) -> Option<Vec<KernelFeatures>> {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            out.push(Finding::new(
                "DA101",
                Severity::Error,
                PASS,
                rel,
                format!("cannot read descriptor file: {e}"),
            ));
            return None;
        }
    };
    match parse_kernel_xml(&src) {
        Ok(records) => Some(records),
        Err(e) => {
            out.push(Finding::new(
                "DA101",
                Severity::Error,
                PASS,
                rel,
                format!("descriptor parse failed: {e}"),
            ));
            None
        }
    }
}

/// Per-offset symbolic checks: affine form (DA102), duplicates
/// (DA103), self-dependence (DA104).
fn check_offsets(rec: &KernelFeatures, entity: &str, out: &mut Vec<Finding>) {
    let mut seen: Vec<(i64, i64)> = Vec::new();
    for expr in &rec.dependence {
        match expr.affine() {
            None => out.push(Finding::new(
                "DA102",
                Severity::Error,
                PASS,
                entity,
                format!(
                    "kernel {:?}: offset `{expr}` is not affine in imgWidth — it cannot describe a fixed stencil",
                    rec.name
                ),
            )),
            Some(ab) => {
                if ab == (0, 0) {
                    out.push(Finding::new(
                        "DA104",
                        Severity::Warning,
                        PASS,
                        entity,
                        format!(
                            "kernel {:?}: offset `{expr}` is 0 (self-dependence) — it only inflates predicted cost",
                            rec.name
                        ),
                    ));
                }
                if seen.contains(&ab) {
                    out.push(Finding::new(
                        "DA103",
                        Severity::Warning,
                        PASS,
                        entity,
                        format!(
                            "kernel {:?}: offset `{expr}` duplicates an earlier offset ({}·imgWidth{:+})",
                            rec.name, ab.0, ab.1
                        ),
                    ));
                }
                seen.push(ab);
            }
        }
    }
}

/// Canonical comparable form of a dependence pattern: the sorted
/// affine forms when every offset is affine (symbolic — covers every
/// width), otherwise the sorted concrete offsets at each sample
/// width.
fn pattern_key(rec: &KernelFeatures) -> Result<Vec<(i64, i64)>, Vec<Vec<i64>>> {
    let mut affine = Vec::with_capacity(rec.dependence.len());
    for e in &rec.dependence {
        match e.affine() {
            Some(ab) => affine.push(ab),
            None => {
                return Err(SAMPLE_WIDTHS
                    .iter()
                    .map(|&w| {
                        let mut v = rec.offsets(w);
                        v.sort_unstable();
                        v
                    })
                    .collect())
            }
        }
    }
    affine.sort_unstable();
    Ok(affine)
}

fn patterns_agree(a: &KernelFeatures, b: &KernelFeatures) -> bool {
    pattern_key(a) == pattern_key(b)
}

fn cross_check(
    txt: &[(usize, KernelFeatures)],
    xml: &[KernelFeatures],
    txt_rel: &str,
    xml_rel: &str,
    out: &mut Vec<Finding>,
) {
    for (line, rec) in txt {
        match xml.iter().find(|x| x.name == rec.name) {
            None => out.push(Finding::new(
                "DA105",
                Severity::Error,
                PASS,
                format!("{txt_rel}:{line}"),
                format!("kernel {:?} is in {txt_rel} but missing from {xml_rel}", rec.name),
            )),
            Some(x) if !patterns_agree(rec, x) => out.push(Finding::new(
                "DA106",
                Severity::Error,
                PASS,
                format!("{txt_rel}:{line}"),
                format!(
                    "kernel {:?}: {txt_rel} and {xml_rel} declare different dependence patterns",
                    rec.name
                ),
            )),
            Some(_) => {}
        }
    }
    for x in xml {
        if !txt.iter().any(|(_, rec)| rec.name == x.name) {
            out.push(Finding::new(
                "DA105",
                Severity::Error,
                PASS,
                xml_rel,
                format!("kernel {:?} is in {xml_rel} but missing from {txt_rel}", x.name),
            ));
        }
    }
}

/// The shipped `descriptors/kernels.txt` must match the compiled-in
/// registry byte-for-byte in *meaning* — same kernels, same patterns.
fn check_builtin_drift(txt: &[(usize, KernelFeatures)], txt_rel: &str, out: &mut Vec<Finding>) {
    let builtin = match KernelFeatures::parse_text(BUILTIN_DESCRIPTORS) {
        Ok(b) => b,
        Err(e) => {
            out.push(Finding::new(
                "DA109",
                Severity::Error,
                PASS,
                "das_core::features::BUILTIN_DESCRIPTORS",
                format!("compiled-in descriptors fail to parse: {e}"),
            ));
            return;
        }
    };
    for b in &builtin {
        match txt.iter().find(|(_, rec)| rec.name == b.name) {
            None => out.push(Finding::new(
                "DA109",
                Severity::Error,
                PASS,
                txt_rel,
                format!("built-in kernel {:?} is missing from {txt_rel}", b.name),
            )),
            Some((line, rec)) if !patterns_agree(rec, b) => out.push(Finding::new(
                "DA109",
                Severity::Error,
                PASS,
                format!("{txt_rel}:{line}"),
                format!(
                    "kernel {:?} drifted from the compiled-in copy (das_core::features::BUILTIN_DESCRIPTORS)",
                    b.name
                ),
            )),
            Some(_) => {}
        }
    }
    for (line, rec) in txt {
        if !builtin.iter().any(|b| b.name == rec.name) {
            out.push(Finding::new(
                "DA109",
                Severity::Error,
                PASS,
                format!("{txt_rel}:{line}"),
                format!(
                    "kernel {:?} has no compiled-in counterpart — add it to BUILTIN_DESCRIPTORS or drop it",
                    rec.name
                ),
            ));
        }
    }
}

/// One deployment row of `descriptors/layouts.txt`.
#[derive(Debug)]
struct Deployment {
    line: usize,
    name: String,
    kernel: String,
    policy: LayoutPolicy,
    servers: u32,
    strip: u64,
    element: u64,
    width: u64,
    rows: u64,
}

fn parse_manifest(src: &str, rel: &str, out: &mut Vec<Finding>) -> Vec<Deployment> {
    let mut deployments = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let entity = format!("{rel}:{lineno}");
        let mut fields = line.split_whitespace();
        let name = match fields.next() {
            Some(n) => n.to_string(),
            None => continue,
        };
        let mut kernel = None;
        let mut policy_name = None;
        let mut d = None;
        let mut r = None;
        let mut strip = None;
        let mut element = None;
        let mut width = None;
        let mut rows = None;
        let mut bad = false;
        for field in fields {
            let Some((key, value)) = field.split_once('=') else {
                out.push(Finding::new(
                    "DA110",
                    Severity::Error,
                    PASS,
                    entity.clone(),
                    format!("deployment {name:?}: field {field:?} is not key=value"),
                ));
                bad = true;
                continue;
            };
            let num = value.parse::<u64>();
            match key {
                "kernel" => kernel = Some(value.to_string()),
                "policy" => policy_name = Some(value.to_string()),
                "D" => d = num.ok(),
                "r" => r = num.ok(),
                "strip" => strip = num.ok(),
                "E" => element = num.ok(),
                "width" => width = num.ok(),
                "rows" => rows = num.ok(),
                other => {
                    out.push(Finding::new(
                        "DA110",
                        Severity::Error,
                        PASS,
                        entity.clone(),
                        format!("deployment {name:?}: unknown field {other:?}"),
                    ));
                    bad = true;
                }
            }
        }
        let (Some(kernel), Some(policy_name), Some(d), Some(r), Some(strip), Some(element), Some(width), Some(rows)) =
            (kernel, policy_name, d, r, strip, element, width, rows)
        else {
            out.push(Finding::new(
                "DA110",
                Severity::Error,
                PASS,
                entity,
                format!(
                    "deployment {name:?}: needs kernel=, policy=, and numeric D=, r=, strip=, E=, width=, rows="
                ),
            ));
            continue;
        };
        if bad {
            continue;
        }
        let policy = match policy_name.as_str() {
            "rr" => LayoutPolicy::RoundRobin,
            "grouped" => LayoutPolicy::Grouped { group: r },
            "grouped-rep" => LayoutPolicy::GroupedReplicated { group: r },
            other => {
                out.push(Finding::new(
                    "DA110",
                    Severity::Error,
                    PASS,
                    entity,
                    format!("deployment {name:?}: unknown policy {other:?} (want rr | grouped | grouped-rep)"),
                ));
                continue;
            }
        };
        if d == 0 || r == 0 || element == 0 || width == 0 || rows == 0 || strip == 0 {
            out.push(Finding::new(
                "DA110",
                Severity::Error,
                PASS,
                entity,
                format!("deployment {name:?}: every numeric field must be positive"),
            ));
            continue;
        }
        if strip % (element * width) != 0 {
            out.push(Finding::new(
                "DA110",
                Severity::Error,
                PASS,
                entity,
                format!(
                    "deployment {name:?}: strip={strip} is not a whole number of {width}-element rows (E={element})"
                ),
            ));
            continue;
        }
        deployments.push(Deployment {
            line: lineno,
            name,
            kernel,
            policy,
            servers: d.min(u64::from(u32::MAX)) as u32,
            strip,
            element,
            width,
            rows,
        });
    }
    deployments
}

/// The grouped-replication radius check (DA107): replication covers
/// exactly one strip ring around each group boundary, so a kernel
/// whose stencil reaches `ceil(reach_rows / strip_rows) > 1` strips
/// still fetches from peers — on a layout whose whole point is that
/// it never does.
fn check_layout_manifest(path: &Path, txt: &[(usize, KernelFeatures)], out: &mut Vec<Finding>) {
    let rel = "descriptors/layouts.txt";
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            out.push(Finding::new(
                "DA110",
                Severity::Error,
                PASS,
                rel,
                format!("cannot read layout manifest: {e}"),
            ));
            return;
        }
    };
    check_manifest_src(&src, rel, txt, out);
}

fn check_manifest_src(
    src: &str,
    rel: &str,
    txt: &[(usize, KernelFeatures)],
    out: &mut Vec<Finding>,
) {
    for dep in parse_manifest(src, rel, out) {
        let entity = format!("{rel}:{}", dep.line);
        let Some((_, rec)) = txt.iter().find(|(_, rec)| rec.name == dep.kernel) else {
            out.push(Finding::new(
                "DA110",
                Severity::Error,
                PASS,
                entity,
                format!("deployment {:?}: unknown kernel {:?}", dep.name, dep.kernel),
            ));
            continue;
        };
        let Some((reach_rows, _)) = rec.stencil_reach() else {
            continue; // non-affine: DA102 already fired
        };
        if !dep.policy.replicates() || reach_rows == 0 {
            continue;
        }
        let strip_rows = dep.strip / (dep.element * dep.width);
        let radius = reach_rows.div_ceil(strip_rows);
        let strip_count = (dep.rows * dep.width * dep.element).div_ceil(dep.strip);
        let layout = Layout::new(dep.policy, dep.servers);
        let uncovered = (0..strip_count)
            .map(StripId)
            .find_map(|t| {
                let u = layout.uncovered_neighbors(t, radius, strip_count);
                (!u.is_empty()).then_some((t, u))
            });
        if let Some((t, missing)) = uncovered {
            let file_len = dep.rows * dep.width * dep.element;
            let dist = DistributionInfo {
                strip_size: dep.strip as usize,
                servers: dep.servers,
                policy: dep.policy,
                file_len,
            };
            let offsets = rec.offsets(dep.width);
            let pred = StripingParams::from_distribution(&dist, dep.element)
                .predict_file(&offsets, file_len);
            out.push(Finding::new(
                "DA107",
                Severity::Warning,
                PASS,
                entity,
                format!(
                    "deployment {:?}: grouped replication (r={}) covers a 1-strip ring, but kernel {:?} reaches {reach_rows} rows = {radius} strips of {strip_rows} rows — strip {} must still fetch strip {} from a peer ({} B of dependence traffic predicted over the file)",
                    dep.name,
                    dep.policy.group_size(),
                    dep.kernel,
                    t.0,
                    missing[0].0,
                    pred.remote_bytes
                ),
            ));
        }
    }
}

/// The dead-descriptor sweep (DA108): instantiate the paper's Fig. 3
/// decision (built on Eqs. 1–13) over a grid of supported layouts; a
/// descriptor rejected in every cell can never be offloaded.
///
/// The grid deliberately covers only non-replicated layouts
/// (round-robin and grouped): under the Eqs. 14–17 replicated
/// layouts, small `D` with boundary replication can make *every*
/// strip locally available (e.g. `D=2, r=1` replicates each strip to
/// the only other server), so every descriptor trivially offloads
/// there and the sweep would never flag anything. Replication
/// adequacy is DA107's job.
fn check_dead_descriptor(rec: &KernelFeatures, entity: &str, out: &mut Vec<Finding>) {
    const ELEMENT: u64 = 4;
    const WIDTH: u64 = 64;
    const ROWS: u64 = 256;
    let file_len = WIDTH * ROWS * ELEMENT;
    let mut cells = 0u32;
    let mut offloads = 0u32;
    for d in [2u32, 4, 8] {
        for strip_rows in [1u64, 2, 4] {
            let strip_size = (strip_rows * WIDTH * ELEMENT) as usize;
            let mut policies = vec![LayoutPolicy::RoundRobin];
            for r in [2u64, 4] {
                policies.push(LayoutPolicy::Grouped { group: r });
            }
            for policy in policies {
                cells += 1;
                let input = DecisionInput {
                    features: rec,
                    dist: DistributionInfo { strip_size, servers: d, policy, file_len },
                    element_size: ELEMENT,
                    img_width: WIDTH,
                    output_bytes: file_len,
                    successive: false,
                    plan_opts: PlanOptions::default(),
                };
                if decide(&input).is_offload() {
                    offloads += 1;
                }
            }
        }
    }
    if offloads == 0 {
        out.push(Finding::new(
            "DA108",
            Severity::Warning,
            PASS,
            entity,
            format!(
                "dead descriptor: kernel {:?} is rejected by the offload decision in all {cells} grid cells (D ∈ {{2,4,8}}, strip ∈ {{1,2,4}} rows, round-robin and grouped r ∈ {{2,4}}) — no non-replicated layout would ever offload it",
                rec.name
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_core::OffsetExpr;

    fn kernel(name: &str, offsets: &[&str]) -> KernelFeatures {
        KernelFeatures {
            name: name.into(),
            dependence: offsets.iter().map(|s| OffsetExpr::parse(s).unwrap()).collect(),
        }
    }

    #[test]
    fn offset_checks_fire_on_nonlinear_duplicate_and_zero() {
        let mut out = Vec::new();
        let rec = kernel("k", &["imgWidth*imgWidth", "1", "2-1", "0"]);
        check_offsets(&rec, "f:1", &mut out);
        let codes: Vec<&str> = out.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"DA102"), "{codes:?}");
        assert!(codes.contains(&"DA103"), "{codes:?}"); // 1 vs 2-1
        assert!(codes.contains(&"DA104"), "{codes:?}"); // 0
    }

    #[test]
    fn pattern_comparison_is_order_insensitive_and_symbolic() {
        let a = kernel("k", &["-imgWidth", "imgWidth"]);
        let b = kernel("k", &["imgWidth", "-(imgWidth)"]);
        assert!(patterns_agree(&a, &b));
        let c = kernel("k", &["-imgWidth", "imgWidth+1"]);
        assert!(!patterns_agree(&a, &c));
    }

    #[test]
    fn manifest_parses_and_rejects_bad_rows() {
        let mut out = Vec::new();
        let src = "\
# comment
good kernel=flow-routing policy=grouped-rep D=4 r=4 strip=512 E=4 width=64 rows=256
badpolicy kernel=k policy=zigzag D=4 r=4 strip=512 E=4 width=64 rows=256
short kernel=k policy=rr D=4
raggedstrip kernel=k policy=rr D=4 r=1 strip=300 E=4 width=64 rows=256
";
        let deps = parse_manifest(src, "layouts.txt", &mut out);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].name, "good");
        assert_eq!(deps[0].policy, LayoutPolicy::GroupedReplicated { group: 4 });
        assert_eq!(out.iter().filter(|f| f.code == "DA110").count(), 3);
    }

    #[test]
    fn under_replicated_deployment_is_flagged() {
        let five = kernel("big", &["-2*imgWidth", "2*imgWidth"]);
        let txt = vec![(1usize, five)];
        // 1-row strips: a 2-row reach spans 2 strips, replication covers 1.
        let mut out = Vec::new();
        check_manifest_src(
            "bad kernel=big policy=grouped-rep D=4 r=2 strip=256 E=4 width=64 rows=64\n",
            "layouts.txt",
            &txt,
            &mut out,
        );
        assert!(out.iter().any(|f| f.code == "DA107"), "{out:?}");

        // 4-row strips cover the same reach: no finding.
        let mut out = Vec::new();
        check_manifest_src(
            "ok kernel=big policy=grouped-rep D=4 r=2 strip=1024 E=4 width=64 rows=64\n",
            "layouts.txt",
            &txt,
            &mut out,
        );
        assert!(!out.iter().any(|f| f.code == "DA107"), "{out:?}");
    }

    #[test]
    fn builtin_kernels_are_not_dead() {
        for rec in KernelFeatures::parse_text(BUILTIN_DESCRIPTORS).unwrap() {
            let mut out = Vec::new();
            check_dead_descriptor(&rec, "x", &mut out);
            assert!(out.is_empty(), "{} flagged dead: {out:?}", rec.name);
        }
    }

    #[test]
    fn absurd_stride_kernel_is_dead() {
        // Twenty prime row strides far past any replication radius:
        // in every grid cell the strip re-fetching exceeds shipping
        // the file to the clients, so no layout ever offloads it.
        let offsets: Vec<String> = [17i64, 19, 23, 29, 31, 37, 41, 43, 47, 53]
            .iter()
            .flat_map(|&p| [format!("-{p}*imgWidth"), format!("{p}*imgWidth")])
            .collect();
        let refs: Vec<&str> = offsets.iter().map(String::as_str).collect();
        let rec = kernel("wide", &refs);
        let mut out = Vec::new();
        check_dead_descriptor(&rec, "x", &mut out);
        assert!(out.iter().any(|f| f.code == "DA108"), "{out:?}");
    }
}
