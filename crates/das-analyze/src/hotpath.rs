//! Pass — hot-path allocation and blocking analysis (`DA800`–`DA806`).
//!
//! PRs 6–8 bought their throughput with two invariants the compiler
//! does not enforce: the strip reply path is **zero-copy** (a reply
//! is head + refcounted `bytes::Bytes` body + inline CRC tail, no
//! payload copies), and the event-loop **shard threads never block**
//! (readiness is polled; anything slow runs on a worker). Either
//! invariant dies silently — one `to_vec()` in a reply arm or one
//! blocking `recv` on the poll loop and the benchmarks quietly
//! regress. This pass re-proves both on every run, over the das-net
//! request-path sources, using the same name-based call graph the
//! `lockgraph` pass trusts:
//!
//! * `DA801` (error) — a per-request heap copy (`.to_vec()` /
//!   `.to_owned()` on byte-ish data, `.clone()` on a hot byte
//!   buffer, `format!` on the frame path outside error
//!   construction) in a function reachable from the request-serving
//!   roots (`shard_loop`, `run_job`).
//! * `DA802` (error) — an allocation (`with_capacity`, `vec![x; n]`)
//!   in a wire-decoding function (`from_le_bytes` present) with no
//!   visible bound (`MAX_PAYLOAD`, `.min(`, `.clamp(`): a hostile
//!   length field sizes the allocation.
//! * `DA803` (error) — a blocking operation (sleep, blocking
//!   connect, channel `recv`, condvar `wait`, `read_to_end`)
//!   reachable from the shard poll loop, which must never stall —
//!   every connection on the shard stalls with it.
//! * `DA804` (error) — a byte-copy sink (`extend_from_slice` /
//!   `copy_from_slice`) fed a strip payload, defeating the `Bytes`
//!   zero-copy path.
//! * `DA805` (error) — a lock guard held across a dispatch/enqueue/
//!   write call: serializes the request path behind the guard (and
//!   deadlocks if the callee takes the same lock).
//! * `DA800` (info) — proof record: every function of the engine/
//!   codec write path (`run_job` → `pump_write` → `write_some`,
//!   `raw_frame_parts*`, `frame_parts_opts`, `split_payload`,
//!   `queue`) carries zero unwaived hot-path findings.
//! * `DA806` (info) — census: files, functions, reachable set,
//!   sites examined.
//!
//! Known imprecision, stated so the reader can calibrate: calls are
//! matched by bare name (as in `lockgraph`), with a generic-name
//! ignore list (`new`, `from`, `clone`, …) so `Vec::new()` does not
//! alias every constructor in the crate; receiver "byte-ishness" is
//! judged by identifier vocabulary (`payload`, `buf`, `frame`, …).
//! Any flagged site can be waived with `// das-lint: allow(DA80x)`
//! plus a justification; the `DA430` stale-waiver sweep keeps the
//! waivers honest.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::Path;

use crate::finding::{Finding, Severity};
use crate::lints;
use crate::syntax::{self, TokKind, Token};

const PASS: &str = "hotpath";

/// Reachability roots for the allocation checks: the shard poll loop
/// and the worker job runner — between them, every token that runs
/// per served request.
const ALLOC_ROOTS: [&str; 2] = ["shard_loop", "run_job"];

/// Reachability roots for the blocking checks: only the shard poll
/// loop. Workers MAY block (peer fetches during `Execute` are
/// blocking RPC by design); a shard thread that blocks stalls every
/// connection it owns.
const BLOCK_ROOTS: [&str; 1] = ["shard_loop"];

/// The zero-copy write path whose cleanliness `DA800` certifies.
const WRITE_PATH: [&str; 8] = [
    "run_job",
    "pump_write",
    "write_some",
    "raw_frame_parts",
    "raw_frame_parts_opts",
    "frame_parts_opts",
    "split_payload",
    "queue",
];

/// Receiver identifiers treated as byte buffers for `DA801`
/// `.to_vec()`/`.to_owned()` checks.
const BYTEISH: [&str; 12] = [
    "payload", "bytes", "buf", "frame", "tail", "head", "body", "data", "blob", "strip",
    "out_bytes", "spans",
];

/// Receivers whose `.clone()` is a real byte copy. `data`/`bytes`
/// are deliberately absent: in this workspace those are
/// [`bytes::Bytes`] handles, whose clone is a refcount bump.
const CLONE_HOT: [&str; 7] = ["payload", "out_bytes", "buf", "frame", "tail", "head", "body"];

/// First-argument identifiers that mark an `extend_from_slice` /
/// `copy_from_slice` as a payload copy (`DA804`). Matched by exact
/// identifier equality, so `payload_len` does not count.
const PAYLOADISH: [&str; 6] = ["payload", "body", "blob", "strip", "spans", "bytes"];

/// Identifiers whose presence between statement start and a
/// `format!` marks it as error/diagnostic construction — the cold
/// path, exempt from `DA801`.
const ERROR_CTX: [&str; 11] = [
    "Err",
    "err",
    "Error",
    "DecodeError",
    "NetError",
    "panic",
    "assert",
    "debug_assert",
    "expect",
    "unreachable",
    "error",
];

/// Callees a held guard must not span (`DA805`): the dispatch,
/// scheduling and socket-write boundaries of the request path.
const DISPATCHY: [&str; 7] = [
    "dispatch",
    "process_request",
    "enqueue",
    "write_some",
    "write_frame_vectored",
    "write_message",
    "write_message_traced",
];

/// Call-edge identifiers too generic to mean an intra-crate call:
/// matching them by name would alias `Vec::new` with every `new` in
/// the crate and make the whole graph reachable.
const EDGE_IGNORE: [&str; 30] = [
    "new", "default", "from", "into", "to_vec", "to_owned", "clone", "drop", "len", "is_empty",
    "push", "pop", "insert", "get", "remove", "contains", "iter", "next", "unwrap", "expect",
    "ok", "err", "map", "and_then", "min", "max", "clamp", "is_some", "is_none", "take",
];

/// One flagged site, pending the reachability decision.
struct Candidate {
    code: &'static str,
    line: u32,
    message: String,
}

/// One function definition's hot-path facts.
struct FnDef {
    name: String,
    file: String,
    /// Allocation-class candidates (DA801/DA802/DA804), fire when
    /// the fn is reachable from [`ALLOC_ROOTS`].
    alloc: Vec<Candidate>,
    /// Blocking-class candidates (DA803), fire when the fn is
    /// reachable from [`BLOCK_ROOTS`].
    block: Vec<Candidate>,
    /// Guard-across-dispatch candidates (DA805), alloc-scoped.
    guard: Vec<Candidate>,
    calls: BTreeSet<String>,
}

/// Run the hot-path pass over the das-net request-path sources under
/// `root`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut defs: Vec<FnDef> = Vec::new();
    let mut lexed: Vec<(String, syntax::Lexed)> = Vec::new();
    let mut files = 0usize;

    for (rel, src) in lints::workspace_sources(root) {
        if lints::crate_of(&rel) != "das-net" || !lints::is_request_path(&rel) {
            continue;
        }
        files += 1;
        let lx = syntax::lex(&src);
        for f in syntax::extract_fns(&lx) {
            if f.in_test {
                continue;
            }
            // Empty-bodied fns (and braceless trait signatures) carry
            // no facts but must still count as *defined* — the DA800
            // proof checks the write-path names exist.
            defs.push(scan_fn(&lx, &f, &rel));
        }
        lexed.push((rel, lx));
    }

    // Merge same-named fns (conservatively, as lockgraph does) and
    // restrict call edges to names defined in the scanned set.
    let names: BTreeSet<String> = defs.iter().map(|d| d.name.clone()).collect();
    let mut graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for d in &defs {
        let entry = graph.entry(d.name.clone()).or_default();
        entry.extend(d.calls.iter().filter(|c| names.contains(*c)).cloned());
    }

    let alloc_reach = reach(&graph, &ALLOC_ROOTS);
    let block_reach = reach(&graph, &BLOCK_ROOTS);

    // Emit reachable candidates, honoring waivers; track per-file
    // waiver uses for the stale sweep, and per-fn unwaived counts for
    // the DA800 proof.
    let mut used: HashMap<String, Vec<(u32, String)>> = HashMap::new();
    let mut dirty: BTreeSet<String> = BTreeSet::new();
    let mut emitted: BTreeSet<(&'static str, String, u32)> = BTreeSet::new();
    let mut sites = 0usize;
    for d in &defs {
        let scopes: [(&[Candidate], &BTreeSet<String>); 3] = [
            (&d.alloc, &alloc_reach),
            (&d.guard, &alloc_reach),
            (&d.block, &block_reach),
        ];
        for (cands, reachable) in scopes {
            sites += cands.len();
            if !reachable.contains(&d.name) {
                continue;
            }
            for c in cands {
                if !emitted.insert((c.code, d.file.clone(), c.line)) {
                    continue; // nested-fn double scan
                }
                let lx = &lexed.iter().find(|(rel, _)| *rel == d.file).expect("lexed").1;
                if lx.waived(c.line, c.code) {
                    used.entry(d.file.clone()).or_default().push((c.line, c.code.to_string()));
                } else {
                    dirty.insert(d.name.clone());
                    out.push(Finding::new(
                        c.code,
                        Severity::Error,
                        PASS,
                        format!("{}:{}", d.file, c.line),
                        c.message.clone(),
                    ));
                }
            }
        }
    }

    for (rel, lx) in &lexed {
        let file_used = used.remove(rel).unwrap_or_default();
        lints::stale_waivers(
            PASS,
            rel,
            lx,
            &["DA801", "DA802", "DA803", "DA804", "DA805"],
            &file_used,
            &mut out,
        );
    }

    // DA800 — proof record for the zero-copy write path, only
    // meaningful when the engine is actually present (fixture
    // mini-repos may not carry it).
    let write_path_present = WRITE_PATH.iter().filter(|w| names.contains(**w)).count();
    if write_path_present == WRITE_PATH.len()
        && WRITE_PATH.iter().all(|w| !dirty.contains(*w))
    {
        out.push(Finding::new(
            "DA800",
            Severity::Info,
            PASS,
            "crates/das-net/src",
            format!(
                "write path clean: {} carry no unwaived per-request allocation, copy or blocking site — strip replies stay zero-copy",
                WRITE_PATH.join(" → ")
            ),
        ));
    }

    let roots_found = ALLOC_ROOTS.iter().filter(|r| names.contains(**r)).count();
    out.push(Finding::new(
        "DA806",
        Severity::Info,
        PASS,
        "crates/das-net/src",
        format!(
            "{files} request-path files, {} fns ({} distinct names), {} reachable from {:?}, {} from {:?}, {sites} candidate sites examined ({roots_found}/{} roots present)",
            defs.len(),
            names.len(),
            alloc_reach.len(),
            ALLOC_ROOTS,
            block_reach.len(),
            BLOCK_ROOTS,
            ALLOC_ROOTS.len(),
        ),
    ));
    out
}

/// Names reachable from `roots` in the merged call graph (roots
/// included, when defined).
fn reach(graph: &BTreeMap<String, BTreeSet<String>>, roots: &[&str]) -> BTreeSet<String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut stack: Vec<String> = roots
        .iter()
        .filter(|r| graph.contains_key(**r))
        .map(|r| r.to_string())
        .collect();
    while let Some(n) = stack.pop() {
        if !seen.insert(n.clone()) {
            continue;
        }
        if let Some(callees) = graph.get(&n) {
            stack.extend(callees.iter().cloned());
        }
    }
    seen
}

/// Whether `rel` is a frame-path file, where `format!` means string
/// assembly per frame rather than a one-off diagnostic.
fn frame_path_file(rel: &str) -> bool {
    rel.ends_with("engine.rs") || rel.ends_with("codec.rs") || rel.ends_with("proto.rs")
}

/// Scan one function body for hot-path candidates and call edges.
fn scan_fn(lx: &syntax::Lexed, f: &syntax::FnItem, rel: &str) -> FnDef {
    let toks = &lx.tokens;
    let body = f.body.clone();
    let end = body.end.min(toks.len());
    let mut def = FnDef {
        name: f.name.clone(),
        file: rel.to_string(),
        alloc: Vec::new(),
        block: Vec::new(),
        guard: Vec::new(),
        calls: BTreeSet::new(),
    };

    // Body-wide facts for the DA802 bound heuristic.
    let mut decodes_wire = false;
    let mut bounded = false;
    for i in body.clone() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "from_le_bytes" => decodes_wire = true,
            "MAX_PAYLOAD" => bounded = true,
            "min" | "clamp" if i > 0 && toks[i - 1].text == "." => bounded = true,
            _ => {}
        }
    }

    // Guard tracking for DA805 — same model as lockgraph: let-bound
    // guards live to their block's close or `drop(g)`; temporaries
    // die at `;`.
    struct Guard {
        lock: String,
        var: Option<String>,
        depth: i64,
        temp: bool,
    }
    let lock_at: HashMap<usize, lints::LockSite> = lints::lock_sites(toks, body.clone())
        .into_iter()
        .map(|s| (s.at, s))
        .collect();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i64;

    let mut i = body.start;
    while i < end {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            ";" => guards.retain(|g| !g.temp),
            _ => {}
        }
        if t.kind == TokKind::Ident
            && t.text == "drop"
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Ident {
                    guards.retain(|g| g.var.as_deref() != Some(arg.text.as_str()));
                }
            }
        }
        if let Some(site) = lock_at.get(&i) {
            let bound = bound_var(toks, i);
            guards.push(Guard {
                lock: site.name.clone(),
                var: bound.clone(),
                depth,
                temp: bound.is_none(),
            });
            i += 1;
            continue;
        }

        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let dotted = i > body.start && toks[i - 1].text == ".";
        let called = toks.get(i + 1).is_some_and(|n| n.text == "(");
        let banged = toks.get(i + 1).is_some_and(|n| n.text == "!");

        // Call edges (plain calls, not macros), minus generic names.
        if called && !dotted && !EDGE_IGNORE.contains(&t.text.as_str()) {
            def.calls.insert(t.text.clone());
        }
        if called && dotted && !EDGE_IGNORE.contains(&t.text.as_str()) {
            // Method calls also resolve by bare name, as in lockgraph.
            def.calls.insert(t.text.clone());
        }

        // DA805 — a dispatch/write boundary crossed under a guard.
        if called && DISPATCHY.contains(&t.text.as_str()) {
            if let Some(g) = guards.first() {
                def.guard.push(Candidate {
                    code: "DA805",
                    line: t.line,
                    message: format!(
                        "`{}` called while guard `{}` is held — the lock serializes the request path across the dispatch boundary; release it first",
                        t.text, g.lock
                    ),
                });
            }
        }

        // DA801 — byte-ish to_vec/to_owned.
        if called && dotted && (t.text == "to_vec" || t.text == "to_owned") {
            if let Some(recv) = receiver_ident(toks, i - 1, body.start) {
                if BYTEISH.contains(&recv.as_str()) {
                    def.alloc.push(Candidate {
                        code: "DA801",
                        line: t.line,
                        message: format!(
                            "`{recv}.{}()` heap-copies request bytes on the hot path — carry a `Bytes` handle or borrow instead",
                            t.text
                        ),
                    });
                }
            }
        }

        // DA801 — hot-buffer clone (immediate receiver only; Bytes
        // handles clone by refcount and are not listed).
        if called && dotted && t.text == "clone" && i >= 2 && toks[i - 2].kind == TokKind::Ident {
            let recv = toks[i - 2].text.as_str();
            if CLONE_HOT.contains(&recv) {
                def.alloc.push(Candidate {
                    code: "DA801",
                    line: t.line,
                    message: format!(
                        "`{recv}.clone()` duplicates a hot byte buffer per request — move it, or share a `Bytes` handle"
                    ),
                });
            }
        }

        // DA801 — format! on the frame path outside error context.
        if banged && t.text == "format" && frame_path_file(rel) && !in_error_ctx(toks, i, body.start)
        {
            def.alloc.push(Candidate {
                code: "DA801",
                line: t.line,
                message: "`format!` allocates a String on the frame path — preformat once or write into a reused buffer".to_string(),
            });
        }

        // DA802 — unbounded wire-sized allocation.
        if decodes_wire && !bounded {
            let vec_macro = t.text == "vec"
                && banged
                && toks.get(i + 2).is_some_and(|n| n.text == "[")
                && has_semicolon_before_close(toks, i + 2, end);
            let with_cap = t.text == "with_capacity"
                && called
                && !matches!(
                    (toks.get(i + 2), toks.get(i + 3)),
                    (Some(a), Some(b)) if a.kind == TokKind::Num && b.text == ")"
                );
            if vec_macro || with_cap {
                def.alloc.push(Candidate {
                    code: "DA802",
                    line: t.line,
                    message: "allocation sized in a wire-decoding fn with no visible bound (`MAX_PAYLOAD`, `.min(`, `.clamp(`) — a hostile length field controls it".to_string(),
                });
            }
        }

        // DA803 — blocking operations.
        if called {
            let blocking = match t.text.as_str() {
                "sleep" => Some("sleeps"),
                "wait" | "wait_timeout" | "wait_while" if dotted => Some("parks on a condvar"),
                "recv" | "recv_timeout" if dotted => Some("blocks on a channel"),
                "connect" if !dotted => Some("opens a blocking connection"),
                "read_to_end" | "read_to_string" => Some("reads to EOF"),
                _ => None,
            };
            if let Some(verb) = blocking {
                def.block.push(Candidate {
                    code: "DA803",
                    line: t.line,
                    message: format!(
                        "`{}` {verb} on a path the shard poll loop reaches — every connection on the shard stalls; move it to a worker",
                        t.text
                    ),
                });
            }
        }

        // DA804 — payload byte-copy sinks.
        if called && dotted && (t.text == "extend_from_slice" || t.text == "copy_from_slice") {
            if let Some(arg) = first_arg_ident(toks, i + 1, end) {
                if PAYLOADISH.contains(&arg.as_str()) {
                    def.alloc.push(Candidate {
                        code: "DA804",
                        line: t.line,
                        message: format!(
                            "`{}(&{arg}…)` copies payload bytes into another buffer — ship the `Bytes` segment through the vectored writer instead",
                            t.text
                        ),
                    });
                }
            }
        }

        i += 1;
    }
    def
}

/// The receiver identifier of a dotted call at `dot_idx` (the `.`
/// token): scan backwards over one postfix chain (idents, `.`,
/// `?`, index brackets, call parens) and return the first byte-ish
/// ident found, else the nearest ident. Bounded lookback.
fn receiver_ident(toks: &[Token], dot_idx: usize, floor: usize) -> Option<String> {
    let mut j = dot_idx;
    let mut nearest: Option<String> = None;
    let mut steps = 0;
    while j > floor && steps < 8 {
        j -= 1;
        steps += 1;
        let t = &toks[j];
        match t.kind {
            TokKind::Ident => {
                if BYTEISH.contains(&t.text.as_str()) {
                    return Some(t.text.clone());
                }
                if nearest.is_none() {
                    nearest = Some(t.text.clone());
                }
            }
            TokKind::Punct => match t.text.as_str() {
                "." | "?" | "]" | "[" | ")" => {}
                _ => break,
            },
            TokKind::Num => {}
            _ => break,
        }
    }
    nearest
}

/// First identifier in the argument list opened by the paren at
/// `open_idx` (skipping `&`, `mut`, `*`).
fn first_arg_ident(toks: &[Token], open_idx: usize, end: usize) -> Option<String> {
    let mut j = open_idx + 1;
    while j < end {
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "&" | "*") | (TokKind::Ident, "mut") => j += 1,
            (TokKind::Ident, _) => return Some(t.text.clone()),
            _ => return None,
        }
    }
    None
}

/// Whether the statement containing token `i` reads as error /
/// assertion construction — scan back to the statement opener.
fn in_error_ctx(toks: &[Token], i: usize, floor: usize) -> bool {
    let mut j = i;
    let mut steps = 0;
    while j > floor && steps < 40 {
        j -= 1;
        steps += 1;
        let t = &toks[j];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            return false;
        }
        if t.kind == TokKind::Ident
            && (ERROR_CTX.contains(&t.text.as_str())
                || t.text.starts_with("assert")
                || t.text.ends_with("Error"))
        {
            return true;
        }
    }
    false
}

/// Whether the bracket group opened at `open_idx` contains a `;`
/// before its matching `]` — the `vec![elem; n]` repeat form.
fn has_semicolon_before_close(toks: &[Token], open_idx: usize, end: usize) -> bool {
    let mut depth = 0i64;
    for t in toks.iter().take(end).skip(open_idx) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            ";" if depth == 1 => return true,
            _ => {}
        }
    }
    false
}

/// If the lock site at `at` is the RHS of `let [mut] NAME = lock(…)`,
/// return NAME (the guard is block-scoped); otherwise `None` (the
/// guard is a statement temporary).
fn bound_var(toks: &[Token], at: usize) -> Option<String> {
    let eq = at.checked_sub(1)?;
    if toks.get(eq)?.text != "=" {
        return None;
    }
    let name_tok = toks.get(at.checked_sub(2)?)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let kw_tok = toks.get(at.checked_sub(3)?)?;
    let is_let = kw_tok.text == "let"
        || (kw_tok.text == "mut"
            && at.checked_sub(4).and_then(|k| toks.get(k)).is_some_and(|t| t.text == "let"));
    if is_let {
        Some(name_tok.text.clone())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run the pass against an in-memory mini-crate materialized
    /// under a temp dir.
    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let dir = std::env::temp_dir().join(format!(
            "das-hotpath-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let src = dir.join("crates/das-net/src");
        std::fs::create_dir_all(&src).unwrap();
        for (name, body) in files {
            std::fs::write(src.join(name), body).unwrap();
        }
        let out = run(&dir);
        std::fs::remove_dir_all(&dir).ok();
        out
    }

    fn denials(out: &[Finding]) -> Vec<&Finding> {
        out.iter().filter(|f| f.severity >= Severity::Warning).collect()
    }

    #[test]
    fn reachable_byte_copy_is_da801_and_unreachable_is_not() {
        let out = run_on(&[(
            "engine.rs",
            "\
fn run_job(job: Job) {
    let payload = job.payload.to_vec();
}
fn cold_tool() {
    let payload = x.payload.to_vec();
}
",
        )]);
        let hits: Vec<_> = out.iter().filter(|f| f.code == "DA801").collect();
        assert_eq!(hits.len(), 1, "{out:?}");
        assert!(hits[0].entity.ends_with(":2"), "{hits:?}");
    }

    #[test]
    fn waiver_suppresses_and_stale_waiver_fires() {
        let out = run_on(&[(
            "engine.rs",
            "\
fn run_job(job: Job) {
    // das-lint: allow(DA801) fault-injection path
    let frame = job.frame.to_vec();
}
",
        )]);
        assert!(!out.iter().any(|f| f.code == "DA801"), "{out:?}");
        assert!(!out.iter().any(|f| f.code == "DA430"), "{out:?}");

        let stale = run_on(&[(
            "engine.rs",
            "\
fn run_job(job: Job) {
    // das-lint: allow(DA801) nothing here copies
    let n = job.frame.len();
}
",
        )]);
        assert!(stale.iter().any(|f| f.code == "DA430"), "{stale:?}");
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let out = run_on(&[(
            "engine.rs",
            "\
fn run_job(job: Job) { serve(job); }
fn serve(job: Job) {}
#[cfg(test)]
mod tests {
    fn run_job_helper() {
        let payload = x.payload.to_vec();
        std::thread::sleep(d);
    }
}
",
        )]);
        assert!(denials(&out).is_empty(), "{out:?}");
    }

    #[test]
    fn blocking_is_shard_scoped_not_worker_scoped() {
        let out = run_on(&[(
            "engine.rs",
            "\
fn shard_loop(q: &Q) {
    poll_once(q);
}
fn poll_once(q: &Q) {
    std::thread::sleep(BACKOFF);
}
fn run_job(job: Job) {
    worker_fetch(job);
}
fn worker_fetch(job: Job) {
    std::thread::sleep(RETRY);
}
",
        )]);
        let hits: Vec<_> = out.iter().filter(|f| f.code == "DA803").collect();
        assert_eq!(hits.len(), 1, "workers may sleep, shards may not: {out:?}");
        assert!(hits[0].entity.ends_with(":5"), "{hits:?}");
    }

    #[test]
    fn bytes_handle_clone_is_not_flagged_but_hot_buffer_clone_is() {
        let out = run_on(&[(
            "engine.rs",
            "\
fn run_job(job: Job) {
    let d = job.data.clone();
    let p = payload.clone();
}
",
        )]);
        let hits: Vec<_> = out.iter().filter(|f| f.code == "DA801").collect();
        assert_eq!(hits.len(), 1, "{out:?}");
        assert!(hits[0].entity.ends_with(":3"), "{hits:?}");
    }

    #[test]
    fn unbounded_wire_allocation_is_da802_and_bounded_is_not() {
        let out = run_on(&[(
            "codec.rs",
            "\
fn run_job(b: &[u8]) {
    let len = u32::from_le_bytes(four(b)) as usize;
    let mut v = Vec::with_capacity(len);
}
fn shard_loop(b: &[u8]) {
    let len = u32::from_le_bytes(four(b)) as usize;
    if len > MAX_PAYLOAD { return; }
    let mut v = Vec::with_capacity(len);
}
",
        )]);
        let hits: Vec<_> = out.iter().filter(|f| f.code == "DA802").collect();
        assert_eq!(hits.len(), 1, "{out:?}");
        assert!(hits[0].entity.ends_with(":3"), "{hits:?}");
    }

    #[test]
    fn payload_copy_sink_is_da804_and_length_field_is_not() {
        let out = run_on(&[(
            "codec.rs",
            "\
fn run_job(out: &mut Vec<u8>, payload: &[u8], payload_len: &[u8]) {
    out.extend_from_slice(payload);
    out.extend_from_slice(payload_len);
}
",
        )]);
        let hits: Vec<_> = out.iter().filter(|f| f.code == "DA804").collect();
        assert_eq!(hits.len(), 1, "{out:?}");
        assert!(hits[0].entity.ends_with(":2"), "{hits:?}");
    }

    #[test]
    fn guard_across_dispatch_is_da805_and_released_guard_is_not() {
        let out = run_on(&[(
            "server.rs",
            "\
fn run_job(s: &S, job: Job) {
    let g = lock(&s.inner);
    dispatch(s, job);
}
fn shard_loop(s: &S, job: Job) {
    {
        let g = lock(&s.inner);
    }
    dispatch(s, job);
}
fn dispatch(s: &S, job: Job) {}
",
        )]);
        let hits: Vec<_> = out.iter().filter(|f| f.code == "DA805").collect();
        assert_eq!(hits.len(), 1, "{out:?}");
        assert!(hits[0].entity.ends_with(":3"), "{hits:?}");
    }

    #[test]
    fn format_on_frame_path_flags_but_error_construction_is_exempt() {
        let out = run_on(&[(
            "proto.rs",
            "\
fn run_job(m: &M) -> String {
    let label = format!(\"{}-{}\", m.a, m.b);
    return Err(DecodeError::Bad(format!(\"bad op {}\", m.op)));
}
",
        )]);
        let hits: Vec<_> = out.iter().filter(|f| f.code == "DA801").collect();
        assert_eq!(hits.len(), 1, "{out:?}");
        assert!(hits[0].entity.ends_with(":2"), "{hits:?}");
    }

    #[test]
    fn write_path_proof_emits_when_clean() {
        let files = [(
            "engine.rs",
            "\
fn shard_loop(q: &Q) { pump_write(q); }
fn run_job(j: J) { queue(j); }
fn pump_write(q: &Q) { write_some(q); }
fn write_some(q: &Q) {}
fn raw_frame_parts(a: u8) { raw_frame_parts_opts(a); }
fn raw_frame_parts_opts(a: u8) {}
fn frame_parts_opts(m: &M) { split_payload(m); }
fn split_payload(m: &M) {}
fn queue(j: J) {}
",
        )];
        let out = run_on(&files);
        assert!(out.iter().any(|f| f.code == "DA800"), "{out:?}");
        assert!(out.iter().any(|f| f.code == "DA806"), "{out:?}");

        let dirty = [(
            "engine.rs",
            "\
fn shard_loop(q: &Q) { pump_write(q); }
fn run_job(j: J) { queue(j); let tail = parts.tail.to_vec(); }
fn pump_write(q: &Q) { write_some(q); }
fn write_some(q: &Q) {}
fn raw_frame_parts(a: u8) { raw_frame_parts_opts(a); }
fn raw_frame_parts_opts(a: u8) {}
fn frame_parts_opts(m: &M) { split_payload(m); }
fn split_payload(m: &M) {}
fn queue(j: J) {}
",
        )];
        let out = run_on(&dirty);
        assert!(!out.iter().any(|f| f.code == "DA800"), "{out:?}");
        assert!(out.iter().any(|f| f.code == "DA801"), "{out:?}");
    }

    #[test]
    fn non_request_path_files_are_out_of_scope() {
        let out = run_on(&[(
            "store.rs",
            "fn run_job(j: J) { let payload = j.payload.to_vec(); }\n",
        )]);
        assert!(denials(&out).is_empty(), "{out:?}");
    }
}
