//! Pass — lockset race detection (`DA70x`).
//!
//! RacerD-style guard inference over das-net/das-obs, on the same
//! dependency-free tokenizer as the other source passes. The
//! `lockgraph` pass proves lock *ordering*; this pass proves shared
//! state is consistently *guarded at all*:
//!
//! 1. **Infer protection.** A struct field `g: Mutex<T>` (or
//!    `RwLock<T>`) whose direct type parameter `T` is a struct
//!    declared in the same file makes `g` the *dominating guard* of
//!    every field of `T` — the idiom every das-net/das-obs shared
//!    structure uses (`FairQueue.sched: Mutex<SchedState>`,
//!    `Shared.inner: Mutex<Inner>`, `SpanStore.spans: Mutex<Inner>`,
//!    `Registry.inner: Mutex<Inner>`).
//! 2. **Check every access.** Each `recv.field` access to a protected
//!    field must happen while its dominating guard is held, tracked
//!    with the same scope-aware guard lifetimes `lockgraph` uses
//!    (`let g = lock(…)` lives to its block or `drop(g)`; a temporary
//!    dies at the statement). Methods of the protected struct itself
//!    (`impl Inner { fn meta(&self) … }`) run *under* the guard by
//!    construction — the caller already holds it to have a `&self` —
//!    and are exempt, as are functions taking the protected struct as
//!    a parameter. Guard-returning helpers
//!    (`fn lock(&self) -> MutexGuard<'_, Inner>`) are resolved so
//!    `self.lock().counters` counts as guarded.
//!
//! Findings: `DA701` (error) — a protected field accessed without its
//! guard; `DA702` (warning) — ambiguous protection (two guards wrap
//! the same struct type, so no dominator exists); `DA703` (warning) —
//! a dead lock: a `Mutex`/`RwLock` field never acquired anywhere in
//! the scanned crates; `DA704` (error) — `Arc::get_mut` /
//! `Arc::make_mut` mutation of shared state without a guard; `DA705`
//! (info) — the inferred guard → protected-field proof record per
//! file; `DA700` (info) — summary. `// das-lint: allow(DA70x)`
//! waivers are honored, and a waiver that suppresses nothing is
//! reported as `DA430` (stale waiver).
//!
//! Known imprecision, documented so the reader can calibrate trust:
//! the analysis is per-file (a protected struct accessed from another
//! file is not checked there), protection through a type alias
//! (`type PeerConn = Arc<Mutex<Link>>`) is not inferred, and a field
//! name declared by two structs in one file is skipped rather than
//! guessed at.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;

use crate::finding::{Finding, Severity};
use crate::lints;
use crate::syntax::{self, TokKind, Token};

const PASS: &str = "lockset";

/// One struct declaration recovered from a file's token stream.
struct StructDecl {
    name: String,
    /// (field name, type tokens rendered as text, line).
    fields: Vec<(String, Vec<String>, u32)>,
}

/// A field that some guard protects.
#[derive(Clone)]
struct Protected {
    owner: String,
    guard: String,
}

/// Per-file inference + check results, merged into the run summary.
#[derive(Default)]
struct FileStats {
    guards: usize,
    protected_fields: usize,
    accesses: usize,
}

/// Run the lockset pass over das-net and das-obs sources under
/// `root`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut files = 0usize;
    let mut totals = FileStats::default();
    // (file, guard field, line) of every Mutex/RwLock field, and the
    // set of names acquired anywhere — DA703 is checked across the
    // whole scanned set so a lock acquired from a sibling module is
    // not a false dead lock.
    let mut guard_fields: Vec<(String, String, u32)> = Vec::new();
    let mut acquired: HashSet<String> = HashSet::new();
    let mut deferred: Vec<lints::LexedFile> = Vec::new();

    for (rel, src) in lints::workspace_sources(root) {
        let krate = lints::crate_of(&rel);
        if krate != "das-net" && krate != "das-obs" {
            continue;
        }
        files += 1;
        let lx = syntax::lex(&src);
        let used = check_file(&rel, &lx, &mut out, &mut totals, &mut guard_fields, &mut acquired);
        deferred.push((rel, lx, used));
    }

    // DA703: a declared Mutex/RwLock field nobody ever acquires. The
    // acquired set is lenient (any ident that appears at a lock site,
    // inside a lock-helper's arguments, or as a lock()/read()/write()
    // receiver) so index expressions like `lock(&q.inbox[shard])`
    // still count as acquisitions of `inbox`.
    for (file, name, line) in &guard_fields {
        if !acquired.contains(name) {
            let lx = deferred.iter().find(|(rel, _, _)| rel == file).map(|(_, lx, _)| lx);
            if lx.is_some_and(|lx| lx.waived(*line, "DA703")) {
                if let Some((_, _, used)) = deferred.iter_mut().find(|(rel, _, _)| rel == file) {
                    used.push((*line, "DA703".to_string()));
                }
                continue;
            }
            out.push(Finding::new(
                "DA703",
                Severity::Warning,
                PASS,
                format!("{file}:{line}"),
                format!(
                    "dead lock: `{name}` is declared as a Mutex/RwLock field but never acquired — either the state it guards is unshared (drop the lock) or an access path is bypassing it"
                ),
            ));
        }
    }

    // DA430: a DA70x waiver that suppressed nothing in this pass.
    for (rel, lx, used) in &deferred {
        lints::stale_waivers(PASS, rel, lx, &["DA701", "DA702", "DA703", "DA704"], used, &mut out);
    }

    out.push(Finding::new(
        "DA700",
        Severity::Info,
        PASS,
        "crates/{das-net,das-obs}/src",
        format!(
            "{files} files scanned: {} guard fields, {} protected fields, {} guarded-field accesses checked",
            totals.guards, totals.protected_fields, totals.accesses
        ),
    ));
    out
}

/// Analyze one file: infer protection, then check every access.
/// Returns the (line, code) waiver uses for the stale-waiver sweep.
fn check_file(
    rel: &str,
    lx: &syntax::Lexed,
    out: &mut Vec<Finding>,
    totals: &mut FileStats,
    guard_fields: &mut Vec<(String, String, u32)>,
    acquired: &mut HashSet<String>,
) -> Vec<(u32, String)> {
    let toks = &lx.tokens;
    let mask = syntax::test_mask(lx);
    let mut used: Vec<(u32, String)> = Vec::new();

    let structs = parse_structs(toks, &mask);

    // Guard fields and the structs they wrap.
    // wraps: struct name -> guard field names wrapping it.
    let mut wraps: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();
    for s in &structs {
        for (fname, ftype, line) in &s.fields {
            if let Some(inner) = guard_inner_type(ftype) {
                guard_fields.push((rel.to_string(), fname.clone(), *line));
                totals.guards += 1;
                if structs.iter().any(|d| d.name == inner) {
                    wraps.entry(inner).or_default().push((fname.clone(), *line));
                }
            }
        }
    }

    // DA702: two guards wrap the same struct — no dominator exists,
    // so the struct is reported and skipped rather than guessed at.
    let mut protected_structs: BTreeMap<String, String> = BTreeMap::new();
    for (inner, guards) in &wraps {
        if guards.len() > 1 {
            let (_, line) = guards[0];
            if lx.waived(line, "DA702") {
                used.push((line, "DA702".to_string()));
            } else {
                out.push(Finding::new(
                    "DA702",
                    Severity::Warning,
                    PASS,
                    format!("{rel}:{line}"),
                    format!(
                        "ambiguous protection: struct `{inner}` is wrapped by {} different guards ({}) — no dominating guard exists, accesses are unchecked",
                        guards.len(),
                        guards.iter().map(|(g, _)| g.as_str()).collect::<Vec<_>>().join(", ")
                    ),
                ));
            }
            continue;
        }
        protected_structs.insert(inner.clone(), guards[0].0.clone());
    }

    // field name -> (owner struct, guard). A name declared by more
    // than one struct in the file is ambiguous and skipped.
    let mut field_owner: HashMap<String, Protected> = HashMap::new();
    let mut ambiguous: HashSet<String> = HashSet::new();
    for s in &structs {
        for (fname, _, _) in &s.fields {
            let declared_elsewhere =
                structs.iter().filter(|d| d.fields.iter().any(|(f, _, _)| f == fname)).count() > 1;
            if declared_elsewhere {
                ambiguous.insert(fname.clone());
            }
            if let Some(guard) = protected_structs.get(&s.name) {
                field_owner.insert(
                    fname.clone(),
                    Protected { owner: s.name.clone(), guard: guard.clone() },
                );
            }
        }
    }
    for name in &ambiguous {
        field_owner.remove(name);
    }
    totals.protected_fields += field_owner.len();

    // DA705 proof record, one per protected struct.
    for (owner, guard) in &protected_structs {
        let fields: Vec<&str> = structs
            .iter()
            .find(|s| &s.name == owner)
            .map(|s| {
                s.fields
                    .iter()
                    .map(|(f, _, _)| f.as_str())
                    .filter(|f| !ambiguous.contains(*f))
                    .collect()
            })
            .unwrap_or_default();
        out.push(Finding::new(
            "DA705",
            Severity::Info,
            PASS,
            rel,
            format!(
                "guard `{guard}` protects `{owner}` {{ {} }} — every access must hold it",
                fields.join(", ")
            ),
        ));
    }

    // Guard-returning helper methods: `fn lock(&self) ->
    // MutexGuard<'_, Inner>` means `self.lock()` acquires Inner's
    // dominating guard.
    let fns = syntax::extract_fns(lx);
    let mut helper_methods: HashMap<String, String> = HashMap::new();
    for f in &fns {
        if f.in_test {
            continue;
        }
        let sig = fn_signature(toks, f);
        if sig.iter().any(|t| t == "MutexGuard" || t == "RwLockReadGuard" || t == "RwLockWriteGuard")
        {
            for (owner, guard) in &protected_structs {
                if sig.iter().any(|t| t == owner) {
                    helper_methods.insert(f.name.clone(), guard.clone());
                }
            }
        }
    }

    // Impl regions of protected structs: methods of the protected
    // struct run under the guard by construction.
    let impls = impl_regions(toks);

    // Walk each fn body tracking guard scopes and check accesses.
    if !field_owner.is_empty() || !structs.is_empty() {
        // Guarded-access witnesses per field, for the DA701 message.
        let mut witnesses: HashMap<String, Vec<u32>> = HashMap::new();
        let mut violations: Vec<(String, Protected, u32)> = Vec::new();
        for f in &fns {
            if f.in_test || f.body.is_empty() {
                continue;
            }
            let sig = fn_signature(toks, f);
            walk_fn(
                toks,
                f.body.clone(),
                &field_owner,
                &helper_methods,
                &sig,
                &impls,
                lx,
                acquired,
                totals,
                &mut witnesses,
                &mut violations,
                &mut used,
            );
        }
        for (field, p, line) in violations {
            let seen = witnesses.get(&field).cloned().unwrap_or_default();
            let example = seen
                .iter()
                .find(|&&l| l != line)
                .map(|l| format!("; {} guarded accesses elsewhere (e.g. {rel}:{l})", seen.len()))
                .unwrap_or_default();
            out.push(Finding::new(
                "DA701",
                Severity::Error,
                PASS,
                format!("{rel}:{line}"),
                format!(
                    "field `{field}` of `{}` read/written without its dominating guard `{}` held — a racing thread holding the guard sees torn state{example}",
                    p.owner, p.guard
                ),
            ));
        }
    }

    // DA704: Arc::get_mut / Arc::make_mut on shared state — interior
    // mutation that bypasses every guard the file declares.
    let mut i = 0usize;
    while i + 3 < toks.len() {
        if !mask.get(i).copied().unwrap_or(false)
            && toks[i].kind == TokKind::Ident
            && (toks[i].text == "Arc" || toks[i].text == "Rc")
            && toks[i + 1].text == ":"
            && toks[i + 2].text == ":"
            && (toks[i + 3].text == "get_mut" || toks[i + 3].text == "make_mut")
        {
            let line = toks[i].line;
            if lx.waived(line, "DA704") {
                used.push((line, "DA704".to_string()));
            } else {
                out.push(Finding::new(
                    "DA704",
                    Severity::Error,
                    PASS,
                    format!("{rel}:{line}"),
                    format!(
                        "`{}::{}` mutates shared state without a guard — uniqueness is a runtime accident here, not an invariant",
                        toks[i].text,
                        toks[i + 3].text
                    ),
                ));
            }
            i += 4;
            continue;
        }
        i += 1;
    }
    used
}

/// Parse every named-field struct declaration (test regions
/// excluded). Tuple structs and enums carry no named shared state and
/// are skipped.
fn parse_structs(toks: &[Token], mask: &[bool]) -> Vec<StructDecl> {
    let mut out = Vec::new();
    let mut i = 0usize;
    let n = toks.len();
    while i < n {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "struct")
            || mask.get(i).copied().unwrap_or(false)
        {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Skip generics between the name and the body.
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut depth = 0i64;
            while j < n {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        match toks.get(j).map(|t| t.text.as_str()) {
            Some("{") => {}
            _ => {
                // Tuple struct or unit struct: no named fields.
                i = j.max(i + 1);
                continue;
            }
        }
        let body_end = matching_brace(toks, j);
        let fields = parse_fields(toks, j + 1, body_end);
        out.push(StructDecl { name: name_tok.text.clone(), fields });
        i = body_end.max(i + 1);
    }
    out
}

/// Parse `name: Type` fields at depth 0 of a struct body
/// (`toks[start..end]`), skipping attributes and visibility
/// modifiers.
fn parse_fields(toks: &[Token], start: usize, end: usize) -> Vec<(String, Vec<String>, u32)> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        // Skip attributes.
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            i = matching_delim(toks, i + 1, "[", "]").map_or(end, |e| e + 1);
            continue;
        }
        // Skip visibility: pub, pub(crate), pub(in …).
        if toks[i].text == "pub" {
            i += 1;
            if toks.get(i).is_some_and(|t| t.text == "(") {
                i = matching_delim(toks, i, "(", ")").map_or(end, |e| e + 1);
            }
            continue;
        }
        if toks[i].kind == TokKind::Ident && toks.get(i + 1).is_some_and(|t| t.text == ":") {
            let name = toks[i].text.clone();
            let line = toks[i].line;
            // The type runs to the `,` (or end) at bracket depth 0.
            let mut j = i + 2;
            let mut ty = Vec::new();
            let mut angle = 0i64;
            let mut paren = 0i64;
            while j < end {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    "," if angle <= 0 && paren <= 0 => break,
                    _ => {}
                }
                ty.push(toks[j].text.clone());
                j += 1;
            }
            out.push((name, ty, line));
            i = j + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// If a field type is `Mutex<T>` / `RwLock<T>` (optionally path
/// qualified), the head ident of `T` — e.g. `SchedState` out of
/// `Mutex < SchedState < J > >`. `None` for non-guard types.
fn guard_inner_type(ty: &[String]) -> Option<String> {
    // Head of the type path: the last ident before the first `<`.
    let lt = ty.iter().position(|t| t == "<")?;
    let head = ty[..lt].iter().rev().find(|t| t.chars().next().is_some_and(char::is_alphabetic))?;
    if head != "Mutex" && head != "RwLock" {
        return None;
    }
    // First ident inside the angle brackets is the wrapped type's
    // path head (skipping lifetimes and `dyn`).
    ty[lt + 1..]
        .iter()
        .find(|t| {
            t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
                && *t != "dyn"
                && !t.starts_with('\'')
        })
        .cloned()
}

/// Index of the matching `}` for the `{` at `open` (token index of
/// the closer; `toks.len()` when unbalanced).
fn matching_brace(toks: &[Token], open: usize) -> usize {
    matching_delim(toks, open, "{", "}").unwrap_or(toks.len())
}

fn matching_delim(toks: &[Token], open: usize, o: &str, c: &str) -> Option<usize> {
    if toks.get(open).map(|t| t.text.as_str()) != Some(o) {
        return None;
    }
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

/// The signature tokens of a fn (between the name and the body),
/// rendered as text — used for the parameter-typed-as-owner
/// exemption and guard-helper detection.
fn fn_signature(toks: &[Token], f: &syntax::FnItem) -> Vec<String> {
    if f.body.is_empty() {
        return Vec::new();
    }
    // Walk back from the body to the `fn` keyword.
    let mut start = f.body.start.saturating_sub(1);
    while start > 0 && !(toks[start].kind == TokKind::Ident && toks[start].text == "fn") {
        start -= 1;
    }
    toks[start..f.body.start.saturating_sub(1).max(start)]
        .iter()
        .map(|t| t.text.clone())
        .collect()
}

/// `impl` regions per type name: (type, token range of the impl
/// body). Handles `impl T`, `impl<G> T<G>`, and `impl Trait for T`.
fn impl_regions(toks: &[Token]) -> Vec<(String, std::ops::Range<usize>)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    let n = toks.len();
    while i < n {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "impl") {
            i += 1;
            continue;
        }
        // Header runs to the opening `{`.
        let mut j = i + 1;
        let mut header: Vec<&Token> = Vec::new();
        let mut angle = 0i64;
        while j < n && !(angle == 0 && toks[j].text == "{") {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            header.push(&toks[j]);
            j += 1;
        }
        if j >= n {
            break;
        }
        // Target path: after `for` when present, else the whole
        // header; its name is the first ident at angle depth 0.
        let for_at = header.iter().position(|t| t.kind == TokKind::Ident && t.text == "for");
        let target = &header[for_at.map_or(0, |k| k + 1)..];
        let mut angle = 0i64;
        let mut name = None;
        for t in target {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {
                    if angle == 0 && t.kind == TokKind::Ident {
                        name = Some(t.text.clone());
                        // Path-qualified targets: keep the last
                        // segment by continuing through `::`.
                    }
                    if angle == 0 && t.kind == TokKind::Ident && name.is_some() {
                        // First depth-0 ident after skipping impl
                        // generics is the target head; generic args
                        // come after and sit at depth > 0.
                        break;
                    }
                }
            }
        }
        let body_end = matching_brace(toks, j);
        if let Some(name) = name {
            out.push((name, j + 1..body_end));
        }
        i = body_end.max(i + 1);
    }
    out
}

/// An active guard during a body walk.
struct Guard {
    lock: String,
    var: Option<String>,
    depth: i64,
    temp: bool,
    /// Block depth at which a `drop(var)` suspended the guard. A drop
    /// inside a nested block (typically a diverging early-return arm,
    /// `if full { drop(s); return Err(..) }`) only holds within that
    /// block: the fall-through path past the `}` still owns the lock,
    /// so the guard resurrects when the block exits. A drop at the
    /// binding's own depth is final.
    dropped_at: Option<i64>,
}

/// A lock acquisition recognized during the walk.
struct Acq {
    /// Guard (lock field) name.
    name: String,
    /// Token index of the acquisition's first token (for `let`
    /// binding detection).
    at: usize,
    /// Index to resume scanning from.
    resume: usize,
}

#[allow(clippy::too_many_arguments)] // internal walker: the state is the pass
fn walk_fn(
    toks: &[Token],
    body: std::ops::Range<usize>,
    field_owner: &HashMap<String, Protected>,
    helper_methods: &HashMap<String, String>,
    sig: &[String],
    impls: &[(String, std::ops::Range<usize>)],
    lx: &syntax::Lexed,
    acquired: &mut HashSet<String>,
    totals: &mut FileStats,
    witnesses: &mut HashMap<String, Vec<u32>>,
    violations: &mut Vec<(String, Protected, u32)>,
    used: &mut Vec<(u32, String)>,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i64;
    let end = body.end.min(toks.len());
    let mut i = body.start;
    while i < end {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                for g in guards.iter_mut() {
                    if g.dropped_at.is_some_and(|d| d > depth) {
                        g.dropped_at = None;
                    }
                }
            }
            ";" => guards.retain(|g| !g.temp),
            _ => {}
        }

        if t.kind == TokKind::Ident
            && t.text == "drop"
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Ident {
                    for g in guards.iter_mut() {
                        if g.var.as_deref() == Some(arg.text.as_str()) {
                            g.dropped_at.get_or_insert(depth);
                        }
                    }
                }
            }
        }

        if let Some(acq) = acquisition_at(toks, i, end, helper_methods, acquired) {
            let bound = bound_var(toks, acq.at, body.start);
            guards.push(Guard {
                lock: acq.name,
                var: bound.clone(),
                depth,
                temp: bound.is_none(),
                dropped_at: None,
            });
            i = acq.resume;
            continue;
        }

        // A protected-field access: `recv.field` not followed by `(`
        // (method calls are not field accesses).
        if t.kind == TokKind::Ident
            && i > 0
            && toks[i - 1].text == "."
            && !toks.get(i + 1).is_some_and(|n| n.text == "(" || n.text == "!")
        {
            if let Some(p) = field_owner.get(&t.text) {
                totals.accesses += 1;
                let covered = guards
                    .iter()
                    .any(|g| g.lock == p.guard && g.dropped_at.is_none())
                    || impls.iter().any(|(owner, r)| owner == &p.owner && r.contains(&i))
                    || sig.iter().any(|s| s == &p.owner);
                if covered {
                    witnesses.entry(t.text.clone()).or_default().push(t.line);
                } else if lx.waived(t.line, "DA701") {
                    used.push((t.line, "DA701".to_string()));
                } else {
                    violations.push((t.text.clone(), p.clone(), t.line));
                }
            }
        }

        i += 1;
    }
}

/// Recognize a lock acquisition at token `i`: the helper form
/// `lock(&…)`, the method forms `recv.lock()` / `recv.read()` /
/// `recv.write()`, and guard-returning helper methods
/// (`self.lock()` where `lock` returns a `MutexGuard<…, Protected>`).
/// Every candidate lock name is also fed to the `acquired` set for
/// the dead-lock check.
fn acquisition_at(
    toks: &[Token],
    i: usize,
    end: usize,
    helper_methods: &HashMap<String, String>,
    acquired: &mut HashSet<String>,
) -> Option<Acq> {
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    let dotted = i > 0 && toks[i - 1].text == ".";
    let called = toks.get(i + 1).is_some_and(|n| n.text == "(");

    // Helper form: lock(&self.spans) — name is the last ident inside
    // the parens outside any `[...]` index expression.
    if t.text == "lock" && called && !dotted {
        let mut j = i + 1;
        let mut paren = 0i64;
        let mut bracket = 0i64;
        let mut name = None;
        while j < end {
            match toks[j].text.as_str() {
                "(" => paren += 1,
                ")" => {
                    paren -= 1;
                    if paren == 0 {
                        break;
                    }
                }
                "[" => bracket += 1,
                "]" => bracket -= 1,
                _ => {
                    if toks[j].kind == TokKind::Ident {
                        acquired.insert(toks[j].text.clone());
                        if bracket == 0 {
                            name = Some(toks[j].text.clone());
                        }
                    }
                }
            }
            j += 1;
        }
        return name.map(|name| Acq { name, at: i, resume: j.max(i + 1) });
    }

    // Method forms: recv.lock(), recv.read(), recv.write() with empty
    // args, and guard-returning helper methods on self.
    if dotted && called && toks.get(i + 2).is_some_and(|n| n.text == ")") {
        let recv = toks.get(i.wrapping_sub(2))?;
        if recv.kind != TokKind::Ident {
            return None;
        }
        if matches!(t.text.as_str(), "lock" | "read" | "write") {
            acquired.insert(recv.text.clone());
            // `self.lock()` through a guard-returning helper resolves
            // to the helper's guard, not to "self".
            if let Some(guard) = helper_methods.get(&t.text) {
                if recv.text == "self" {
                    acquired.insert(guard.clone());
                    return Some(Acq { name: guard.clone(), at: i.wrapping_sub(2), resume: i + 3 });
                }
            }
            if t.text == "lock" {
                return Some(Acq {
                    name: recv.text.clone(),
                    at: i.wrapping_sub(2),
                    resume: i + 3,
                });
            }
            return None;
        }
        if let Some(guard) = helper_methods.get(&t.text) {
            if recv.text == "self" {
                acquired.insert(guard.clone());
                return Some(Acq { name: guard.clone(), at: i.wrapping_sub(2), resume: i + 3 });
            }
        }
    }
    None
}

/// If the acquisition starting at token `at` is the RHS of
/// `let [mut] NAME = …`, return NAME (the guard is block-scoped).
fn bound_var(toks: &[Token], at: usize, floor: usize) -> Option<String> {
    let eq = at.checked_sub(1)?;
    if toks.get(eq)?.text != "=" {
        return None;
    }
    let name = at.checked_sub(2)?;
    let name_tok = toks.get(name)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let kw = at.checked_sub(3)?;
    let kw_tok = toks.get(kw)?;
    let is_let = kw_tok.text == "let"
        || (kw_tok.text == "mut"
            && at.checked_sub(4).and_then(|k| toks.get(k)).is_some_and(|t| t.text == "let"));
    if is_let && name >= floor {
        Some(name_tok.text.clone())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let dir = std::env::temp_dir().join(format!(
            "das-lockset-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let src = dir.join("crates/das-net/src");
        std::fs::create_dir_all(&src).unwrap();
        for (name, body) in files {
            std::fs::write(src.join(name), body).unwrap();
        }
        let out = run(&dir);
        std::fs::remove_dir_all(&dir).ok();
        out
    }

    const GUARDED: &str = "\
struct Inner { items: Vec<u32>, total: u64 }
struct Store { inner: Mutex<Inner> }
impl Store {
    fn push(&self, v: u32) {
        let mut inner = lock(&self.inner);
        inner.items.push(v);
        inner.total += 1;
    }
}
";

    #[test]
    fn guarded_accesses_are_clean_with_a_proof_record() {
        let out = run_on(&[("store.rs", GUARDED)]);
        assert!(!out.iter().any(|f| f.severity != Severity::Info), "{out:?}");
        let proof = out.iter().find(|f| f.code == "DA705").expect("proof record");
        assert!(proof.message.contains("`inner` protects `Inner`"), "{}", proof.message);
        assert!(proof.message.contains("items"), "{}", proof.message);
    }

    #[test]
    fn unguarded_access_is_da701_with_witness() {
        let src = "\
struct Inner { items: Vec<u32> }
struct Store { inner: Mutex<Inner>, raw: Inner }
impl Store {
    fn good(&self) {
        let inner = lock(&self.inner);
        inner.items.len();
    }
    fn bad(&self) {
        self.raw.items.push(1);
    }
}
";
        let out = run_on(&[("store.rs", src)]);
        let f = out.iter().find(|f| f.code == "DA701").expect("DA701");
        assert!(f.message.contains("items"), "{}", f.message);
        assert!(f.message.contains("guarded accesses elsewhere"), "{}", f.message);
    }

    #[test]
    fn impl_of_protected_struct_is_exempt() {
        let src = "\
struct Inner { items: Vec<u32> }
struct Store { inner: Mutex<Inner> }
impl Inner {
    fn count(&self) -> usize { self.items.len() }
}
";
        let out = run_on(&[("store.rs", src)]);
        assert!(!out.iter().any(|f| f.code == "DA701"), "{out:?}");
    }

    #[test]
    fn guard_returning_helper_resolves() {
        let src = "\
struct Inner { counters: Vec<u32> }
struct Registry { inner: Mutex<Inner> }
impl Registry {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> { self.inner.lock().unwrap() }
    fn bump(&self) { self.lock().counters.push(1); }
    fn encode(&self) { let inner = self.lock(); inner.counters.len(); }
}
";
        let out = run_on(&[("metrics.rs", src)]);
        assert!(!out.iter().any(|f| f.code == "DA701"), "{out:?}");
    }

    #[test]
    fn dead_lock_is_da703_and_waivable() {
        let src = "\
struct A { used: Mutex<Vec<u32>>, idle: Mutex<Vec<u32>> }
fn f(a: &A) { let g = lock(&a.used); g.len(); }
";
        let out = run_on(&[("a.rs", src)]);
        let f = out.iter().find(|f| f.code == "DA703").expect("DA703 {out:?}");
        assert!(f.message.contains("idle"), "{}", f.message);
        let waived = "\
struct A { used: Mutex<Vec<u32>>,
    // das-lint: allow(DA703) poison-only fallback lock, acquired via ffi shim
    idle: Mutex<Vec<u32>> }
fn f(a: &A) { let g = lock(&a.used); g.len(); }
";
        let out = run_on(&[("a.rs", waived)]);
        assert!(!out.iter().any(|f| f.code == "DA703"), "{out:?}");
    }

    #[test]
    fn ambiguous_double_guard_is_da702() {
        let src = "\
struct Inner { items: Vec<u32> }
struct Store { a: Mutex<Inner>, b: Mutex<Inner> }
fn f(s: &Store) { let g = lock(&s.a); let h = lock(&s.b); }
";
        let out = run_on(&[("s.rs", src)]);
        assert!(out.iter().any(|f| f.code == "DA702"), "{out:?}");
        assert!(!out.iter().any(|f| f.code == "DA701"), "ambiguous structs are skipped: {out:?}");
    }

    #[test]
    fn arc_get_mut_is_da704() {
        let src = "\
struct Inner { items: Vec<u32> }
struct Store { inner: Mutex<Inner> }
fn f(s: &mut std::sync::Arc<Vec<u32>>) {
    let v = Arc::get_mut(s).unwrap();
    let g = lock(&self.inner);
}
";
        let out = run_on(&[("s.rs", src)]);
        assert!(out.iter().any(|f| f.code == "DA704"), "{out:?}");
    }

    #[test]
    fn stale_waiver_is_da430() {
        let src = "\
struct Inner { items: Vec<u32> }
struct Store { inner: Mutex<Inner> }
fn f(s: &Store) {
    // das-lint: allow(DA701) nothing here actually needs this
    let g = lock(&s.inner);
    g.items.len();
}
";
        let out = run_on(&[("s.rs", src)]);
        assert!(out.iter().any(|f| f.code == "DA430"), "{out:?}");
    }

    #[test]
    fn temp_guard_and_scope_rules_hold() {
        let src = "\
struct Inner { staged: Vec<u32> }
struct Store { inner: Mutex<Inner> }
impl Store {
    fn temp(&self) { lock(&self.inner).staged.push(1); }
    fn scoped(&self) {
        { let g = lock(&self.inner); g.staged.len(); }
        self.after();
    }
    fn escaped(&self) {
        let g = lock(&self.inner);
        drop(g);
        self.probe.staged.len();
    }
}
";
        let out = run_on(&[("s.rs", src)]);
        // temp + scoped are guarded; the post-drop access is not.
        let v: Vec<&Finding> = out.iter().filter(|f| f.code == "DA701").collect();
        assert_eq!(v.len(), 1, "{out:?}");
        assert!(v[0].entity.contains("s.rs:12"), "{v:?}");
    }
}
