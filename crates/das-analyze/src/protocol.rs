//! Pass 2 — wire-protocol conformance and spec-drift detection.
//!
//! The wire half runs entirely in memory: every message variant
//! ([`Message::samples`]) is encoded and decoded under every assigned
//! frame-flag combination, every unassigned opcode and flag bit is
//! probed for rejection, and the capability constants are checked to
//! cover the frame flags they negotiate. The doc half parses the
//! tables in `docs/PROTOCOL.md` — the protocol's source of truth for
//! humans — and fails when the spec and the code disagree on an
//! opcode, an error code, or a fault class.
//!
//! Finding codes:
//!
//! * `DA201` (error) — a message fails its encode/decode roundtrip
//!   under some framing, or the sample set does not cover the known
//!   opcode table.
//! * `DA202` (error) — a frame with an unassigned opcode decodes
//!   instead of being rejected with a typed error.
//! * `DA203` (error) — a frame with an unassigned flag bit is
//!   accepted instead of rejected.
//! * `DA204` (error) — the capability constants do not cover the
//!   frame flags (a peer could negotiate a flag no cap gates).
//! * `DA205` (error) — `docs/PROTOCOL.md` RPC table drift: opcode or
//!   message-name mismatch against the code, or a documented opcode
//!   the code does not implement.
//! * `DA206` (error) — `docs/PROTOCOL.md` error-code table drift
//!   against [`ErrorCode::ALL`].
//! * `DA207` (error) — a fault class enumerated in the code is not
//!   documented in `docs/PROTOCOL.md`.

use std::collections::BTreeMap;
use std::io::Cursor;
use std::path::Path;

use das_net::fault::FaultClass;
use das_net::proto::{ErrorCode, Message, HEADER_LEN, MAGIC, VERSION};
use das_net::{
    encode_frame_opts, read_frame, read_frame_ex, CAP_CRC, CAP_DEADLINE, CAP_TRACE, FLAG_CRC,
    FLAG_DEADLINE, FLAG_TRACE, KNOWN_FLAGS, KNOWN_OPCODES, LOCAL_CAPS,
};

use crate::finding::{Finding, Severity};

const PASS: &str = "protocol";

/// Run the pass. The wire sweep is root-independent; the drift checks
/// read `docs/PROTOCOL.md` under `root`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let samples = Message::samples();
    check_sample_coverage(&samples, &mut out);
    check_roundtrips(&samples, &mut out);
    check_unknown_opcodes(&mut out);
    check_unknown_flags(&mut out);
    check_caps_cover_flags(&mut out);
    let wire_clean = out.is_empty();
    check_protocol_doc(root, &samples, &mut out);
    if wire_clean {
        out.push(Finding::new(
            "DA200",
            Severity::Info,
            PASS,
            "das-net wire protocol",
            format!(
                "{} message variants roundtripped under {} framings; {} unassigned opcodes and {} unassigned flag bits rejected",
                samples.len(),
                5,
                256 - KNOWN_OPCODES.len(),
                16 - KNOWN_FLAGS.count_ones()
            ),
        ));
    }
    out
}

/// The variant name of a message, from its Debug rendering — e.g.
/// `Hello { … }` → `Hello`. This is what the PROTOCOL.md RPC table
/// spells in its `message` column.
pub fn variant_name(msg: &Message) -> String {
    let dbg = format!("{msg:?}");
    dbg.split([' ', '{', '('])
        .next()
        .unwrap_or_default()
        .to_string()
}

fn check_sample_coverage(samples: &[Message], out: &mut Vec<Finding>) {
    let mut sample_ops: Vec<u8> = samples.iter().map(Message::opcode).collect();
    sample_ops.sort_unstable();
    sample_ops.dedup();
    let mut known = KNOWN_OPCODES.to_vec();
    known.sort_unstable();
    if sample_ops != known {
        out.push(Finding::new(
            "DA201",
            Severity::Error,
            PASS,
            "Message::samples",
            format!(
                "sample set covers opcodes {sample_ops:02x?} but KNOWN_OPCODES declares {known:02x?} — a variant was added without extending the conformance sweep"
            ),
        ));
    }
}

/// Every sample × five framings: the (trace × deadline-budget) CRC
/// frame combinations, plus the negotiated-downgrade frame with no
/// CRC trailer.
fn check_roundtrips(samples: &[Message], out: &mut Vec<Finding>) {
    for msg in samples {
        let entity = format!("opcode 0x{:02x} ({})", msg.opcode(), variant_name(msg));
        for trace in [None, Some(0x0102_0304_0506_0708u64)] {
            for budget in [None, Some(750u32)] {
                let frame = encode_frame_opts(msg, trace, budget);
                match read_frame_ex(&mut Cursor::new(frame)) {
                    Ok(Some(f)) if f.msg == *msg && f.trace == trace && f.budget_ms == budget => {}
                    other => out.push(Finding::new(
                        "DA201",
                        Severity::Error,
                        PASS,
                        entity.clone(),
                        format!("roundtrip with trace={trace:?} budget={budget:?} failed: {other:?}"),
                    )),
                }
            }
        }
        let bare = raw_frame(msg.opcode(), 0, &msg.encode_payload());
        match read_frame(&mut Cursor::new(bare)) {
            Ok(Some((back, None))) if back == *msg => {}
            other => out.push(Finding::new(
                "DA201",
                Severity::Error,
                PASS,
                entity,
                format!("CRC-less (downgraded) roundtrip failed: {other:?}"),
            )),
        }
    }
}

/// A syntactically valid frame with arbitrary opcode/flags and no CRC
/// trailer — the probe shape for rejection tests.
fn raw_frame(opcode: u8, flags: u16, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(opcode);
    frame.extend_from_slice(&flags.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

fn check_unknown_opcodes(out: &mut Vec<Finding>) {
    for opcode in 0u8..=255 {
        if KNOWN_OPCODES.contains(&opcode) {
            continue;
        }
        let frame = raw_frame(opcode, 0, &[]);
        if let Ok(Some((msg, _))) = read_frame(&mut Cursor::new(frame)) {
            out.push(Finding::new(
                "DA202",
                Severity::Error,
                PASS,
                format!("opcode 0x{opcode:02x}"),
                format!(
                    "unassigned opcode decodes as {} instead of being rejected with a typed error",
                    variant_name(&msg)
                ),
            ));
        }
    }
}

fn check_unknown_flags(out: &mut Vec<Finding>) {
    for bit in 0..16u16 {
        let flag = 1 << bit;
        if flag & KNOWN_FLAGS != 0 {
            continue;
        }
        let frame = raw_frame(0x50 /* Ping */, flag, &[]);
        if let Ok(Some(_)) = read_frame(&mut Cursor::new(frame)) {
            out.push(Finding::new(
                "DA203",
                Severity::Error,
                PASS,
                format!("frame flag 0x{flag:04x}"),
                "unassigned flag bit accepted — a future protocol extension would be silently misread by this build".to_string(),
            ));
        }
    }
}

fn check_caps_cover_flags(out: &mut Vec<Finding>) {
    let pairs = [
        ("FLAG_CRC", FLAG_CRC, "CAP_CRC", CAP_CRC),
        ("FLAG_TRACE", FLAG_TRACE, "CAP_TRACE", CAP_TRACE),
        ("FLAG_DEADLINE", FLAG_DEADLINE, "CAP_DEADLINE", CAP_DEADLINE),
    ];
    for (flag_name, flag, cap_name, cap) in pairs {
        if KNOWN_FLAGS & flag == 0 {
            out.push(Finding::new(
                "DA204",
                Severity::Error,
                PASS,
                flag_name,
                format!("{flag_name} is not part of KNOWN_FLAGS"),
            ));
        }
        if LOCAL_CAPS & cap == 0 {
            out.push(Finding::new(
                "DA204",
                Severity::Error,
                PASS,
                cap_name,
                format!("{cap_name} is not advertised in LOCAL_CAPS, but this build emits frames using {flag_name}"),
            ));
        }
    }
    // Extra caps beyond the frame flags are legal — `CAP_SPANS` gates
    // opcodes, not a frame field — but a frame flag *without* a
    // negotiating cap can never be downgraded for legacy peers.
    if KNOWN_FLAGS.count_ones() > LOCAL_CAPS.count_ones() {
        out.push(Finding::new(
            "DA204",
            Severity::Error,
            PASS,
            "LOCAL_CAPS",
            format!(
                "{} frame flags vs {} advertised caps — a flag without a negotiating capability cannot be downgraded for legacy peers",
                KNOWN_FLAGS.count_ones(),
                LOCAL_CAPS.count_ones()
            ),
        ));
    }
}

/// A markdown table cell like `` `0x01` `` or `` `Hello` `` with the
/// backticks stripped; `None` when the cell is not a single code span.
fn code_span(cell: &str) -> Option<&str> {
    let cell = cell.trim();
    cell.strip_prefix('`')?.strip_suffix('`')
}

/// Extract `(opcode, name)` rows from the RPC table and
/// `(code, name)` rows from the error table of PROTOCOL.md.
fn parse_doc_tables(doc: &str) -> (BTreeMap<u8, String>, BTreeMap<u16, String>) {
    let mut rpc = BTreeMap::new();
    let mut errors = BTreeMap::new();
    for line in doc.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').collect();
        if cells.len() < 2 {
            continue;
        }
        if let (Some(op), Some(name)) = (code_span(cells[0]), cells.get(1).and_then(|c| code_span(c))) {
            if let Some(hex) = op.strip_prefix("0x") {
                if let Ok(opcode) = u8::from_str_radix(hex, 16) {
                    rpc.insert(opcode, name.to_string());
                }
            }
        } else if let (Ok(code), Some(name)) =
            (cells[0].trim().parse::<u16>(), cells.get(1).and_then(|c| code_span(c)))
        {
            errors.insert(code, name.to_string());
        }
    }
    (rpc, errors)
}

fn check_protocol_doc(root: &Path, samples: &[Message], out: &mut Vec<Finding>) {
    let rel = "docs/PROTOCOL.md";
    let path = root.join(rel);
    let doc = match std::fs::read_to_string(&path) {
        Ok(doc) => doc,
        Err(e) => {
            out.push(Finding::new(
                "DA205",
                Severity::Error,
                PASS,
                rel,
                format!("cannot read the protocol spec: {e} — wire constants are unverifiable against it"),
            ));
            return;
        }
    };
    let (rpc, errors) = parse_doc_tables(&doc);

    // RPC table ↔ Message variants.
    for msg in samples {
        let opcode = msg.opcode();
        let name = variant_name(msg);
        match rpc.get(&opcode) {
            None => out.push(Finding::new(
                "DA205",
                Severity::Error,
                PASS,
                format!("{rel}: opcode 0x{opcode:02x}"),
                format!("message {name} (opcode 0x{opcode:02x}) is not documented in the RPC table"),
            )),
            Some(doc_name) if doc_name != &name => out.push(Finding::new(
                "DA205",
                Severity::Error,
                PASS,
                format!("{rel}: opcode 0x{opcode:02x}"),
                format!("RPC table names opcode 0x{opcode:02x} `{doc_name}`, but the code implements `{name}`"),
            )),
            Some(_) => {}
        }
    }
    for (&opcode, doc_name) in &rpc {
        if !KNOWN_OPCODES.contains(&opcode) {
            out.push(Finding::new(
                "DA205",
                Severity::Error,
                PASS,
                format!("{rel}: opcode 0x{opcode:02x}"),
                format!("RPC table documents `{doc_name}` at opcode 0x{opcode:02x}, which the code does not implement"),
            ));
        }
    }

    // Error table ↔ ErrorCode::ALL (wire codes are dense from 1).
    for (i, code) in ErrorCode::ALL.iter().enumerate() {
        let wire = (i + 1) as u16;
        match errors.get(&wire) {
            None => out.push(Finding::new(
                "DA206",
                Severity::Error,
                PASS,
                format!("{rel}: error code {wire}"),
                format!("error code {wire} (`{}`) is not documented in the error table", code.name()),
            )),
            Some(doc_name) if doc_name != code.name() => out.push(Finding::new(
                "DA206",
                Severity::Error,
                PASS,
                format!("{rel}: error code {wire}"),
                format!("error table names code {wire} `{doc_name}`, but the code implements `{}`", code.name()),
            )),
            Some(_) => {}
        }
    }
    for &wire in errors.keys() {
        if wire == 0 || wire as usize > ErrorCode::ALL.len() {
            out.push(Finding::new(
                "DA206",
                Severity::Error,
                PASS,
                format!("{rel}: error code {wire}"),
                format!("error table documents code {wire}, which the code does not implement"),
            ));
        }
    }

    // Fault classes must all appear (as code spans) in the spec's
    // fault-injection grammar.
    for class in FaultClass::ALL {
        let span = format!("`{}`", class.name());
        if !doc.contains(&span) {
            out.push(Finding::new(
                "DA207",
                Severity::Error,
                PASS,
                format!("{rel}: fault class {}", class.name()),
                format!("fault class `{}` is accepted by `dasd --fault` but not documented", class.name()),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sweep_is_clean_in_this_build() {
        let samples = Message::samples();
        let mut out = Vec::new();
        check_sample_coverage(&samples, &mut out);
        check_roundtrips(&samples, &mut out);
        check_unknown_opcodes(&mut out);
        check_unknown_flags(&mut out);
        check_caps_cover_flags(&mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn variant_names_match_doc_spelling() {
        let samples = Message::samples();
        let names: Vec<String> = samples.iter().map(variant_name).collect();
        assert!(names.contains(&"Hello".to_string()), "{names:?}");
        assert!(names.contains(&"GetStrip".to_string()), "{names:?}");
        assert!(names.contains(&"Error".to_string()), "{names:?}");
    }

    #[test]
    fn doc_tables_parse_and_drift_is_detected() {
        let doc = "\
| opcode | message | payload | reply |
|---|---|---|---|
| `0x50` | `Ping` | empty | `0x51` |
| `0x51` | `Pong` | empty | — |

| code | name | meaning |
|---|---|---|
| 1 | `NoSuchFile` | unknown file |
| 2 | `WrongName` | drifted |
";
        let (rpc, errors) = parse_doc_tables(doc);
        assert_eq!(rpc.get(&0x50).map(String::as_str), Some("Ping"));
        assert_eq!(rpc.get(&0x51).map(String::as_str), Some("Pong"));
        assert_eq!(errors.get(&2).map(String::as_str), Some("WrongName"));
    }

    #[test]
    fn doctored_spec_fails_the_pass() {
        // A spec that misnames an opcode must produce DA205 findings.
        let samples = Message::samples();
        let mut out = Vec::new();
        // Simulate by parsing a tiny doc: every undocumented opcode
        // fires DA205, so a truncated spec cannot pass silently.
        let dir = Path::new("/nonexistent-das-analyze-root");
        check_protocol_doc(dir, &samples, &mut out);
        assert!(out.iter().any(|f| f.code == "DA205"), "{out:?}");
    }
}
