//! Pass — bounded protocol model checker (`DA6xx`).
//!
//! Exhaustively explores the client↔daemon session state machine —
//! Hello/HelloOk caps negotiation × CRC/trace framing × retry/backoff
//! × circuit-breaker open/half-open/closed × the DAS → NAS → TS
//! degradation ladder — by breadth-first search over a bounded
//! abstract state (logical clock, attempt counter, breaker deadline,
//! server-side create count). The abstraction covers the *ordering*;
//! the *artifacts* are real: every frame shape a session can put on
//! the wire is encoded and decoded through the production
//! [`das_net::codec`] (including legacy CRC-less framing and a
//! corrupted-CRC probe), and every retry step prices its clock
//! advance with the production [`RetryPolicy::backoff`], whose cap
//! and floor are asserted per call.
//!
//! Invariants checked on every transition (BFS ⇒ a violation's
//! counterexample trace is minimal):
//!
//! * `DA601` — **liveness**: no stuck non-terminal state below the
//!   clock bound, and the ladder never gives up without the
//!   guaranteed-success normal-I/O (TS) rung.
//! * `DA602` — **CreateFile idempotence**: a retransmitted
//!   `CreateFile` (ack lost) must not create a second file.
//! * `DA603` — **breaker recoverability**: once a breaker's cooldown
//!   expires, a half-open probe must be offered — a rebooted peer
//!   rejoins.
//! * `DA604` — **frame discipline**: every frame round-trips through
//!   the real codec; `FLAG_TRACE` is never sent to a peer that did
//!   not advertise `CAP_TRACE`; negotiated caps are monotone (never
//!   exceed either side's advertisement); a corrupted CRC frame is
//!   rejected.
//! * `DA605` — **ladder order**: degradation descends one rung at a
//!   time, DAS → NAS → TS.
//! * `DA606` — **retry discipline**: the retry loop never exceeds
//!   `max_attempts`, and each real backoff respects the configured
//!   cap and floor.
//!
//! `DA600` (info) reports the explored-state count. Seeded defects —
//! read from `<root>/analyze/model-defects.txt`, one name per line —
//! mutate the model the way a regression would mutate the code, and
//! each must produce a counterexample (reported as the matching
//! `DA60x` error); a defect that explores clean is `DA607` drift.
//! The real repository ships no defect file, so the pass is clean.

use std::collections::{HashMap, VecDeque};
use std::path::Path;

use das_net::codec::{encode_frame_traced, read_frame, FLAG_CRC};
use das_net::proto::{Message, Role, CAP_CRC, CAP_TRACE};
use das_net::RetryPolicy;
use das_pfs::LayoutPolicy;

use crate::finding::{Finding, Severity};

const PASS: &str = "model";

/// Logical-clock bound. States at the bound are exploration frontier,
/// exempt from the stuck-state check.
const CLOCK_MAX: u8 = 12;
/// Breaker cooldown in logical ticks.
const COOLDOWN: u8 = 3;
/// Trace id used for traced frames.
const TRACE_ID: u64 = 0xDA5_0BEEF;

/// Seeded defects: each mutates the model the way a code regression
/// would, and must be caught by exactly one invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Defect {
    /// Server assigns a fresh file id to a retransmitted CreateFile.
    DupCreate,
    /// Breaker never half-opens after its cooldown.
    NoHalfOpen,
    /// Sender attaches FLAG_TRACE without the negotiated capability.
    FlagUnnegotiated,
    /// Degradation jumps DAS → TS, skipping NAS.
    LadderSkip,
    /// Client gives up after NAS instead of falling back to TS.
    NoTsFallback,
    /// Retry loop ignores the attempt budget.
    RetryUnbounded,
}

impl Defect {
    fn parse(name: &str) -> Option<Defect> {
        Some(match name {
            "create-file-dup-id" => Defect::DupCreate,
            "breaker-no-half-open" => Defect::NoHalfOpen,
            "flag-unnegotiated" => Defect::FlagUnnegotiated,
            "ladder-skip" => Defect::LadderSkip,
            "no-ts-fallback" => Defect::NoTsFallback,
            "retry-unbounded" => Defect::RetryUnbounded,
            _ => return None,
        })
    }
}

/// One model configuration: advertised caps on each side, the retry
/// policy under test, and an optional seeded defect.
struct Cfg {
    ccaps: u32,
    scaps: u32,
    policy: RetryPolicy,
    defect: Option<Defect>,
}

impl Cfg {
    fn negotiated(&self) -> u32 {
        self.ccaps & self.scaps
    }
}

/// Degradation rung of the Fig. 3 ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Rung {
    Das,
    Nas,
    Ts,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    Run,
    Done,
    Failed,
}

/// Abstract session state. Small and hashable — BFS dedups on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    phase: Phase,
    /// 0 = Hello, 1 = CreateFile, 2 = PutStrip, 3 = execute ladder.
    op: u8,
    rung: Rung,
    attempt: u8,
    clock: u8,
    /// 0 = breaker closed; otherwise the tick the cooldown expires.
    breaker_until: u8,
    /// Server-side file count for the one name created (capped at 2).
    files: u8,
    create_acked: bool,
}

impl State {
    fn init() -> State {
        State {
            phase: Phase::Run,
            op: 0,
            rung: Rung::Das,
            attempt: 0,
            clock: 0,
            breaker_until: 0,
            files: 0,
            create_acked: false,
        }
    }
}

/// A violated invariant with its minimal counterexample.
#[derive(Debug)]
struct Violation {
    code: &'static str,
    message: String,
    trace: Vec<String>,
}

/// One transition out of a state.
struct Succ {
    label: String,
    next: State,
    violation: Option<(&'static str, String)>,
}

fn succ(label: impl Into<String>, next: State) -> Succ {
    Succ { label: label.into(), next, violation: None }
}

fn violation(label: impl Into<String>, next: State, code: &'static str, msg: String) -> Succ {
    Succ { label: label.into(), next, violation: Some((code, msg)) }
}

/// Exploration result for one configuration.
struct Explored {
    states: usize,
    transitions: usize,
    frames: usize,
    violation: Option<Violation>,
}

/// The exploration grid: the production default and the chaos-test
/// retry policy, each under three jitter seeds (distinct real
/// backoff streams), crossed with every caps combination.
fn grids() -> (Vec<RetryPolicy>, Vec<(u32, u32)>) {
    let policies: Vec<RetryPolicy> = [0x05ee_dda5u64, 0xDA5, 1]
        .iter()
        .flat_map(|&seed| {
            let fast = RetryPolicy { jitter_seed: seed, ..RetryPolicy::fast() };
            let def = RetryPolicy { jitter_seed: seed, ..RetryPolicy::default() };
            [fast, def]
        })
        .collect();
    let caps_grid: Vec<(u32, u32)> = (0..4u32)
        .flat_map(|c| (0..4u32).map(move |s| (c, s)))
        .collect();
    (policies, caps_grid)
}

/// Total states and transitions explored by the defect-free grid —
/// the baseline the pipelined model (`pipemodel`) must meet or
/// exceed.
#[cfg(test)]
pub(crate) fn baseline_counts() -> (usize, usize) {
    let (policies, caps_grid) = grids();
    let mut states = 0usize;
    let mut transitions = 0usize;
    for policy in &policies {
        for &(ccaps, scaps) in &caps_grid {
            let cfg = Cfg { ccaps, scaps, policy: policy.clone(), defect: None };
            let ex = explore(&cfg);
            states += ex.states;
            transitions += ex.transitions;
        }
    }
    (states, transitions)
}

/// Run the model checker against a repository root.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();

    let (policies, caps_grid) = grids();

    // Baseline: every caps combo × every policy, no defect. The real
    // protocol must hold every invariant.
    let mut states = 0usize;
    let mut transitions = 0usize;
    let mut frames = 0usize;
    let mut first_violation: Option<Violation> = None;
    for policy in &policies {
        for &(ccaps, scaps) in &caps_grid {
            let cfg = Cfg { ccaps, scaps, policy: policy.clone(), defect: None };
            let ex = explore(&cfg);
            states += ex.states;
            transitions += ex.transitions;
            frames += ex.frames;
            if first_violation.is_none() {
                first_violation = ex.violation;
            }
        }
    }
    match first_violation {
        None => out.push(Finding::new(
            "DA600",
            Severity::Info,
            PASS,
            "das-net session protocol",
            format!(
                "explored {states} states / {transitions} transitions across {} configurations ({} frame shapes through the real codec); all invariants hold",
                policies.len() * caps_grid.len(),
                frames
            ),
        )),
        Some(v) => out.push(Finding::new(
            v.code,
            Severity::Error,
            PASS,
            "das-net session protocol",
            format!("{} — counterexample: {}", v.message, render_trace(&v.trace)),
        )),
    }

    // Seeded defects: each must produce a counterexample. `pipe-`
    // names belong to the pipelined-session model (the `pipemodel`
    // pass) and are skipped here.
    for name in read_defects(root) {
        if name.starts_with("pipe-") {
            continue;
        }
        let Some(defect) = Defect::parse(&name) else {
            out.push(Finding::new(
                "DA607",
                Severity::Warning,
                PASS,
                "analyze/model-defects.txt",
                format!("unknown defect `{name}` — the defect list and the model drifted"),
            ));
            continue;
        };
        let mut found = None;
        'search: for policy in &policies {
            for &(ccaps, scaps) in &caps_grid {
                let cfg = Cfg { ccaps, scaps, policy: policy.clone(), defect: Some(defect) };
                if let Some(v) = explore(&cfg).violation {
                    found = Some(v);
                    break 'search;
                }
            }
        }
        match found {
            Some(v) => out.push(Finding::new(
                v.code,
                Severity::Error,
                PASS,
                format!("model-defect:{name}"),
                format!("{} — counterexample: {}", v.message, render_trace(&v.trace)),
            )),
            None => out.push(Finding::new(
                "DA607",
                Severity::Warning,
                PASS,
                format!("model-defect:{name}"),
                "seeded defect produced no counterexample — an invariant stopped checking what it claims to".to_string(),
            )),
        }
    }
    out
}

/// The seeded-defect list at `<root>/analyze/model-defects.txt`:
/// trimmed lines, comments and blanks skipped. Shared with the
/// pipelined model, which owns the `pipe-` prefixed names.
pub(crate) fn read_defects(root: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(root.join("analyze/model-defects.txt")) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

fn render_trace(steps: &[String]) -> String {
    let mut s = String::new();
    for (i, step) in steps.iter().enumerate() {
        if i > 0 {
            s.push_str(" → ");
        }
        s.push_str(&format!("[{}] {}", i + 1, step));
    }
    s
}

/// BFS over one configuration's session state machine.
fn explore(cfg: &Cfg) -> Explored {
    let mut ex = Explored { states: 0, transitions: 0, frames: 0, violation: None };

    // The wire layer first: every frame shape this configuration can
    // produce goes through the real codec.
    match wire_checks(cfg) {
        Ok(n) => ex.frames = n,
        Err(v) => {
            ex.violation = Some(v);
            return ex;
        }
    }

    let init = State::init();
    let mut states: Vec<State> = vec![init];
    let mut ids: HashMap<State, usize> = HashMap::from([(init, 0)]);
    // parent[id] = (parent id, label of the arriving transition).
    let mut parent: Vec<Option<(usize, String)>> = vec![None];
    let mut queue: VecDeque<usize> = VecDeque::from([0]);

    let trace_to = |id: usize, parent: &[Option<(usize, String)>], last: Option<String>| {
        let mut steps = Vec::new();
        let mut cur = id;
        while let Some((p, label)) = &parent[cur] {
            steps.push(label.clone());
            cur = *p;
        }
        steps.reverse();
        steps.insert(
            0,
            format!(
                "connect: client caps {:#x}, server caps {:#x} → negotiated {:#x}",
                cfg.ccaps,
                cfg.scaps,
                cfg.negotiated()
            ),
        );
        if let Some(l) = last {
            steps.push(l);
        }
        steps
    };

    while let Some(id) = queue.pop_front() {
        let s = states[id];
        ex.states += 1;
        let succs = successors(&s, cfg);
        if succs.is_empty() && s.phase == Phase::Run && s.clock < CLOCK_MAX {
            ex.violation = Some(Violation {
                code: "DA601",
                message: format!("stuck non-terminal state below the clock bound: {s:?}"),
                trace: trace_to(id, &parent, None),
            });
            return ex;
        }
        for sc in succs {
            ex.transitions += 1;
            if let Some((code, msg)) = sc.violation {
                ex.violation = Some(Violation {
                    code,
                    message: msg,
                    trace: trace_to(id, &parent, Some(sc.label)),
                });
                return ex;
            }
            if let std::collections::hash_map::Entry::Vacant(v) = ids.entry(sc.next) {
                let nid = states.len();
                v.insert(nid);
                states.push(sc.next);
                parent.push(Some((id, sc.label)));
                queue.push_back(nid);
            }
        }
    }
    ex
}

/// All transitions out of `s` under `cfg`, with any violated
/// invariant attached to the offending transition.
fn successors(s: &State, cfg: &Cfg) -> Vec<Succ> {
    let mut out = Vec::new();
    if s.phase != Phase::Run {
        return out;
    }
    match s.op {
        // Hello → HelloOk.
        0 => {
            let mut ok = *s;
            ok.op = 1;
            ok.attempt = 0;
            out.push(succ("hello/hello-ok exchange", ok));
            push_retry(&mut out, s, cfg, "hello frame lost", Exhaust::AbortTyped);
        }
        // CreateFile: the idempotence op. Delivery applies the
        // server-side effect whether or not the ack survives.
        1 => {
            let applied = apply_create(s, cfg);
            let mut ok = applied;
            ok.op = 2;
            ok.attempt = 0;
            ok.create_acked = true;
            out.push(check_create(succ("create-file ok", ok), cfg));
            if let Some(mut retry) = retried(s, cfg) {
                retry.files = applied.files;
                out.push(check_create(
                    succ(
                        format!(
                            "create-file applied, ack lost; retransmit (attempt {})",
                            s.attempt + 1
                        ),
                        retry,
                    ),
                    cfg,
                ));
            }
            push_retry(&mut out, s, cfg, "create-file request lost", Exhaust::AbortTyped);
        }
        // PutStrip.
        2 => {
            let mut ok = *s;
            ok.op = 3;
            ok.attempt = 0;
            out.push(succ("put-strip ok", ok));
            push_retry(&mut out, s, cfg, "put-strip frame lost", Exhaust::AbortTyped);
        }
        // The execute ladder.
        3 => ladder(&mut out, s, cfg),
        _ => {}
    }
    out
}

/// Server-side effect of delivering CreateFile: idempotent dedup in
/// the real protocol; a fresh id per delivery under the seeded
/// defect. Count capped at 2 — past that the violation already fired.
fn apply_create(s: &State, cfg: &Cfg) -> State {
    let mut n = *s;
    n.files = if cfg.defect == Some(Defect::DupCreate) {
        (s.files + 1).min(2)
    } else {
        s.files.max(1)
    };
    n
}

/// Attach the idempotence invariant to a transition that delivered a
/// CreateFile.
fn check_create(mut sc: Succ, _cfg: &Cfg) -> Succ {
    if sc.next.files > 1 && sc.violation.is_none() {
        sc.violation = Some((
            "DA602",
            "retransmitted CreateFile created a second file — ids must be idempotent under retry"
                .to_string(),
        ));
    }
    sc
}

/// What happens when the attempt budget runs out.
enum Exhaust {
    /// The op surfaces a typed error and the session ends cleanly.
    AbortTyped,
    /// The ladder descends a rung.
    Degrade,
}

/// Retry bookkeeping: the state after one more attempt, pricing the
/// clock advance with the *real* backoff, or `None` when the budget
/// (or the clock bound) is exhausted.
fn retried(s: &State, cfg: &Cfg) -> Option<State> {
    let budget = cfg.policy.max_attempts.max(1) as u8;
    if s.attempt + 1 >= budget || s.clock + 1 > CLOCK_MAX {
        return None;
    }
    // Drive the production backoff and hold it to its contract.
    let d = cfg.policy.backoff(u32::from(s.attempt) + 1);
    debug_assert!(d <= cfg.policy.backoff_max);
    let mut n = *s;
    n.attempt += 1;
    n.clock += 1;
    Some(n)
}

/// Push the lost-frame outcome: retry within budget, then the
/// exhaustion behavior. Under the `retry-unbounded` defect the client
/// schedules an attempt past the budget — the `DA606` invariant.
fn push_retry(out: &mut Vec<Succ>, s: &State, cfg: &Cfg, what: &str, exhaust: Exhaust) {
    let budget = cfg.policy.max_attempts.max(1) as u8;
    if let Some(n) = retried(s, cfg) {
        let d = cfg.policy.backoff(u32::from(n.attempt));
        out.push(succ(format!("{what}; retry attempt {} after {d:?}", n.attempt), n));
        return;
    }
    if s.attempt + 1 >= budget && cfg.defect == Some(Defect::RetryUnbounded) {
        let mut n = *s;
        n.clock = (n.clock + 1).min(CLOCK_MAX);
        out.push(violation(
            format!("{what}; retry attempt {} scheduled", s.attempt + 1),
            n,
            "DA606",
            format!(
                "retry loop exceeded max_attempts={} — the budget must bound the loop",
                cfg.policy.max_attempts
            ),
        ));
        return;
    }
    if s.clock + 1 > CLOCK_MAX {
        return; // clock frontier: the path is truncated, not stuck
    }
    match exhaust {
        Exhaust::AbortTyped => {
            let mut n = *s;
            n.phase = Phase::Done;
            out.push(succ(format!("{what}; budget exhausted → typed error, session ends"), n));
        }
        Exhaust::Degrade => {
            out.push(degrade(s, cfg, &format!("{what}; budget exhausted")));
        }
    }
}

/// Descend one rung of the DAS → NAS → TS ladder (or violate the
/// ladder-order / TS-fallback invariants under a seeded defect).
fn degrade(s: &State, cfg: &Cfg, why: &str) -> Succ {
    let mut n = *s;
    n.attempt = 0;
    match s.rung {
        Rung::Das => {
            if cfg.defect == Some(Defect::LadderSkip) {
                n.rung = Rung::Ts;
                return violation(
                    format!("{why} → degrade DAS→TS (skipping NAS)"),
                    n,
                    "DA605",
                    "degradation skipped the NAS rung — the ladder must descend one rung at a time"
                        .to_string(),
                );
            }
            n.rung = Rung::Nas;
            succ(format!("{why} → degrade DAS→NAS"), n)
        }
        Rung::Nas => {
            if cfg.defect == Some(Defect::NoTsFallback) {
                n.phase = Phase::Failed;
                return violation(
                    format!("{why} → give up"),
                    n,
                    "DA601",
                    "session failed without trying the guaranteed normal-I/O (TS) fallback"
                        .to_string(),
                );
            }
            n.rung = Rung::Ts;
            succ(format!("{why} → degrade NAS→TS"), n)
        }
        Rung::Ts => {
            // TS is local normal I/O; it has nowhere to degrade to,
            // and it cannot fail in the model — unreachable.
            succ(format!("{why} (ts)"), n)
        }
    }
}

/// Transitions of op 3 — the execute ladder with the breaker woven
/// in.
fn ladder(out: &mut Vec<Succ>, s: &State, cfg: &Cfg) {
    match s.rung {
        Rung::Das => {
            let open = s.breaker_until > s.clock;
            let expired = s.breaker_until != 0 && !open;
            if open {
                // Fail-fast window: wait it out, or degrade now — the
                // real client does the latter when the daemon answers
                // with a typed fast-fail.
                if s.clock < CLOCK_MAX {
                    let mut n = *s;
                    n.clock += 1;
                    out.push(succ("breaker open: wait one tick", n));
                }
                out.push(degrade(s, cfg, "breaker open: daemon fails fast"));
                return;
            }
            if expired {
                if cfg.defect == Some(Defect::NoHalfOpen) {
                    let n = *s;
                    out.push(violation(
                        "breaker cooldown expired but no half-open probe is offered",
                        n,
                        "DA603",
                        "breaker never half-opens after its cooldown — a rebooted peer can never rejoin"
                            .to_string(),
                    ));
                    return;
                }
                let mut closed = *s;
                closed.breaker_until = 0;
                out.push(succ("breaker half-open: probe succeeds, breaker closes", closed));
                let mut reopen = *s;
                reopen.breaker_until = (s.clock + COOLDOWN).min(CLOCK_MAX);
                out.push(succ("breaker half-open: probe fails, breaker re-opens", reopen));
                return;
            }
            // Breaker closed: the offloaded execute itself.
            let mut ok = *s;
            ok.phase = Phase::Done;
            out.push(succ("execute (DAS) ok", ok));
            // A dependence peer dies: its breaker trips either way.
            // Replica failover can keep the op on DAS (the breaker
            // then governs when the dead peer is probed again), or
            // the daemon fails the op and the client degrades.
            let mut trip = *s;
            trip.breaker_until = (s.clock + COOLDOWN).min(CLOCK_MAX);
            trip.attempt = 0;
            out.push(succ(
                "execute: dependence peer dead, breaker trips; replica failover keeps DAS",
                trip,
            ));
            out.push({
                let mut sc = degrade(s, cfg, "execute: dependence peer dead, daemon fails the op");
                sc.next.breaker_until = trip.breaker_until;
                sc
            });
            push_retry(out, s, cfg, "execute reply lost", Exhaust::Degrade);
        }
        Rung::Nas => {
            let mut ok = *s;
            ok.phase = Phase::Done;
            out.push(succ("redistribute + execute (NAS) ok", ok));
            out.push(degrade(s, cfg, "NAS redistribution failed"));
            push_retry(out, s, cfg, "redist reply lost", Exhaust::Degrade);
        }
        Rung::Ts => {
            // Normal I/O: local reads, always succeeds.
            let mut ok = *s;
            ok.phase = Phase::Done;
            out.push(succ("normal-I/O (TS) read ok", ok));
        }
    }
}

/// Every message shape the modeled session can put on the wire.
fn script_messages(cfg: &Cfg) -> Vec<Message> {
    let policy = LayoutPolicy::GroupedReplicated { group: 2 };
    vec![
        Message::Hello { role: Role::Client, peer_id: 0, caps: cfg.ccaps },
        Message::HelloOk { server_id: 0, caps: cfg.scaps },
        Message::CreateFile {
            name: "model".to_string(),
            file_len: 4096,
            strip_size: 1024,
            policy,
            servers: 4,
        },
        Message::CreateFileOk { file: 1 },
        Message::PutStrip { file: 1, strip: 0, payload: vec![7u8; 64] },
        Message::PutStripOk,
        Message::GetStrip { file: 1, strip: 0 },
        Message::StripData { payload: vec![7u8; 64] },
        Message::RedistPrepare { file: 1, policy },
        Message::RedistPrepareOk { fetched_strips: 1, fetched_bytes: 64 },
        Message::RedistCommit { file: 1, policy },
        Message::RedistCommitOk,
        Message::Execute {
            file: 1,
            out_file: 2,
            kernel: "flow-routing".to_string(),
            img_width: 64,
            element_size: 4,
            successive: true,
            force: false,
        },
        Message::ExecuteOk { strips_computed: 1, dep_fetches: 2, dep_fetch_bytes: 128 },
    ]
}

/// Re-frame a real CRC'd frame as a legacy (CRC-less) one: clear
/// `FLAG_CRC` and drop the trailer — exactly the frames a pre-CRC
/// peer emits, which the decoder must keep accepting.
fn strip_crc(mut frame: Vec<u8>) -> Vec<u8> {
    frame[6] &= !(FLAG_CRC as u8);
    frame.truncate(frame.len() - 4);
    frame
}

/// Push every frame shape of this configuration through the real
/// codec. Returns the number of frames checked, or the violated
/// frame-discipline invariant.
fn wire_checks(cfg: &Cfg) -> Result<usize, Violation> {
    let negotiated = cfg.negotiated();
    // Caps monotonicity: what both sides use never exceeds what
    // either advertised.
    if negotiated & !cfg.ccaps != 0 || negotiated & !cfg.scaps != 0 {
        return Err(Violation {
            code: "DA604",
            message: "negotiated caps exceed an advertisement".to_string(),
            trace: vec![format!("caps {:#x} & {:#x}", cfg.ccaps, cfg.scaps)],
        });
    }
    let send_trace = negotiated & CAP_TRACE != 0 || cfg.defect == Some(Defect::FlagUnnegotiated);
    let legacy = negotiated & CAP_CRC == 0;
    let mut checked = 0usize;
    for msg in script_messages(cfg) {
        let trace = if send_trace { Some(TRACE_ID) } else { None };
        let mut frame = encode_frame_traced(&msg, trace);
        if legacy {
            frame = strip_crc(frame);
        }
        let fail = |detail: String| Violation {
            code: "DA604",
            message: detail,
            trace: vec![
                format!("negotiate caps {:#x}", negotiated),
                format!("frame: opcode {:#04x} ({} bytes)", msg.opcode(), frame.len()),
            ],
        };
        let (back, got_trace) = match read_frame(&mut &frame[..]) {
            Ok(Some(pair)) => pair,
            other => {
                return Err(fail(format!("frame failed to decode: {other:?}")));
            }
        };
        checked += 1;
        if back != msg {
            return Err(fail(format!(
                "roundtrip mismatch: sent opcode {:#04x}, got {:#04x}",
                msg.opcode(),
                back.opcode()
            )));
        }
        if got_trace.is_some() && negotiated & CAP_TRACE == 0 {
            return Err(fail(
                "FLAG_TRACE sent to a peer that did not advertise CAP_TRACE — legacy peers must see bit-identical frames".to_string(),
            ));
        }
        // A corrupted CRC'd frame must be rejected.
        if !legacy {
            let mut bad = encode_frame_traced(&msg, trace);
            let mid = bad.len() / 2;
            bad[mid] ^= 0x40;
            checked += 1;
            if let Ok(Some((m, _))) = read_frame(&mut &bad[..]) {
                return Err(fail(format!(
                    "corrupted frame accepted by the decoder as opcode {:#04x}",
                    m.opcode()
                )));
            }
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ccaps: u32, scaps: u32, defect: Option<Defect>) -> Cfg {
        Cfg { ccaps, scaps, policy: RetryPolicy::fast(), defect }
    }

    #[test]
    fn baseline_is_clean_and_substantial() {
        for c in [0, CAP_CRC, CAP_TRACE, CAP_CRC | CAP_TRACE] {
            for s in [0, CAP_CRC, CAP_TRACE, CAP_CRC | CAP_TRACE] {
                let ex = explore(&cfg(c, s, None));
                assert!(ex.violation.is_none(), "caps {c:#x}/{s:#x}");
                assert!(ex.states > 100, "caps {c:#x}/{s:#x}: only {} states", ex.states);
            }
        }
    }

    #[test]
    fn every_defect_is_caught_with_its_code() {
        let expected = [
            (Defect::DupCreate, "DA602"),
            (Defect::NoHalfOpen, "DA603"),
            (Defect::FlagUnnegotiated, "DA604"),
            (Defect::LadderSkip, "DA605"),
            (Defect::NoTsFallback, "DA601"),
            (Defect::RetryUnbounded, "DA606"),
        ];
        for (d, code) in expected {
            let mut hit = None;
            'outer: for c in [0u32, 3] {
                for s in [0u32, 3] {
                    if let Some(v) = explore(&cfg(c, s, Some(d))).violation {
                        hit = Some(v);
                        break 'outer;
                    }
                }
            }
            let v = hit.unwrap_or_else(|| panic!("defect {d:?} produced no violation"));
            assert_eq!(v.code, code, "defect {d:?}: {}", v.message);
            assert!(v.trace.len() >= 2, "defect {d:?}: trace too short: {:?}", v.trace);
        }
    }

    #[test]
    fn counterexamples_are_minimal_and_readable() {
        let v = explore(&cfg(3, 3, Some(Defect::DupCreate))).violation.unwrap();
        // BFS: hello, then the first ack-lost delivery retransmitted
        // once — the second delivery dups the id. Connect + 3 steps.
        assert!(v.trace.len() <= 5, "not minimal: {:#?}", v.trace);
        let rendered = render_trace(&v.trace);
        assert!(rendered.contains("create-file"), "{rendered}");
    }

    #[test]
    fn legacy_and_corrupt_framing_paths_hold() {
        // CRC-less combos decode; CRC combos reject corruption.
        assert!(wire_checks(&cfg(0, 0, None)).unwrap() > 0);
        assert!(wire_checks(&cfg(3, 3, None)).unwrap() > 0);
        // The flag-unnegotiated defect is caught by the wire layer
        // whenever CAP_TRACE was not negotiated.
        let v = wire_checks(&cfg(CAP_CRC, CAP_CRC, Some(Defect::FlagUnnegotiated))).unwrap_err();
        assert_eq!(v.code, "DA604");
    }
}
