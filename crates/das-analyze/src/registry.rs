//! Pass — finding-code registry and drift check (`DA00x`).
//!
//! [`REGISTRY`] is the compiled-in ground truth: every finding code
//! any pass can emit, with its nominal severity and a one-line
//! summary (`das-analyze --list` prints it). The pass cross-checks
//! three sources that historically drift apart:
//!
//! * the **registry** itself,
//! * the **pass sources** under `crates/das-analyze/src` (string
//!   literals shaped like `"DAnnn"`, this module excluded), and
//! * the **documentation** tables in `docs/ANALYSIS.md`.
//!
//! `DA001` flags a code emitted in source but never registered,
//! `DA002` a registered code missing from the docs, `DA003` a
//! documented code nobody registered, and `DA004` a registered code
//! no pass emits (dead registration). When a repository root carries
//! neither the analyzer sources nor the docs (fixture mini-repos),
//! the corresponding checks are skipped rather than failed.

use std::collections::BTreeSet;
use std::path::Path;

use crate::finding::{Finding, Severity};

const PASS: &str = "registry";

/// Every finding code the analyzer can emit:
/// `(code, nominal severity, one-line summary)`.
pub const REGISTRY: &[(&str, &str, &str)] = &[
    ("DA000", "info", "registry summary: codes registered / emitted / documented"),
    ("DA001", "warning", "code emitted in pass source but not registered"),
    ("DA002", "warning", "registered code undocumented in docs/ANALYSIS.md"),
    ("DA003", "warning", "documented code that is not registered"),
    ("DA004", "warning", "registered code no pass emits (dead registration)"),
    ("DA100", "info", "descriptor summary: descriptors validated"),
    ("DA101", "error", "descriptor file cannot be read or parsed"),
    ("DA102", "error", "offset not affine in imgWidth (a*imgWidth + b)"),
    ("DA103", "warning", "duplicate offset in one dependence list"),
    ("DA104", "warning", "zero self-offset (element depends on itself)"),
    ("DA105", "error", "kernel present in txt but not XML, or vice versa"),
    ("DA106", "error", "txt and XML disagree on a shared kernel's pattern"),
    ("DA107", "warning", "deployment replication ring under a kernel's stencil radius"),
    ("DA108", "warning", "dead descriptor: never offloaded anywhere on the decision grid"),
    ("DA109", "error", "descriptors/kernels.txt drifted from the compiled-in copy"),
    ("DA110", "error", "malformed layouts.txt row"),
    ("DA200", "info", "protocol summary: wire sweep clean"),
    ("DA201", "error", "wire roundtrip failure or sample set misses an opcode"),
    ("DA202", "error", "unassigned opcode decodes instead of being rejected"),
    ("DA203", "error", "unassigned frame-flag bit accepted"),
    ("DA204", "error", "frame flag without a negotiating capability bit"),
    ("DA205", "error", "docs/PROTOCOL.md RPC-table drift"),
    ("DA206", "error", "docs/PROTOCOL.md error-code-table drift"),
    ("DA207", "error", "fault class accepted by dasd --fault but undocumented"),
    ("DA301", "info", "cyclic fetch graph noted, with the canonical-order bound"),
    ("DA302", "error", "GetStrip handler performs a nested peer fetch"),
    ("DA303", "info", "fetch-graph proof record: edge-free or depth-1 verified"),
    ("DA400", "info", "lint summary: files linted"),
    ("DA401", "error", ".unwrap() in a das-net request-path module"),
    ("DA402", "error", ".expect( in a das-net request-path module"),
    ("DA403", "error", "panic! in a das-net request-path module"),
    ("DA404", "error", "eprintln! outside das-obs (and outside bin/)"),
    ("DA405", "error", "locks acquired against the declared hierarchy in one function"),
    ("DA406", "warning", "println! in library code"),
    ("DA407", "error", "cross-function lock acquisition inverts the declared hierarchy"),
    ("DA408", "error", "AB/BA lock-order cycle across call chains"),
    ("DA409", "info", "lock-graph summary: functions, sites, held-edges"),
    ("DA430", "warning", "das-lint: allow(...) waiver that suppresses nothing"),
    ("DA500", "info", "taint summary: wire ints and blobs tracked"),
    ("DA501", "error", "wire-decoded length reaches an allocation/index sink unchecked"),
    ("DA502", "warning", "value derived from a wire length reaches a sink unchecked"),
    ("DA503", "error", "peer-returned blob consumed without a length check"),
    ("DA600", "info", "model summary: explored states, transitions, frame shapes"),
    ("DA601", "error", "protocol model: stuck state, or gave up without the TS fallback"),
    ("DA602", "error", "protocol model: retransmitted CreateFile is not idempotent"),
    ("DA603", "error", "protocol model: breaker never half-opens after cooldown"),
    ("DA604", "error", "protocol model: frame/caps discipline violated"),
    ("DA605", "error", "protocol model: degradation skipped a ladder rung"),
    ("DA606", "error", "protocol model: retry loop exceeds its attempt budget"),
    ("DA607", "warning", "protocol model: defect list drifted from the model"),
    ("DA620", "info", "pipelined model summary: explored states, transitions, configs"),
    ("DA621", "error", "pipelined model: an admitted request's reply was lost"),
    ("DA622", "error", "pipelined model: a reply id was delivered more than once"),
    ("DA623", "error", "pipelined model: shed request never retried (liveness)"),
    ("DA624", "error", "pipelined model: deadline budget grew across a hop"),
    ("DA625", "error", "pipelined model: both hedge lanes delivered for one fetch"),
    ("DA626", "error", "pipelined model: queue admitted past --max-backlog"),
    ("DA627", "warning", "pipelined model: defect list drifted from the model"),
    ("DA700", "info", "lockset summary: guards inferred, fields bound, accesses checked"),
    ("DA701", "error", "field of a guard-protected struct accessed without its guard held"),
    ("DA702", "warning", "struct protected by more than one guard; lockset is ambiguous"),
    ("DA703", "warning", "dead lock: a declared guard field is never acquired"),
    ("DA704", "error", "Arc/Rc interior mutation (get_mut/make_mut) without a guard"),
    ("DA705", "info", "lockset proof record: every access dominated by its guard"),
    ("DA710", "info", "atomics census: Ordering uses classified per crate"),
    ("DA711", "warning", "Relaxed load feeds control flow (publication pattern)"),
    ("DA712", "warning", "store/load ordering strength mismatch on one atomic"),
    ("DA713", "warning", "fetch_* result discarded where siblings consume it"),
    ("DA714", "warning", "DA71x waiver lacks a justifying comment"),
    ("DA800", "info", "hot-path proof record: engine/codec write path allocation-free"),
    ("DA801", "error", "per-request heap copy (to_vec/clone/format!) on a request-serving path"),
    ("DA802", "error", "allocation sized by a wire-decoded length with no visible bound"),
    ("DA803", "error", "blocking operation reachable from the evloop shard poll loop"),
    ("DA804", "error", "byte-copy sink fed a strip payload, defeating the Bytes zero-copy path"),
    ("DA805", "error", "lock guard held across a dispatch/enqueue/write boundary"),
    ("DA806", "info", "hot-path census: files, fns, reachable sets, sites examined"),
    ("DA810", "info", "cost-model proof record: symbolic frame size verified for a message variant"),
    ("DA811", "error", "symbolic frame-size expression diverges from the codec's measured bytes"),
    ("DA812", "error", "composed wire-cost formula diverges from the Eqs. 1-17 predictors"),
    ("DA813", "error", "message variant with no extractable or verifiable frame-size expression"),
    ("DA814", "error", "frame overhead constants drifted between codec source and measured frames"),
    ("DA815", "info", "cost-model census: variants extracted, grid cells swept"),
];

/// Render the registry as the aligned table `das-analyze --list`
/// prints.
pub fn list() -> String {
    let mut out = String::new();
    for (code, sev, summary) in REGISTRY {
        out.push_str(&format!("{code}  {sev:<7}  {summary}\n"));
    }
    out
}

/// Extract every `"DAnnn"` string-literal code from `src`.
fn codes_in(src: &str, out: &mut BTreeSet<String>) {
    let bytes = src.as_bytes();
    for (i, _) in src.match_indices("\"DA") {
        let rest = &bytes[i + 3..];
        if rest.len() >= 4
            && rest[..3].iter().all(u8::is_ascii_digit)
            && rest[3] == b'"'
        {
            out.insert(src[i + 1..i + 6].to_string());
        }
    }
}

/// Every code documented in a `docs/ANALYSIS.md` table row.
fn documented_codes(docs: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in docs.lines() {
        if line.trim_start().starts_with('|') {
            codes_in(&line.replace('`', "\""), &mut out);
        }
    }
    out
}

/// Run the registry drift check against a repository root.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let registered: BTreeSet<String> =
        REGISTRY.iter().map(|(c, _, _)| (*c).to_string()).collect();

    // Codes emitted by the pass sources (this module excluded — it
    // necessarily names every code).
    let src_dir = root.join("crates/das-analyze/src");
    let mut emitted = BTreeSet::new();
    let mut scanned = 0usize;
    if src_dir.is_dir() {
        let mut stack = vec![src_dir];
        while let Some(dir) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&dir) else { continue };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs")
                    && path.file_name().is_some_and(|n| n != "registry.rs")
                {
                    if let Ok(src) = std::fs::read_to_string(&path) {
                        codes_in(&src, &mut emitted);
                        scanned += 1;
                    }
                }
            }
        }
        for code in emitted.difference(&registered) {
            out.push(Finding::new(
                "DA001",
                Severity::Warning,
                PASS,
                "crates/das-analyze/src",
                format!("code {code} is emitted in source but not in the registry"),
            ));
        }
        for (code, _, _) in REGISTRY {
            // DA00x codes are emitted here, outside the scan.
            if !code.starts_with("DA0") && !emitted.contains(*code) {
                out.push(Finding::new(
                    "DA004",
                    Severity::Warning,
                    PASS,
                    "crates/das-analyze/src",
                    format!("registered code {code} is emitted by no pass (dead registration)"),
                ));
            }
        }
    }

    // Codes documented in the analysis docs.
    let docs_path = root.join("docs/ANALYSIS.md");
    let mut documented = BTreeSet::new();
    if let Ok(docs) = std::fs::read_to_string(&docs_path) {
        documented = documented_codes(&docs);
        for code in registered.difference(&documented) {
            out.push(Finding::new(
                "DA002",
                Severity::Warning,
                PASS,
                "docs/ANALYSIS.md",
                format!("registered code {code} has no documentation table row"),
            ));
        }
        for code in documented.difference(&registered) {
            out.push(Finding::new(
                "DA003",
                Severity::Warning,
                PASS,
                "docs/ANALYSIS.md",
                format!("documented code {code} is not in the registry"),
            ));
        }
    }

    out.push(Finding::new(
        "DA000",
        Severity::Info,
        PASS,
        "finding-code registry",
        format!(
            "{} codes registered, {} emitted across {scanned} pass sources, {} documented",
            REGISTRY.len(),
            emitted.len(),
            documented.len()
        ),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        let codes: Vec<&str> = REGISTRY.iter().map(|(c, _, _)| *c).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "REGISTRY must be sorted and duplicate-free");
        for (_, sev, _) in REGISTRY {
            assert!(matches!(*sev, "info" | "warning" | "error"), "bad severity {sev}");
        }
    }

    #[test]
    fn code_literal_extraction_is_exact() {
        let mut got = BTreeSet::new();
        codes_in(
            r#"f("DA123"); "DA12"; "DA1234"; "DAXYZ"; x = "DA999""#,
            &mut got,
        );
        assert_eq!(
            got.into_iter().collect::<Vec<_>>(),
            vec!["DA123".to_string(), "DA999".to_string()]
        );
    }

    #[test]
    fn documented_codes_only_count_table_rows() {
        let docs = "| `DA101` | error | x |\nprose about `DA999` is ignored\n  | `DA102` | e | y |\n";
        let got = documented_codes(docs);
        assert_eq!(
            got.into_iter().collect::<Vec<_>>(),
            vec!["DA101".to_string(), "DA102".to_string()]
        );
    }

    #[test]
    fn fixture_roots_skip_missing_inputs() {
        let dir = std::env::temp_dir().join("das-analyze-registry-empty");
        std::fs::create_dir_all(&dir).unwrap();
        let findings = run(&dir);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].code, "DA000");
    }

    #[test]
    fn list_names_every_code() {
        let listing = list();
        for (code, _, _) in REGISTRY {
            assert!(listing.contains(code));
        }
    }
}
