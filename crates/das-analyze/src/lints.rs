//! Pass 4 — request-path source lints.
//!
//! Line-based lints over the workspace sources, focused on the places
//! where a panic or a stray print is a production hazard rather than
//! a style nit:
//!
//! * `DA401`/`DA402`/`DA403` (error) — `.unwrap()`, `.expect(` or
//!   `panic!` in das-net's wire-facing modules. A panic on the
//!   request path kills a daemon serving every client; these modules
//!   must surface typed errors instead.
//! * `DA404` (error) — `eprintln!` outside das-obs. Diagnostics go
//!   through the das-obs event/metrics layer so they carry structure
//!   and can be rate-limited; raw stderr writes bypass all of it.
//! * `DA405` (error) — a function acquires hierarchy locks out of
//!   the declared order (`rx → conns → inner → downs`). Out-of-order
//!   acquisition across threads is an AB/BA deadlock.
//! * `DA406` (warning) — `println!` in library (non-`bin/`,
//!   non-test) code. Library crates must not write to a stdout they
//!   do not own; das-bench's report harness is the sanctioned
//!   exception.
//!
//! Any site can be waived with `// das-lint: allow(<code>)` on the
//! same line or the line directly above; the waiver is deliberate and
//! greppable. Lines inside `#[cfg(test)]` items are exempt — tests
//! panic by design.

use std::path::Path;

use crate::finding::{Finding, Severity};

const PASS: &str = "lints";

/// das-net modules on the request path: every byte they touch comes
/// off a socket, so panics are remote-triggerable.
const REQUEST_PATH: [&str; 6] =
    ["client.rs", "server.rs", "codec.rs", "peer.rs", "retry.rs", "proto.rs"];

/// The declared lock hierarchy for das-net (outermost first). A
/// function's first acquisitions must follow this order.
const LOCK_HIERARCHY: [&str; 4] = ["rx", "conns", "inner", "downs"];

/// Crates whose library code may print to stdout: das-obs is the
/// diagnostics layer itself; das-bench's report renderer exists to
/// print.
const STDOUT_EXEMPT: [&str; 2] = ["das-obs", "das-bench"];

/// Run the lints over `root/crates/*/src/**/*.rs`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    collect_rs_files(&crates_dir, &mut files);
    files.sort();
    let mut scanned = 0usize;
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        scanned += 1;
        lint_file(&rel, &src, &mut out);
    }
    out.push(Finding::new(
        "DA400",
        Severity::Info,
        PASS,
        "crates/*/src",
        format!("{scanned} source files linted"),
    ));
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // From the crates/ level, descend only into each crate's
            // src/ tree — benches, tests/ and target/ are out of
            // scope by construction.
            if dir.ends_with("crates") {
                collect_rs_files(&path.join("src"), out);
            } else {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Which crate (directory under `crates/`) a repo-relative path is in.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

fn is_bin(rel: &str) -> bool {
    rel.contains("/src/bin/") || rel.ends_with("/main.rs")
}

fn is_request_path(rel: &str) -> bool {
    crate_of(rel) == "das-net"
        && REQUEST_PATH.iter().any(|m| rel.ends_with(&format!("src/{m}")))
}

/// Lint one file. `rel` is the repo-relative path used in entities.
pub fn lint_file(rel: &str, src: &str, out: &mut Vec<Finding>) {
    let lines: Vec<&str> = src.lines().collect();
    let in_test = test_mask(&lines);
    let request_path = is_request_path(rel);
    let library = !is_bin(rel) && !STDOUT_EXEMPT.contains(&crate_of(rel));
    let mut lock_seen: Vec<usize> = Vec::new(); // hierarchy ranks in first-acquisition order

    for (i, raw) in lines.iter().enumerate() {
        let lineno = i + 1;
        let line = sanitize(raw);
        if in_test[i] {
            continue;
        }

        // Reset the per-function lock-order window at function heads.
        if line.contains("fn ") && line.contains('(') {
            lock_seen.clear();
        }

        if request_path {
            if line.contains(".unwrap()") && !allowed(&lines, i, "DA401") {
                out.push(site(
                    "DA401",
                    rel,
                    lineno,
                    "`.unwrap()` on the request path — a malformed or unlucky input panics the daemon; return a typed NetError instead",
                ));
            }
            if line.contains(".expect(") && !line.contains(".expect_err(") && !allowed(&lines, i, "DA402")
            {
                out.push(site(
                    "DA402",
                    rel,
                    lineno,
                    "`.expect(` on the request path — same hazard as unwrap; return a typed NetError instead",
                ));
            }
            if line.contains("panic!") && !allowed(&lines, i, "DA403") {
                out.push(site(
                    "DA403",
                    rel,
                    lineno,
                    "`panic!` on the request path — the daemon must degrade, not die",
                ));
            }
        }

        if line.contains("eprintln!")
            && crate_of(rel) != "das-obs"
            && !is_bin(rel)
            && !allowed(&lines, i, "DA404")
        {
            out.push(site(
                "DA404",
                rel,
                lineno,
                "`eprintln!` outside das-obs — route diagnostics through the das-obs event layer",
            ));
        }

        if line.contains("println!") && library && !allowed(&lines, i, "DA406") {
            out.push(Finding::new(
                "DA406",
                Severity::Warning,
                PASS,
                format!("{rel}:{lineno}"),
                "`println!` in library code — the caller owns stdout".to_string(),
            ));
        }

        // Lock-order: record the rank of each hierarchy lock the
        // first time a function acquires it; a rank lower than one
        // already held is an inversion.
        if crate_of(rel) == "das-net" {
            for name in lock_names(&line) {
                if let Some(rank) = LOCK_HIERARCHY.iter().position(|&h| h == name) {
                    if lock_seen.contains(&rank) {
                        continue;
                    }
                    if let Some(&held) = lock_seen.iter().max() {
                        if rank < held && !allowed(&lines, i, "DA405") {
                            out.push(site(
                                "DA405",
                                rel,
                                lineno,
                                &format!(
                                    "lock `{}` acquired after `{}` — violates the declared hierarchy {:?} and risks an AB/BA deadlock",
                                    name, LOCK_HIERARCHY[held], LOCK_HIERARCHY
                                ),
                            ));
                        }
                    }
                    lock_seen.push(rank);
                }
            }
        }
    }
}

fn site(code: &'static str, rel: &str, lineno: usize, msg: &str) -> Finding {
    Finding::new(code, Severity::Error, PASS, format!("{rel}:{lineno}"), msg.to_string())
}

/// Whether line `i` (0-based) carries a `das-lint: allow(code)`
/// waiver on itself or the line directly above. Waivers live in
/// comments, which [`sanitize`] strips — so look at the raw lines.
fn allowed(lines: &[&str], i: usize, code: &str) -> bool {
    let token = format!("das-lint: allow({code})");
    lines[i].contains(&token) || (i > 0 && lines[i - 1].contains(&token))
}

/// Lock variable names acquired on a line: for each `lock(` call
/// site, the last `.`-segment of the argument, `&`/`mut` stripped.
/// Matches both the poison-recovering helper `lock(&self.conns)` and
/// method form `self.inner.lock()`.
fn lock_names(line: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find("lock(") {
        let after = &rest[pos + 5..];
        // Helper form: lock(&self.conns) — name inside the parens.
        if let Some(end) = after.find(')') {
            let arg = after[..end].trim().trim_start_matches('&').trim_start_matches("mut ");
            if !arg.is_empty() {
                if let Some(name) = arg.rsplit('.').next() {
                    names.push(name.to_string());
                }
            } else {
                // Method form: self.inner.lock() — name before the call.
                let before = &rest[..pos];
                let recv = before.trim_end_matches('.');
                if let Some(name) = recv.rsplit(['.', ' ', '(', '&']).next() {
                    if !name.is_empty() {
                        names.push(name.to_string());
                    }
                }
            }
        }
        rest = after;
    }
    names
}

/// Strip string literals and `//` comments so lint substrings inside
/// them do not fire. Char-level scan; no raw-string awareness needed
/// at this precision.
fn sanitize(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '/' if chars.peek() == Some(&'/') => break,
            '\'' => {
                // char literal: consume up to the closing quote (max
                // a few chars; lifetimes like 'a have no closing
                // quote and fall through harmlessly).
                out.push(c);
                let mut la = chars.clone();
                let consumed = match (la.next(), la.next(), la.next()) {
                    (Some('\\'), _, Some('\'')) => 3,
                    (Some(_), Some('\''), _) => 2,
                    _ => 0,
                };
                for _ in 0..consumed {
                    chars.next();
                }
            }
            _ => out.push(c),
        }
    }
    out
}

/// Per-line mask: true where the line is inside a `#[cfg(test)]`
/// item, tracked by brace depth from the attribute.
fn test_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth = 0i64; // >0 while inside a cfg(test) item
    let mut pending = false; // saw the attribute, waiting for the opening brace
    for (i, raw) in lines.iter().enumerate() {
        let line = sanitize(raw);
        if line.contains("#[cfg(test)]") {
            pending = true;
            mask[i] = true;
            continue;
        }
        if pending || depth > 0 {
            mask[i] = true;
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        pending = false;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            // `#[cfg(test)]` on a braceless item (`use`, `mod x;`)
            // ends at the semicolon.
            if pending && line.contains(';') {
                pending = false;
            }
            if depth < 0 {
                depth = 0;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_path_panics_are_flagged_and_waivable() {
        let src = "\
fn handle(&self) {
    let v = frame.len().checked_sub(4).unwrap();
    let w = map.get(&k).expect(\"present\");
    // das-lint: allow(DA403)
    panic!(\"boom\");
}
";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/server.rs", src, &mut out);
        let codes: Vec<&str> = out.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"DA401"), "{out:?}");
        assert!(codes.contains(&"DA402"), "{out:?}");
        assert!(!codes.contains(&"DA403"), "waiver must hold: {out:?}");
    }

    #[test]
    fn strings_comments_and_tests_do_not_fire() {
        let src = "\
fn ok() {
    let s = \"call .unwrap() for fun\"; // .unwrap() here too
}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!(); }
}
";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/codec.rs", src, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn expect_err_and_non_request_path_are_exempt() {
        let mut out = Vec::new();
        lint_file(
            "crates/das-net/src/proto.rs",
            "fn f() { let e = r.expect_err(\"no\"); }\n",
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        // unwrap in a non-request-path crate is clippy's business,
        // not this pass's.
        lint_file("crates/das-core/src/predict.rs", "fn f() { x.unwrap(); }\n", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn print_macros_are_scoped() {
        let mut out = Vec::new();
        lint_file("crates/das-core/src/plan.rs", "fn f() { eprintln!(\"x\"); }\n", &mut out);
        assert!(out.iter().any(|f| f.code == "DA404"), "{out:?}");
        out.clear();
        lint_file("crates/das-core/src/plan.rs", "fn f() { println!(\"x\"); }\n", &mut out);
        assert!(out.iter().any(|f| f.code == "DA406"), "{out:?}");
        out.clear();
        // bins own their stdio; das-obs and das-bench are exempt.
        lint_file("crates/das-net/src/bin/dasd.rs", "fn f() { eprintln!(\"x\"); println!(); }\n", &mut out);
        lint_file("crates/das-bench/src/lib.rs", "fn f() { println!(\"x\"); }\n", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_order_inversion_is_caught() {
        let bad = "\
fn inverted(&self) {
    let d = lock(&self.downs);
    let c = lock(&self.conns);
}
";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/peer.rs", bad, &mut out);
        assert!(out.iter().any(|f| f.code == "DA405"), "{out:?}");

        let good = "\
fn ordered(&self) {
    let c = lock(&self.conns);
    let i = lock(&self.inner);
    let d = lock(&self.downs);
}
fn fresh(&self) {
    let c = lock(&self.conns);
}
";
        out.clear();
        lint_file("crates/das-net/src/peer.rs", good, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_names_parse_helper_and_method_forms() {
        assert_eq!(lock_names("let c = lock(&self.conns);"), vec!["conns"]);
        assert_eq!(lock_names("let g = self.inner.lock();"), vec!["inner"]);
        assert_eq!(lock_names("let x = lock(&mut rx);"), vec!["rx"]);
        assert!(lock_names("no locks here").is_empty());
    }
}
