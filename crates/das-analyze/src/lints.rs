//! Pass — request-path source lints, token-based.
//!
//! Lints over the workspace sources, focused on the places where a
//! panic or a stray print is a production hazard rather than a style
//! nit:
//!
//! * `DA401`/`DA402`/`DA403` (error) — `.unwrap()`, `.expect(` or
//!   `panic!` in das-net's wire-facing modules. A panic on the
//!   request path kills a daemon serving every client; these modules
//!   must surface typed errors instead.
//! * `DA404` (error) — `eprintln!` outside das-obs. Diagnostics go
//!   through the das-obs event/metrics layer so they carry structure
//!   and can be rate-limited; raw stderr writes bypass all of it.
//! * `DA405` (error) — a function acquires hierarchy locks out of
//!   the declared order (`rx → conns → inner → downs → inbox → sched
//!   → done → pending → wr → ewma`). Out-of-order
//!   acquisition across threads is an AB/BA deadlock. This is the
//!   *intra*-procedural check; the `lockgraph` pass propagates
//!   acquisitions across calls (`DA407`/`DA408`).
//! * `DA406` (warning) — `println!` in library (non-`bin/`,
//!   non-test) code. Library crates must not write to a stdout they
//!   do not own; das-bench's report harness is the sanctioned
//!   exception.
//!
//! The pass runs on the token stream from [`crate::syntax`], not on
//! raw lines: a `.unwrap()` inside a string literal, an `eprintln!`
//! inside a comment, and a `#[cfg(test)]` module whose body contains
//! braces in strings are all invisible to it — the false-positive
//! classes the line-based predecessor had.
//!
//! Any site can be waived with `// das-lint: allow(<code>)` on the
//! same line or the line directly above; the waiver is deliberate and
//! greppable. Tokens inside `#[cfg(test)]` items are exempt — tests
//! panic by design.

use std::path::Path;

use crate::finding::{Finding, Severity};
use crate::syntax::{self, TokKind, Token};

const PASS: &str = "lints";

/// das-net modules on the request path: every byte they touch comes
/// off a socket, so panics are remote-triggerable.
pub const REQUEST_PATH: [&str; 9] = [
    "client.rs",
    "server.rs",
    "codec.rs",
    "peer.rs",
    "retry.rs",
    "proto.rs",
    "engine.rs",
    "pipeline.rs",
    "hedge.rs",
];

/// The declared lock hierarchy for das-net (outermost first). A
/// function's first acquisitions must follow this order. `inbox`,
/// `sched` and `done` are the event-loop engine's shard queues and
/// fair scheduler (the shed path pushes an `Overloaded` reply to
/// `done` while holding `sched`, hence the order); `pending` and `wr`
/// belong to the pipelined client (reply-routing table, then write
/// half); `ewma` is the hedging load tracker; `spans` is the span
/// flight recorder's ring/reservoir state, the hierarchy's leaf —
/// nothing may be acquired while it is held, so every request-path
/// stage can record a span under any combination of the other ranks.
pub const LOCK_HIERARCHY: [&str; 11] = [
    "rx", "conns", "inner", "downs", "inbox", "sched", "done", "pending", "wr", "ewma", "spans",
];

/// Crates whose library code may print to stdout: das-obs is the
/// diagnostics layer itself; das-bench's report renderer exists to
/// print.
const STDOUT_EXEMPT: [&str; 2] = ["das-obs", "das-bench"];

/// Run the lints over `root/crates/*/src/**/*.rs`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut scanned = 0usize;
    for (rel, src) in workspace_sources(root) {
        scanned += 1;
        lint_file(&rel, &src, &mut out);
    }
    out.push(Finding::new(
        "DA400",
        Severity::Info,
        PASS,
        "crates/*/src",
        format!("{scanned} source files linted (token-based)"),
    ));
    out
}

/// Every `crates/*/src/**/*.rs` file under `root`, as
/// (repo-relative path, contents), sorted by path. Shared with the
/// taint and lock-graph passes.
pub fn workspace_sources(root: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, src));
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // From the crates/ level, descend only into each crate's
            // src/ tree — benches, tests/ and target/ are out of
            // scope by construction.
            if dir.ends_with("crates") {
                collect_rs_files(&path.join("src"), out);
            } else {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Which crate (directory under `crates/`) a repo-relative path is in.
pub fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

fn is_bin(rel: &str) -> bool {
    rel.contains("/src/bin/") || rel.ends_with("/main.rs")
}

/// Whether a repo-relative path is one of das-net's wire-facing
/// request-path modules.
pub fn is_request_path(rel: &str) -> bool {
    crate_of(rel) == "das-net"
        && REQUEST_PATH.iter().any(|m| rel.ends_with(&format!("src/{m}")))
}

/// A lock acquisition found in a token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// The lock's field/variable name (`conns`, `inner`, …).
    pub name: String,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the acquisition's first token.
    pub at: usize,
}

/// Find every lock acquisition in `toks[range]`: the helper form
/// `lock(&self.X)` / `lock(&mut X)` and the method form `X.lock()`.
/// Shared with the lock-graph pass.
pub fn lock_sites(toks: &[Token], range: std::ops::Range<usize>) -> Vec<LockSite> {
    let mut out = Vec::new();
    let mut i = range.start;
    let end = range.end.min(toks.len());
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text == "lock" {
            let after_paren = toks.get(i + 1).is_some_and(|n| n.text == "(");
            let dotted = i > 0 && toks[i - 1].text == ".";
            if after_paren && dotted {
                // Method form: recv.lock() — receiver is the ident
                // right before the dot.
                if toks.get(i + 2).is_some_and(|n| n.text == ")") {
                    if let Some(recv) = toks.get(i.wrapping_sub(2)) {
                        if recv.kind == TokKind::Ident {
                            out.push(LockSite { name: recv.text.clone(), line: t.line, at: i });
                        }
                    }
                }
                i += 1;
                continue;
            }
            if after_paren && !dotted {
                // Helper form: lock(&self.conns) — the lock name is
                // the last ident inside the parens.
                let mut depth = 0i64;
                let mut j = i + 1;
                let mut last_ident = None;
                while j < end {
                    match toks[j].text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {
                            if toks[j].kind == TokKind::Ident {
                                last_ident = Some(j);
                            }
                        }
                    }
                    j += 1;
                }
                if let Some(k) = last_ident {
                    out.push(LockSite { name: toks[k].text.clone(), line: t.line, at: i });
                }
                i = j.max(i + 1);
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Lint one file. `rel` is the repo-relative path used in entities.
pub fn lint_file(rel: &str, src: &str, out: &mut Vec<Finding>) {
    let lx = syntax::lex(src);
    let mask = syntax::test_mask(&lx);
    let toks = &lx.tokens;
    let request_path = is_request_path(rel);
    let library = !is_bin(rel) && !STDOUT_EXEMPT.contains(&crate_of(rel));
    let in_das_net = crate_of(rel) == "das-net";

    for i in 0..toks.len() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let dotted_call = i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(");
        let banged = toks.get(i + 1).is_some_and(|n| n.text == "!");

        if request_path {
            if t.text == "unwrap" && dotted_call && !lx.waived(t.line, "DA401") {
                out.push(site(
                    "DA401",
                    rel,
                    t.line,
                    "`.unwrap()` on the request path — a malformed or unlucky input panics the daemon; return a typed NetError instead",
                ));
            }
            if t.text == "expect" && dotted_call && !lx.waived(t.line, "DA402") {
                out.push(site(
                    "DA402",
                    rel,
                    t.line,
                    "`.expect(` on the request path — same hazard as unwrap; return a typed NetError instead",
                ));
            }
            if t.text == "panic" && banged && !lx.waived(t.line, "DA403") {
                out.push(site(
                    "DA403",
                    rel,
                    t.line,
                    "`panic!` on the request path — the daemon must degrade, not die",
                ));
            }
        }

        if t.text == "eprintln"
            && banged
            && crate_of(rel) != "das-obs"
            && !is_bin(rel)
            && !lx.waived(t.line, "DA404")
        {
            out.push(site(
                "DA404",
                rel,
                t.line,
                "`eprintln!` outside das-obs — route diagnostics through the das-obs event layer",
            ));
        }

        if t.text == "println" && banged && library && !lx.waived(t.line, "DA406") {
            out.push(Finding::new(
                "DA406",
                Severity::Warning,
                PASS,
                format!("{rel}:{}", t.line),
                "`println!` in library code — the caller owns stdout".to_string(),
            ));
        }
    }

    // Lock-order (intra-procedural): the rank of each hierarchy lock
    // the first time a function acquires it; a rank lower than one
    // already held is an inversion. Nested fn bodies are scanned as
    // their own windows and skipped in the enclosing one.
    if in_das_net {
        let fns = syntax::extract_fns(&lx);
        for (fi, f) in fns.iter().enumerate() {
            if f.in_test || f.body.is_empty() {
                continue;
            }
            let nested: Vec<std::ops::Range<usize>> = fns
                .iter()
                .enumerate()
                .filter(|(gi, g)| {
                    *gi != fi && g.body.start >= f.body.start && g.body.end <= f.body.end
                })
                .map(|(_, g)| g.body.clone())
                .collect();
            let mut seen: Vec<usize> = Vec::new();
            for s in lock_sites(toks, f.body.clone()) {
                if nested.iter().any(|r| r.contains(&s.at)) {
                    continue;
                }
                let Some(rank) = LOCK_HIERARCHY.iter().position(|&h| h == s.name) else {
                    continue;
                };
                if seen.contains(&rank) {
                    continue;
                }
                if let Some(&held) = seen.iter().max() {
                    if rank < held && !lx.waived(s.line, "DA405") {
                        out.push(site(
                            "DA405",
                            rel,
                            s.line,
                            &format!(
                                "lock `{}` acquired after `{}` — violates the declared hierarchy {:?} and risks an AB/BA deadlock",
                                s.name, LOCK_HIERARCHY[held], LOCK_HIERARCHY
                            ),
                        ));
                    }
                }
                seen.push(rank);
            }
        }
    }
}

fn site(code: &'static str, rel: &str, lineno: u32, msg: &str) -> Finding {
    Finding::new(code, Severity::Error, PASS, format!("{rel}:{lineno}"), msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_path_panics_are_flagged_and_waivable() {
        let src = "\
fn handle(&self) {
    let v = frame.len().checked_sub(4).unwrap();
    let w = map.get(&k).expect(\"present\");
    // das-lint: allow(DA403)
    panic!(\"boom\");
}
";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/server.rs", src, &mut out);
        let codes: Vec<&str> = out.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"DA401"), "{out:?}");
        assert!(codes.contains(&"DA402"), "{out:?}");
        assert!(!codes.contains(&"DA403"), "waiver must hold: {out:?}");
    }

    #[test]
    fn strings_comments_and_tests_do_not_fire() {
        let src = "\
fn ok() {
    let s = \"call .unwrap() for fun\"; // .unwrap() here too
}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!(); }
}
";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/codec.rs", src, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn braces_in_test_strings_do_not_unmask_the_module() {
        // The regression the line heuristic had: the string \"}\"
        // closed its brace count early, so the unwrap below was
        // treated as live code.
        let src = "\
#[cfg(test)]
mod tests {
    const BRACE: &str = \"}\";
    fn t() { x.unwrap(); panic!(); }
}
";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/codec.rs", src, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn expect_err_and_non_request_path_are_exempt() {
        let mut out = Vec::new();
        lint_file(
            "crates/das-net/src/proto.rs",
            "fn f() { let e = r.expect_err(\"no\"); }\n",
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        // unwrap in a non-request-path crate is clippy's business,
        // not this pass's.
        lint_file("crates/das-core/src/predict.rs", "fn f() { x.unwrap(); }\n", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn print_macros_are_scoped() {
        let mut out = Vec::new();
        lint_file("crates/das-core/src/plan.rs", "fn f() { eprintln!(\"x\"); }\n", &mut out);
        assert!(out.iter().any(|f| f.code == "DA404"), "{out:?}");
        out.clear();
        lint_file("crates/das-core/src/plan.rs", "fn f() { println!(\"x\"); }\n", &mut out);
        assert!(out.iter().any(|f| f.code == "DA406"), "{out:?}");
        out.clear();
        // bins own their stdio; das-obs and das-bench are exempt.
        lint_file("crates/das-net/src/bin/dasd.rs", "fn f() { eprintln!(\"x\"); println!(); }\n", &mut out);
        lint_file("crates/das-bench/src/lib.rs", "fn f() { println!(\"x\"); }\n", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_order_inversion_is_caught() {
        let bad = "\
fn inverted(&self) {
    let d = lock(&self.downs);
    let c = lock(&self.conns);
}
";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/peer.rs", bad, &mut out);
        assert!(out.iter().any(|f| f.code == "DA405"), "{out:?}");

        let good = "\
fn ordered(&self) {
    let c = lock(&self.conns);
    let i = lock(&self.inner);
    let d = lock(&self.downs);
}
fn fresh(&self) {
    let c = lock(&self.conns);
}
";
        out.clear();
        lint_file("crates/das-net/src/peer.rs", good, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_sites_parse_helper_and_method_forms() {
        let lx = syntax::lex(
            "let c = lock(&self.conns); let g = self.inner.lock(); let x = lock(&mut rx); no locks here",
        );
        let names: Vec<String> = lock_sites(&lx.tokens, 0..lx.tokens.len())
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(names, ["conns", "inner", "rx"]);
    }

    #[test]
    fn unwrap_mentions_in_strings_never_fire() {
        // A message string *about* unwrap, and a format string with
        // braces, must both be inert.
        let src = "fn f() { return Err(\"don't .unwrap() here {}\".into()); }\n";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/retry.rs", src, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
