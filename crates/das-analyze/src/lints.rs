//! Pass — request-path source lints, token-based.
//!
//! Lints over the workspace sources, focused on the places where a
//! panic or a stray print is a production hazard rather than a style
//! nit:
//!
//! * `DA401`/`DA402`/`DA403` (error) — `.unwrap()`, `.expect(` or
//!   `panic!` in das-net's wire-facing modules. A panic on the
//!   request path kills a daemon serving every client; these modules
//!   must surface typed errors instead.
//! * `DA404` (error) — `eprintln!` outside das-obs. Diagnostics go
//!   through the das-obs event/metrics layer so they carry structure
//!   and can be rate-limited; raw stderr writes bypass all of it.
//! * `DA405` (error) — a function acquires hierarchy locks out of
//!   the declared order (`rx → conns → inner → downs → inbox → sched
//!   → done → pending → wr → ewma`). Out-of-order
//!   acquisition across threads is an AB/BA deadlock. This is the
//!   *intra*-procedural check; the `lockgraph` pass propagates
//!   acquisitions across calls (`DA407`/`DA408`).
//! * `DA406` (warning) — `println!` in library (non-`bin/`,
//!   non-test) code. Library crates must not write to a stdout they
//!   do not own; das-bench's report harness is the sanctioned
//!   exception.
//! * `DA430` (warning) — a `// das-lint: allow(CODE)` waiver that
//!   suppressed nothing. Stale waivers are worse than none: they
//!   read as "this site is audited" while silently licensing the
//!   next regression. Every waiver-honoring pass reports its own
//!   stale waivers through [`stale_waivers`].
//!
//! The pass runs on the token stream from [`crate::syntax`], not on
//! raw lines: a `.unwrap()` inside a string literal, an `eprintln!`
//! inside a comment, and a `#[cfg(test)]` module whose body contains
//! braces in strings are all invisible to it — the false-positive
//! classes the line-based predecessor had.
//!
//! Any site can be waived with `// das-lint: allow(<code>)` on the
//! same line or the line directly above; the waiver is deliberate and
//! greppable. Tokens inside `#[cfg(test)]` items are exempt — tests
//! panic by design.

use std::path::Path;

use crate::finding::{Finding, Severity};
use crate::syntax::{self, TokKind, Token};

const PASS: &str = "lints";

/// Request-path modules (repo-relative suffixes): every byte the
/// das-net entries touch comes off a socket, so panics are
/// remote-triggerable; the das-load entries and the `das` CLI drive
/// live fleets from CI and long soak runs, where an unwrap on a
/// transient error kills the run instead of counting it.
pub const REQUEST_PATH: [&str; 13] = [
    "crates/das-net/src/client.rs",
    "crates/das-net/src/server.rs",
    "crates/das-net/src/codec.rs",
    "crates/das-net/src/peer.rs",
    "crates/das-net/src/retry.rs",
    "crates/das-net/src/proto.rs",
    "crates/das-net/src/engine.rs",
    "crates/das-net/src/pipeline.rs",
    "crates/das-net/src/hedge.rs",
    "crates/das-load/src/lib.rs",
    "crates/das-load/src/fleet.rs",
    "crates/das-load/src/report.rs",
    "src/bin/das.rs",
];

/// The declared lock hierarchy (outermost first). A function's first
/// acquisitions must follow this order. `inbox`, `sched` and `done`
/// are the event-loop engine's shard queues and fair scheduler (the
/// shed path pushes an `Overloaded` reply to `done` while holding
/// `sched`, hence the order); `pending` and `wr` belong to the
/// pipelined client (reply-routing table, then write half); `ewma`
/// is the hedging load tracker; `errs` is das-load's monitor-state
/// error breakdown, held only to bump a counter; `spans` is the span
/// flight recorder's ring/reservoir state, the hierarchy's leaf —
/// nothing may be acquired while it is held, so every request-path
/// stage can record a span under any combination of the other ranks.
pub const LOCK_HIERARCHY: [&str; 12] = [
    "rx", "conns", "inner", "downs", "inbox", "sched", "done", "pending", "wr", "ewma", "errs",
    "spans",
];

/// Crates whose library code may print to stdout: das-obs is the
/// diagnostics layer itself; das-bench's report renderer exists to
/// print.
const STDOUT_EXEMPT: [&str; 2] = ["das-obs", "das-bench"];

/// Run the lints over `root/crates/*/src/**/*.rs`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut scanned = 0usize;
    for (rel, src) in workspace_sources(root) {
        scanned += 1;
        lint_file(&rel, &src, &mut out);
    }
    out.push(Finding::new(
        "DA400",
        Severity::Info,
        PASS,
        "crates/*/src",
        format!("{scanned} source files linted (token-based)"),
    ));
    out
}

/// Every `crates/*/src/**/*.rs` file under `root`, plus the root
/// package's `src/**/*.rs` (the `das` CLI), as (repo-relative path,
/// contents), sorted by path. Shared with the taint, lock-graph,
/// lockset and atomics passes.
pub fn workspace_sources(root: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    collect_rs_files(&root.join("src"), &mut files);
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, src));
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // From the crates/ level, descend only into each crate's
            // src/ tree — benches, tests/ and target/ are out of
            // scope by construction.
            if dir.ends_with("crates") {
                collect_rs_files(&path.join("src"), out);
            } else {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Which crate a repo-relative path is in: the directory under
/// `crates/`, or `das` for the root package's `src/` tree.
pub fn crate_of(rel: &str) -> &str {
    if rel.starts_with("src/") {
        return "das";
    }
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

fn is_bin(rel: &str) -> bool {
    rel.contains("/src/bin/") || rel.starts_with("src/bin/") || rel.ends_with("/main.rs")
}

/// Whether a repo-relative path is one of the request-path modules
/// in [`REQUEST_PATH`].
pub fn is_request_path(rel: &str) -> bool {
    REQUEST_PATH.iter().any(|m| rel.ends_with(m))
}

/// A lock acquisition found in a token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// The lock's field/variable name (`conns`, `inner`, …).
    pub name: String,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the acquisition's first token.
    pub at: usize,
}

/// Find every lock acquisition in `toks[range]`: the helper form
/// `lock(&self.X)` / `lock(&mut X)` and the method form `X.lock()`.
/// Shared with the lock-graph pass.
pub fn lock_sites(toks: &[Token], range: std::ops::Range<usize>) -> Vec<LockSite> {
    let mut out = Vec::new();
    let mut i = range.start;
    let end = range.end.min(toks.len());
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text == "lock" {
            let after_paren = toks.get(i + 1).is_some_and(|n| n.text == "(");
            let dotted = i > 0 && toks[i - 1].text == ".";
            if after_paren && dotted {
                // Method form: recv.lock() — receiver is the ident
                // right before the dot.
                if toks.get(i + 2).is_some_and(|n| n.text == ")") {
                    if let Some(recv) = toks.get(i.wrapping_sub(2)) {
                        if recv.kind == TokKind::Ident {
                            out.push(LockSite { name: recv.text.clone(), line: t.line, at: i });
                        }
                    }
                }
                i += 1;
                continue;
            }
            if after_paren && !dotted {
                // Helper form: lock(&self.conns) — the lock name is
                // the last ident inside the parens.
                let mut depth = 0i64;
                let mut j = i + 1;
                let mut last_ident = None;
                while j < end {
                    match toks[j].text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {
                            if toks[j].kind == TokKind::Ident {
                                last_ident = Some(j);
                            }
                        }
                    }
                    j += 1;
                }
                if let Some(k) = last_ident {
                    out.push(LockSite { name: toks[k].text.clone(), line: t.line, at: i });
                }
                i = j.max(i + 1);
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Lint one file. `rel` is the repo-relative path used in entities.
pub fn lint_file(rel: &str, src: &str, out: &mut Vec<Finding>) {
    let lx = syntax::lex(src);
    let mask = syntax::test_mask(&lx);
    let toks = &lx.tokens;
    let request_path = is_request_path(rel);
    let library = !is_bin(rel) && !STDOUT_EXEMPT.contains(&crate_of(rel));
    // Hierarchy-ranked crates: das-net owns most of the hierarchy,
    // das-load contributes the monitor-state `errs` rank.
    let ranked = matches!(crate_of(rel), "das-net" | "das-load");
    // (finding line, code) pairs where a waiver actually suppressed a
    // finding — fuel for the stale-waiver sweep at the end.
    let mut used: Vec<(u32, String)> = Vec::new();

    for i in 0..toks.len() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let dotted_call = i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(");
        let banged = toks.get(i + 1).is_some_and(|n| n.text == "!");

        if request_path {
            if t.text == "unwrap" && dotted_call && !waive(&lx, t.line, "DA401", &mut used) {
                out.push(site(
                    "DA401",
                    rel,
                    t.line,
                    "`.unwrap()` on the request path — a malformed or unlucky input panics the daemon; return a typed NetError instead",
                ));
            }
            if t.text == "expect" && dotted_call && !waive(&lx, t.line, "DA402", &mut used) {
                out.push(site(
                    "DA402",
                    rel,
                    t.line,
                    "`.expect(` on the request path — same hazard as unwrap; return a typed NetError instead",
                ));
            }
            if t.text == "panic" && banged && !waive(&lx, t.line, "DA403", &mut used) {
                out.push(site(
                    "DA403",
                    rel,
                    t.line,
                    "`panic!` on the request path — the daemon must degrade, not die",
                ));
            }
        }

        if t.text == "eprintln"
            && banged
            && crate_of(rel) != "das-obs"
            && !is_bin(rel)
            && !waive(&lx, t.line, "DA404", &mut used)
        {
            out.push(site(
                "DA404",
                rel,
                t.line,
                "`eprintln!` outside das-obs — route diagnostics through the das-obs event layer",
            ));
        }

        if t.text == "println" && banged && library && !waive(&lx, t.line, "DA406", &mut used) {
            out.push(Finding::new(
                "DA406",
                Severity::Warning,
                PASS,
                format!("{rel}:{}", t.line),
                "`println!` in library code — the caller owns stdout".to_string(),
            ));
        }
    }

    // Lock-order (intra-procedural): the rank of each hierarchy lock
    // the first time a function acquires it; a rank lower than one
    // already held is an inversion. Nested fn bodies are scanned as
    // their own windows and skipped in the enclosing one.
    if ranked {
        let fns = syntax::extract_fns(&lx);
        for (fi, f) in fns.iter().enumerate() {
            if f.in_test || f.body.is_empty() {
                continue;
            }
            let nested: Vec<std::ops::Range<usize>> = fns
                .iter()
                .enumerate()
                .filter(|(gi, g)| {
                    *gi != fi && g.body.start >= f.body.start && g.body.end <= f.body.end
                })
                .map(|(_, g)| g.body.clone())
                .collect();
            let mut seen: Vec<usize> = Vec::new();
            for s in lock_sites(toks, f.body.clone()) {
                if nested.iter().any(|r| r.contains(&s.at)) {
                    continue;
                }
                let Some(rank) = LOCK_HIERARCHY.iter().position(|&h| h == s.name) else {
                    continue;
                };
                if seen.contains(&rank) {
                    continue;
                }
                if let Some(&held) = seen.iter().max() {
                    if rank < held && !waive(&lx, s.line, "DA405", &mut used) {
                        out.push(site(
                            "DA405",
                            rel,
                            s.line,
                            &format!(
                                "lock `{}` acquired after `{}` — violates the declared hierarchy {:?} and risks an AB/BA deadlock",
                                s.name, LOCK_HIERARCHY[held], LOCK_HIERARCHY
                            ),
                        ));
                    }
                }
                seen.push(rank);
            }
        }
    }

    stale_waivers(
        PASS,
        rel,
        &lx,
        &["DA401", "DA402", "DA403", "DA404", "DA405", "DA406"],
        &used,
        out,
    );
}

/// Check a waiver and record the use when it fires, so the
/// stale-waiver sweep can tell live waivers from dead ones.
fn waive(lx: &syntax::Lexed, line: u32, code: &'static str, used: &mut Vec<(u32, String)>) -> bool {
    if lx.waived(line, code) {
        used.push((line, code.to_string()));
        true
    } else {
        false
    }
}

/// A lexed file carried between a pass's scan and its stale-waiver
/// sweep: repo-relative path, token stream, and the (finding line,
/// code) pairs where a waiver fired.
pub type LexedFile = (String, syntax::Lexed, Vec<(u32, String)>);

/// `DA430` — stale-waiver sweep, shared by every waiver-honoring
/// pass. `owned` is the set of codes the calling pass can suppress;
/// `used` holds the (finding line, code) pairs where a waiver
/// actually fired this run. A waiver comment on line `L` covers
/// findings on `L` and `L+1`; one that covers nothing is reported.
/// Waivers annotating `#[cfg(test)]` code are the tests' business
/// and are skipped.
pub fn stale_waivers(
    pass: &'static str,
    rel: &str,
    lx: &syntax::Lexed,
    owned: &[&str],
    used: &[(u32, String)],
    out: &mut Vec<Finding>,
) {
    let mask = syntax::test_mask(lx);
    for (line, code) in lx.waivers() {
        if !owned.contains(&code.as_str()) {
            continue;
        }
        let in_test = lx
            .tokens
            .iter()
            .position(|t| t.line >= line)
            .is_some_and(|i| mask.get(i).copied().unwrap_or(false));
        if in_test {
            continue;
        }
        let fired = used.iter().any(|(l, c)| c == &code && (*l == line || *l == line + 1));
        if !fired {
            out.push(Finding::new(
                "DA430",
                Severity::Warning,
                pass,
                format!("{rel}:{line}"),
                format!(
                    "stale waiver: `das-lint: allow({code})` suppresses nothing — remove it so it cannot mask a future regression"
                ),
            ));
        }
    }
}

fn site(code: &'static str, rel: &str, lineno: u32, msg: &str) -> Finding {
    Finding::new(code, Severity::Error, PASS, format!("{rel}:{lineno}"), msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_path_panics_are_flagged_and_waivable() {
        let src = "\
fn handle(&self) {
    let v = frame.len().checked_sub(4).unwrap();
    let w = map.get(&k).expect(\"present\");
    // das-lint: allow(DA403)
    panic!(\"boom\");
}
";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/server.rs", src, &mut out);
        let codes: Vec<&str> = out.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"DA401"), "{out:?}");
        assert!(codes.contains(&"DA402"), "{out:?}");
        assert!(!codes.contains(&"DA403"), "waiver must hold: {out:?}");
    }

    #[test]
    fn strings_comments_and_tests_do_not_fire() {
        let src = "\
fn ok() {
    let s = \"call .unwrap() for fun\"; // .unwrap() here too
}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!(); }
}
";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/codec.rs", src, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn braces_in_test_strings_do_not_unmask_the_module() {
        // The regression the line heuristic had: the string \"}\"
        // closed its brace count early, so the unwrap below was
        // treated as live code.
        let src = "\
#[cfg(test)]
mod tests {
    const BRACE: &str = \"}\";
    fn t() { x.unwrap(); panic!(); }
}
";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/codec.rs", src, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn expect_err_and_non_request_path_are_exempt() {
        let mut out = Vec::new();
        lint_file(
            "crates/das-net/src/proto.rs",
            "fn f() { let e = r.expect_err(\"no\"); }\n",
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        // unwrap in a non-request-path crate is clippy's business,
        // not this pass's.
        lint_file("crates/das-core/src/predict.rs", "fn f() { x.unwrap(); }\n", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn print_macros_are_scoped() {
        let mut out = Vec::new();
        lint_file("crates/das-core/src/plan.rs", "fn f() { eprintln!(\"x\"); }\n", &mut out);
        assert!(out.iter().any(|f| f.code == "DA404"), "{out:?}");
        out.clear();
        lint_file("crates/das-core/src/plan.rs", "fn f() { println!(\"x\"); }\n", &mut out);
        assert!(out.iter().any(|f| f.code == "DA406"), "{out:?}");
        out.clear();
        // bins own their stdio; das-obs and das-bench are exempt.
        lint_file("crates/das-net/src/bin/dasd.rs", "fn f() { eprintln!(\"x\"); println!(); }\n", &mut out);
        lint_file("crates/das-bench/src/lib.rs", "fn f() { println!(\"x\"); }\n", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_order_inversion_is_caught() {
        let bad = "\
fn inverted(&self) {
    let d = lock(&self.downs);
    let c = lock(&self.conns);
}
";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/peer.rs", bad, &mut out);
        assert!(out.iter().any(|f| f.code == "DA405"), "{out:?}");

        let good = "\
fn ordered(&self) {
    let c = lock(&self.conns);
    let i = lock(&self.inner);
    let d = lock(&self.downs);
}
fn fresh(&self) {
    let c = lock(&self.conns);
}
";
        out.clear();
        lint_file("crates/das-net/src/peer.rs", good, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lock_sites_parse_helper_and_method_forms() {
        let lx = syntax::lex(
            "let c = lock(&self.conns); let g = self.inner.lock(); let x = lock(&mut rx); no locks here",
        );
        let names: Vec<String> = lock_sites(&lx.tokens, 0..lx.tokens.len())
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(names, ["conns", "inner", "rx"]);
    }

    #[test]
    fn das_load_and_cli_are_on_the_request_path() {
        let mut out = Vec::new();
        lint_file("crates/das-load/src/lib.rs", "fn f() { x.unwrap(); }\n", &mut out);
        assert!(out.iter().any(|f| f.code == "DA401"), "{out:?}");
        out.clear();
        lint_file("src/bin/das.rs", "fn f() { x.expect(\"y\"); }\n", &mut out);
        assert!(out.iter().any(|f| f.code == "DA402"), "{out:?}");
        // The CLI is a bin: its prints are its own business.
        out.clear();
        lint_file("src/bin/das.rs", "fn f() { println!(\"x\"); eprintln!(\"y\"); }\n", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn errs_rank_is_part_of_the_hierarchy() {
        let bad = "fn f(&self) { let s = lock(&self.errs); let e = lock(&self.ewma); }\n";
        let mut out = Vec::new();
        lint_file("crates/das-load/src/lib.rs", bad, &mut out);
        assert!(out.iter().any(|f| f.code == "DA405"), "{out:?}");
        let good = "fn f(&self) { let e = lock(&self.ewma); let s = lock(&self.errs); }\n";
        out.clear();
        lint_file("crates/das-load/src/lib.rs", good, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn stale_waiver_is_da430_and_live_waiver_is_not() {
        let stale = "\
fn handle(&self) {
    // das-lint: allow(DA401) nothing below actually unwraps
    let v = compute();
}
";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/server.rs", stale, &mut out);
        assert!(out.iter().any(|f| f.code == "DA430"), "{out:?}");

        let live = "\
fn handle(&self) {
    // das-lint: allow(DA401) length checked two lines up
    let v = frame.len().checked_sub(4).unwrap();
}
";
        out.clear();
        lint_file("crates/das-net/src/server.rs", live, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn waivers_in_test_code_are_not_stale() {
        let src = "\
#[cfg(test)]
mod tests {
    // das-lint: allow(DA401) fixture text, not a live waiver
    fn t() {}
}
";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/server.rs", src, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unwrap_mentions_in_strings_never_fire() {
        // A message string *about* unwrap, and a format string with
        // braces, must both be inert.
        let src = "fn f() { return Err(\"don't .unwrap() here {}\".into()); }\n";
        let mut out = Vec::new();
        lint_file("crates/das-net/src/retry.rs", src, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
