//! Pass — atomics-ordering audit (`DA71x`).
//!
//! Every `Ordering::*` use in das-net, das-obs and das-load is
//! classified against the operation it parameterizes (the enclosing
//! `load` / `store` / `fetch_*` / `compare_exchange` call and its
//! receiver). On top of the census, three defect patterns:
//!
//! * `DA711` (warning) — a `Relaxed` *load* that directly feeds a
//!   control-flow decision (`if` / `while`). This is the shape of
//!   the publication anti-pattern: thread A writes data then sets a
//!   Relaxed flag, thread B branches on the flag and reads the data
//!   — nothing orders the data writes before the flag store, so B
//!   can observe the flag without the data. A genuine
//!   flag-only/stat-only load is fine — waive it with a justifying
//!   comment, which `DA714` verifies exists.
//! * `DA712` (warning) — mismatched store/load strength on one
//!   atomic: one side synchronizes (`Release`/`SeqCst`) while the
//!   other is `Relaxed`. Half a happens-before edge is no edge; the
//!   pair should agree (both Relaxed for pure counters, both
//!   synchronizing for publication).
//! * `DA713` (warning) — a `fetch_*` / `compare_exchange` / `swap`
//!   whose returned value is discarded at some sites but used at
//!   others *for the same atomic and operation*. When the return
//!   value carries the invariant (a ticket, an admission decision),
//!   the discarding site is almost always a lost check.
//! * `DA714` (warning) — a `DA71x` waiver whose comment carries no
//!   justification. The tentpole contract is "fixed, strengthened,
//!   or waived with a justifying comment"; a bare `allow` fails it.
//!
//! `DA710` (info) is the per-crate census. Waivers are honored per
//! site; stale ones are reported as `DA430` via the shared sweep.

use std::collections::BTreeMap;
use std::path::Path;

use crate::finding::{Finding, Severity};
use crate::lints;
use crate::syntax::{self, TokKind, Token};

const PASS: &str = "atomics";

/// Crates audited: the ones that hand-roll concurrency.
const CRATES: [&str; 3] = ["das-net", "das-obs", "das-load"];

/// One classified `Ordering::*` use.
struct Site {
    file: String,
    line: u32,
    /// `Relaxed`, `Acquire`, `Release`, `AcqRel`, `SeqCst`.
    ordering: String,
    /// The callee the ordering parameterizes (`load`, `store`,
    /// `fetch_add`, …) when recoverable.
    op: Option<String>,
    /// The receiver ident (`JSON`, `stop`, `shutdown`, …) when
    /// recoverable.
    recv: Option<String>,
    /// Whether the call's result is consumed (next token after the
    /// closing paren is not `;`).
    result_used: bool,
    /// Whether a `if`/`while` keyword directly precedes the
    /// expression in the same statement.
    in_branch: bool,
}

/// Run the atomics audit over the concurrency crates under `root`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut sites: Vec<Site> = Vec::new();
    let mut lexed: Vec<lints::LexedFile> = Vec::new();

    for (rel, src) in lints::workspace_sources(root) {
        if !CRATES.contains(&lints::crate_of(&rel)) {
            continue;
        }
        let lx = syntax::lex(&src);
        collect_sites(&rel, &lx, &mut sites);
        lexed.push((rel, lx, Vec::new()));
    }

    // DA711 — Relaxed load feeding control flow.
    for s in &sites {
        if s.ordering == "Relaxed"
            && s.op.as_deref() == Some("load")
            && s.in_branch
            && !waive(&mut lexed, &s.file, s.line, "DA711")
        {
            out.push(Finding::new(
                "DA711",
                Severity::Warning,
                PASS,
                format!("{}:{}", s.file, s.line),
                format!(
                    "Relaxed load of `{}` feeds a control-flow decision — if the branch reads data published by the flag's writer, nothing orders that data before the flag (publication pattern); use Acquire/Release or waive with a justification",
                    s.recv.as_deref().unwrap_or("<atomic>")
                ),
            ));
        }
    }

    // DA712 — mismatched store/load strength per (crate, receiver).
    // Only pairs where both sides exist are judged: a store-only or
    // load-only receiver has no pair to mismatch.
    type StoreLoad<'a> = (Vec<&'a Site>, Vec<&'a Site>);
    let mut pairs: BTreeMap<(String, String), StoreLoad> = BTreeMap::new();
    for s in &sites {
        let (Some(op), Some(recv)) = (&s.op, &s.recv) else {
            continue;
        };
        let key = (lints::crate_of(&s.file).to_string(), recv.clone());
        match op.as_str() {
            "store" => pairs.entry(key).or_default().0.push(s),
            "load" => pairs.entry(key).or_default().1.push(s),
            _ => {}
        }
    }
    for ((krate, recv), (stores, loads)) in &pairs {
        if stores.is_empty() || loads.is_empty() {
            continue;
        }
        let store_sync = stores.iter().any(|s| s.ordering != "Relaxed");
        let load_sync = loads.iter().any(|s| s.ordering != "Relaxed");
        let store_relaxed = stores.iter().any(|s| s.ordering == "Relaxed");
        let load_relaxed = loads.iter().any(|s| s.ordering == "Relaxed");
        let mismatch = (store_sync && load_relaxed) || (load_sync && store_relaxed);
        if mismatch {
            let w = stores.iter().chain(loads.iter()).find(|s| s.ordering == "Relaxed").unwrap();
            if waive(&mut lexed, &w.file, w.line, "DA712") {
                continue;
            }
            let sd = stores.iter().map(|s| s.ordering.as_str()).collect::<Vec<_>>().join("/");
            let ld = loads.iter().map(|s| s.ordering.as_str()).collect::<Vec<_>>().join("/");
            out.push(Finding::new(
                "DA712",
                Severity::Warning,
                PASS,
                format!("{}:{}", w.file, w.line),
                format!(
                    "atomic `{recv}` in {krate} pairs store ordering {sd} with load ordering {ld} — one side synchronizes, the other doesn't, so the happens-before edge is broken; make the pair agree"
                ),
            ));
        }
    }

    // DA713 — same (crate, receiver, op) with the result used at some
    // sites and discarded at others.
    let mut rmw: BTreeMap<(String, String, String), Vec<&Site>> = BTreeMap::new();
    for s in &sites {
        let (Some(op), Some(recv)) = (&s.op, &s.recv) else {
            continue;
        };
        if op.starts_with("fetch_") || op == "compare_exchange" || op == "swap" {
            rmw.entry((lints::crate_of(&s.file).to_string(), recv.clone(), op.clone()))
                .or_default()
                .push(s);
        }
    }
    for ((krate, recv, op), group) in &rmw {
        let any_used = group.iter().any(|s| s.result_used);
        let discarded: Vec<&&Site> = group.iter().filter(|s| !s.result_used).collect();
        if any_used && !discarded.is_empty() {
            for s in discarded {
                if waive(&mut lexed, &s.file, s.line, "DA713") {
                    continue;
                }
                out.push(Finding::new(
                    "DA713",
                    Severity::Warning,
                    PASS,
                    format!("{}:{}", s.file, s.line),
                    format!(
                        "`{recv}.{op}(…)` result discarded here but consumed at other {krate} sites — the return value carries the invariant for this atomic; check it or waive with a justification"
                    ),
                ));
            }
        }
    }

    // DA714 — a DA71x waiver must justify itself: text after
    // `allow(DA71x)` in the same comment. Waivers annotating
    // `#[cfg(test)]` code are skipped like the stale-waiver sweep.
    for (rel, lx, _) in &lexed {
        let mask = syntax::test_mask(lx);
        for c in &lx.comments {
            let in_test = lx
                .tokens
                .iter()
                .position(|t| t.line >= c.line)
                .is_some_and(|i| mask.get(i).copied().unwrap_or(false));
            if in_test {
                continue;
            }
            let mut rest = c.text.as_str();
            while let Some(p) = rest.find("das-lint: allow(DA71") {
                let tail = &rest[p..];
                let Some(close) = tail.find(')') else { break };
                let justification = tail[close + 1..].trim();
                if justification.len() < 8 {
                    out.push(Finding::new(
                        "DA714",
                        Severity::Warning,
                        PASS,
                        format!("{rel}:{}", c.line),
                        "atomics waiver without a justification — say *why* the relaxed ordering is sound (what the flag guards, what synchronizes the data)".to_string(),
                    ));
                }
                rest = &tail[close..];
            }
        }
    }

    // DA430 — stale DA71x waivers.
    for (rel, lx, used) in &lexed {
        lints::stale_waivers(PASS, rel, lx, &["DA711", "DA712", "DA713"], used, &mut out);
    }

    // DA710 — census.
    let mut census: BTreeMap<(String, String), usize> = BTreeMap::new();
    for s in &sites {
        *census
            .entry((lints::crate_of(&s.file).to_string(), s.ordering.clone()))
            .or_default() += 1;
    }
    let mut per_crate: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for ((krate, ordering), n) in &census {
        per_crate.entry(krate.clone()).or_default().push(format!("{ordering}×{n}"));
    }
    let rendered = per_crate
        .iter()
        .map(|(k, v)| format!("{k}: {}", v.join(" ")))
        .collect::<Vec<_>>()
        .join("; ");
    out.push(Finding::new(
        "DA710",
        Severity::Info,
        PASS,
        "crates/{das-net,das-obs,das-load}/src",
        format!("{} Ordering uses classified — {}", sites.len(), rendered),
    ));
    out
}

/// Check a waiver in the per-file store and record the use when it
/// fires, so the stale-waiver sweep can tell live waivers from dead
/// ones.
fn waive(lexed: &mut [lints::LexedFile], file: &str, line: u32, code: &str) -> bool {
    for (rel, lx, used) in lexed.iter_mut() {
        if rel == file {
            if lx.waived(line, code) {
                used.push((line, code.to_string()));
                return true;
            }
            return false;
        }
    }
    false
}

/// Collect every `Ordering::X` site in a file with its operation
/// context. Tokens inside `#[cfg(test)]` regions are skipped.
fn collect_sites(rel: &str, lx: &syntax::Lexed, out: &mut Vec<Site>) {
    let toks = &lx.tokens;
    let mask = syntax::test_mask(lx);
    for i in 0..toks.len() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        if !(t.kind == TokKind::Ident && t.text == "Ordering") {
            continue;
        }
        if !(toks.get(i + 1).is_some_and(|t| t.text == ":")
            && toks.get(i + 2).is_some_and(|t| t.text == ":"))
        {
            continue;
        }
        let Some(ord_tok) = toks.get(i + 3) else { continue };
        if ord_tok.kind != TokKind::Ident {
            continue;
        }
        let (op, recv, call_open) = enclosing_call(toks, i);
        // The result is consumed unless the call both *ends* its
        // statement (`;` right after the closing paren) and *starts*
        // it (nothing upstream — no `let`, `=`, `return`, argument
        // position — binds the value).
        let result_used = match call_open.and_then(|open| syntax::matching(toks, open, "(", ")")) {
            Some(close) if toks.get(close + 1).is_some_and(|t| t.text == ";") => {
                value_bound_upstream(toks, call_open.unwrap_or(i))
            }
            _ => true,
        };
        let in_branch = branches_directly(toks, call_open.unwrap_or(i));
        out.push(Site {
            file: rel.to_string(),
            line: t.line,
            ordering: ord_tok.text.clone(),
            op,
            recv,
            result_used,
            in_branch,
        });
    }
}

/// Find the call the `Ordering` token at `i` is an argument of:
/// walking backwards, the first unmatched `(` is the call's
/// argument-list opener and the ident before it the callee. The
/// receiver is the ident before the callee's dot, hopping over one
/// `[…]` index group (`remaining[i].fetch_update`).
fn enclosing_call(toks: &[Token], i: usize) -> (Option<String>, Option<String>, Option<usize>) {
    let mut depth = 0i64;
    let mut j = i;
    loop {
        let Some(k) = j.checked_sub(1) else { return (None, None, None) };
        j = k;
        match toks[j].text.as_str() {
            ")" => depth += 1,
            "(" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" | "{" | "}" if depth == 0 => return (None, None, None),
            _ => {}
        }
    }
    let open = j;
    let callee = open.checked_sub(1).map(|k| &toks[k]);
    let Some(callee) = callee.filter(|t| t.kind == TokKind::Ident) else {
        return (None, None, Some(open));
    };
    // Receiver: callee is preceded by `.`; before that either an
    // ident or a `[…]` group whose opener is preceded by an ident.
    let mut recv = None;
    if let Some(dot) = open.checked_sub(2) {
        if toks[dot].text == "." {
            if let Some(mut r) = dot.checked_sub(1) {
                if toks[r].text == "]" {
                    // Hop the index group.
                    let mut d = 0i64;
                    loop {
                        match toks[r].text.as_str() {
                            "]" => d += 1,
                            "[" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        let Some(k) = r.checked_sub(1) else { break };
                        r = k;
                    }
                    r = r.saturating_sub(1);
                }
                if toks[r].kind == TokKind::Ident {
                    recv = Some(toks[r].text.clone());
                }
            }
        }
    }
    (Some(callee.text.clone()), recv, Some(open))
}

/// Whether something upstream in the same statement consumes the
/// call's value: a `let`/`=` binding, `return`, a branch head, or an
/// argument/tuple position. Receiver-chain idents and dots fall
/// through; `;`/`{`/`}` mean the call opens its own statement.
fn value_bound_upstream(toks: &[Token], at: usize) -> bool {
    let mut j = at;
    while let Some(k) = j.checked_sub(1) {
        j = k;
        match toks[j].text.as_str() {
            ";" | "{" | "}" => return false,
            "=" | "let" | "return" | "if" | "while" | "match" | "(" | "," | "=>" => return true,
            _ => {}
        }
    }
    false
}

/// Whether the expression whose call opens at `at` sits directly
/// under an `if`/`while` head: scan backwards for the keyword
/// without crossing a statement boundary (`;`, `{`, `}`, `let`,
/// `match`, `=`).
fn branches_directly(toks: &[Token], at: usize) -> bool {
    let mut j = at;
    while let Some(k) = j.checked_sub(1) {
        j = k;
        let t = &toks[j];
        match t.text.as_str() {
            ";" | "{" | "}" | "let" | "match" | "=" | "," => return false,
            "if" | "while" => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(krate: &str, src: &str) -> Vec<Finding> {
        let dir = std::env::temp_dir().join(format!(
            "das-atomics-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let sdir = dir.join("crates").join(krate).join("src");
        std::fs::create_dir_all(&sdir).unwrap();
        std::fs::write(sdir.join("lib.rs"), src).unwrap();
        let out = run(&dir);
        std::fs::remove_dir_all(&dir).ok();
        out
    }

    #[test]
    fn relaxed_branch_load_is_da711_and_waivable() {
        let src = "\
fn f() {
    if READY.load(Ordering::Relaxed) {
        consume(&DATA);
    }
}
";
        let out = run_on("das-net", src);
        let f = out.iter().find(|f| f.code == "DA711").expect("DA711");
        assert!(f.message.contains("READY"), "{}", f.message);

        let waived = "\
fn f() {
    // das-lint: allow(DA711) READY is a pure quiesce flag; data is joined first
    if READY.load(Ordering::Relaxed) {
        consume(&DATA);
    }
}
";
        let out = run_on("das-net", waived);
        assert!(!out.iter().any(|f| f.code == "DA711"), "{out:?}");
        assert!(!out.iter().any(|f| f.code == "DA714"), "justified: {out:?}");
        assert!(!out.iter().any(|f| f.code == "DA430"), "waiver fired: {out:?}");
    }

    #[test]
    fn let_bound_relaxed_load_is_not_da711() {
        let src = "fn f() { let lvl = MAX.load(Ordering::Relaxed); use_it(lvl); }\n";
        let out = run_on("das-obs", src);
        assert!(!out.iter().any(|f| f.code == "DA711"), "{out:?}");
    }

    #[test]
    fn mismatched_store_load_is_da712() {
        let src = "\
fn publish() { FLAG.store(true, Ordering::Release); }
fn observe() -> bool { let v = FLAG.load(Ordering::Relaxed); v }
";
        let out = run_on("das-net", src);
        assert!(out.iter().any(|f| f.code == "DA712"), "{out:?}");
    }

    #[test]
    fn agreeing_pairs_are_clean() {
        let src = "\
fn a() { N.store(1, Ordering::Relaxed); }
fn b() -> u8 { let v = N.load(Ordering::Relaxed); v }
fn c() { F.store(true, Ordering::SeqCst); }
fn d() -> bool { let v = F.load(Ordering::SeqCst); v }
";
        let out = run_on("das-load", src);
        assert!(!out.iter().any(|f| f.code == "DA712"), "{out:?}");
    }

    #[test]
    fn mixed_use_discard_fetch_is_da713() {
        let src = "\
fn take() -> usize { let t = NEXT.fetch_add(1, Ordering::Relaxed); t }
fn leak() { NEXT.fetch_add(1, Ordering::Relaxed); }
";
        let out = run_on("das-net", src);
        let f = out.iter().find(|f| f.code == "DA713").expect("DA713 {out:?}");
        assert!(f.entity.ends_with(":2"), "flags the discarding site: {f:?}");
    }

    #[test]
    fn uniformly_discarded_counters_are_clean() {
        let src = "\
fn bump() { HITS.fetch_add(1, Ordering::Relaxed); }
fn bump2() { HITS.fetch_add(1, Ordering::Relaxed); }
";
        let out = run_on("das-obs", src);
        assert!(!out.iter().any(|f| f.code == "DA713"), "{out:?}");
    }

    #[test]
    fn bare_waiver_is_da714() {
        let src = "\
fn f() {
    // das-lint: allow(DA711)
    if READY.load(Ordering::Relaxed) { go(); }
}
";
        let out = run_on("das-net", src);
        assert!(out.iter().any(|f| f.code == "DA714"), "{out:?}");
    }

    #[test]
    fn census_counts_orderings_per_crate() {
        let src = "\
fn f() { A.store(1, Ordering::Relaxed); let v = B.load(Ordering::Acquire); drop(v); }
";
        let out = run_on("das-net", src);
        let c = out.iter().find(|f| f.code == "DA710").expect("census");
        assert!(c.message.contains("2 Ordering uses"), "{}", c.message);
        assert!(c.message.contains("Relaxed×1"), "{}", c.message);
        assert!(c.message.contains("Acquire×1"), "{}", c.message);
    }
}
