//! Pass — wire-taint dataflow (`DA5xx`).
//!
//! Tracks values that an attacker on the wire controls and flags the
//! places where one reaches an allocation or indexing site without
//! passing a bounds check first:
//!
//! * **Integer taint** (`DA501` error / `DA502` warning) — in
//!   das-net's decode modules (`proto.rs`, `codec.rs`), a local bound
//!   from `take_u8/u16/u32/u64` or `from_le_bytes`/`from_be_bytes` is
//!   tainted. It must be compared against a bound, clamped with
//!   `.min(`/`.clamp(`, or consumed by the internally-checked
//!   `take(n)` before it reaches `vec![_; n]`, `with_capacity(n)`,
//!   a slice index, or a `read_exact` argument. An unchecked direct
//!   use is `DA501` (remote-triggerable OOM or panic); a use after
//!   arithmetic derivation is `DA502` — the derivation may have
//!   re-bounded the value, so it warns instead of erroring.
//! * **Blob taint** (`DA503` error) — in `server.rs`/`client.rs`, a
//!   payload obtained from a peer fetch (`get_strip_failover*`) or a
//!   wire message destructure (`StripData`/`PutStrip`) must have its
//!   `.len()` *compared* before the bytes are consumed (`insert`,
//!   `Bytes::from`, `extend_from_slice`, `store`, indexing, …). A
//!   short strip accepted into a `StripAssembly` panics the daemon on
//!   the first out-of-range element read; merely *reading* `.len()`
//!   (for a byte counter, say) is not validation and does not clear
//!   the taint.
//!
//! The analysis is intra-procedural over the token stream from
//! [`crate::syntax`], with two hand-written inter-procedural facts:
//! the `take_uN` decoders are taint *sources* (their bodies read the
//! wire), and `take(n)` is a taint *sink-that-sanitizes* (its body
//! bounds-checks `n` and errors, so code after a successful
//! `take(n)?` holds a proven-bounded `n`). Known imprecision: any
//! comparison clears taint (the branch sense is not tracked), and a
//! `match` arm value directly after `=>` is never treated as
//! compared. Waive a site with `// das-lint: allow(DA50x)`.

use std::path::Path;

use crate::finding::{Finding, Severity};
use crate::lints;
use crate::syntax::{self, TokKind, Token};

const PASS: &str = "taint";

/// Calls whose result is an attacker-controlled integer.
const WIRE_SOURCES: [&str; 6] =
    ["take_u8", "take_u16", "take_u32", "take_u64", "from_le_bytes", "from_be_bytes"];

/// Calls whose result is an attacker-controlled byte payload.
const BLOB_SOURCES: [&str; 2] = ["get_strip_failover_traced", "get_strip_failover"];

/// Wire message variants whose destructured fields carry a payload.
const BLOB_VARIANTS: [&str; 2] = ["StripData", "PutStrip"];

/// Field names that are payloads when destructured from a
/// [`BLOB_VARIANTS`] pattern (`file`/`strip` ints ride along).
const BLOB_FIELDS: [&str; 2] = ["payload", "data"];

/// Methods that consume a blob's bytes: feeding an unvalidated blob
/// into one of these commits the daemon to its length.
const BLOB_CONSUMERS: [&str; 6] =
    ["insert", "from", "extend_from_slice", "copy_from_slice", "push", "store"];

/// How a tainted integer got its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Taint {
    /// Directly bound from a wire decode.
    Direct,
    /// Derived from a tainted value by arithmetic.
    Derived,
}

/// Run the wire-taint pass over `root/crates/das-net/src`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut stats = Stats::default();
    for (rel, src) in lints::workspace_sources(root) {
        let decode = is_decode_module(&rel);
        let blob = is_blob_module(&rel);
        if !decode && !blob {
            continue;
        }
        let mut used: Vec<(u32, String)> = Vec::new();
        if decode {
            int_taint_file(&rel, &src, &mut out, &mut stats, &mut used);
        }
        if blob {
            blob_taint_file(&rel, &src, &mut out, &mut stats, &mut used);
        }
        let lx = syntax::lex(&src);
        lints::stale_waivers(PASS, &rel, &lx, &["DA501", "DA502", "DA503"], &used, &mut out);
    }
    out.push(Finding::new(
        "DA500",
        Severity::Info,
        PASS,
        "crates/das-net/src",
        format!(
            "{} wire-decoded ints tracked ({} sanitized), {} blobs tracked ({} length-checked), {} sink sites examined",
            stats.ints, stats.ints_sanitized, stats.blobs, stats.blobs_sanitized, stats.sinks
        ),
    ));
    out
}

#[derive(Default)]
struct Stats {
    ints: usize,
    ints_sanitized: usize,
    blobs: usize,
    blobs_sanitized: usize,
    sinks: usize,
}

fn is_decode_module(rel: &str) -> bool {
    lints::crate_of(rel) == "das-net"
        && (rel.ends_with("src/proto.rs") || rel.ends_with("src/codec.rs"))
}

fn is_blob_module(rel: &str) -> bool {
    lints::crate_of(rel) == "das-net"
        && (rel.ends_with("src/server.rs") || rel.ends_with("src/client.rs"))
}

/// Is `toks[j]` adjacent to a comparison operator? The lexer emits
/// single-char puncts, so `==`/`!=`/`<=`/`>=` appear as pairs; `=>`
/// and `->` must not read as comparisons.
fn cmp_adjacent(toks: &[Token], j: usize) -> bool {
    if let Some(n) = toks.get(j + 1) {
        match n.text.as_str() {
            "<" | ">" => return true,
            "=" | "!" if toks.get(j + 2).is_some_and(|m| m.text == "=") => return true,
            _ => {}
        }
    }
    if j >= 1 {
        let p = toks[j - 1].text.as_str();
        let pp = if j >= 2 { toks[j - 2].text.as_str() } else { "" };
        match p {
            "<" => return true,
            ">" if pp != "=" && pp != "-" => return true,
            "=" if matches!(pp, "=" | "!" | "<" | ">") => return true,
            _ => {}
        }
    }
    false
}

/// Is the tainted ident at `j` locally guarded — `.min(`/`.clamp(`
/// right after it, or a comparison on either side?
fn locally_guarded(toks: &[Token], j: usize) -> bool {
    if cmp_adjacent(toks, j) {
        return true;
    }
    toks.get(j + 1).is_some_and(|d| d.text == ".")
        && toks.get(j + 2).is_some_and(|m| m.text == "min" || m.text == "clamp")
        && toks.get(j + 3).is_some_and(|p| p.text == "(")
}

/// Index of the token matching `toks[open]` (`(`↔`)`, `[`↔`]`,
/// `{`↔`}`), or `toks.len()` if unbalanced.
fn matching_close(toks: &[Token], open: usize, open_t: &str, close_t: &str) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < toks.len() {
        let t = toks[j].text.as_str();
        if t == open_t {
            depth += 1;
        } else if t == close_t {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len()
}

/// End (exclusive) of the statement starting at `from`: the `;` at
/// relative bracket depth 0, or `end`.
fn stmt_end(toks: &[Token], from: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let mut j = from;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    end
}

/// Integer-taint analysis over one decode module.
fn int_taint_file(
    rel: &str,
    src: &str,
    out: &mut Vec<Finding>,
    stats: &mut Stats,
    used: &mut Vec<(u32, String)>,
) {
    let lx = syntax::lex(src);
    let mask = syntax::test_mask(&lx);
    for f in syntax::extract_fns(&lx) {
        if f.in_test || f.body.is_empty() {
            continue;
        }
        if mask.get(f.body.start).copied().unwrap_or(false) {
            continue;
        }
        int_taint_fn(rel, &lx, f.body, out, stats, used);
    }
}

fn int_taint_fn(
    rel: &str,
    lx: &syntax::Lexed,
    body: std::ops::Range<usize>,
    out: &mut Vec<Finding>,
    stats: &mut Stats,
    used: &mut Vec<(u32, String)>,
) {
    let toks = &lx.tokens;
    let mut taint: std::collections::HashMap<String, Taint> = std::collections::HashMap::new();
    let mut i = body.start;
    let end = body.end.min(toks.len());
    while i < end {
        let t = &toks[i];

        // New binding: classify the RHS.
        if t.kind == TokKind::Ident && t.text == "let" {
            if let Some((name, rhs)) = let_binding(toks, i, end) {
                let rhs_toks = &toks[rhs.clone()];
                let has_source = rhs_toks
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && WIRE_SOURCES.contains(&t.text.as_str()));
                let tainted_in_rhs = rhs_toks
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .find_map(|t| taint.get(&t.text).copied());
                let has_arith = rhs_toks
                    .iter()
                    .any(|t| matches!(t.text.as_str(), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"));
                if has_source {
                    stats.ints += 1;
                    taint.insert(name, Taint::Direct);
                } else if let Some(k) = tainted_in_rhs {
                    let k = if has_arith { Taint::Derived } else { k };
                    taint.insert(name, k);
                }
            }
        }

        // Sink heads: with_capacity(..) / read_exact(..) / vec![_; ..]
        // / subscript [..].
        if t.kind == TokKind::Ident
            && (t.text == "with_capacity" || t.text == "read_exact")
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            stats.sinks += 1;
            let close = matching_close(toks, i + 1, "(", ")");
            report_hot(rel, lx, &taint, i + 2..close, &t.text, out, used);
        }
        if t.kind == TokKind::Ident
            && t.text == "vec"
            && toks.get(i + 1).is_some_and(|n| n.text == "!")
            && toks.get(i + 2).is_some_and(|n| n.text == "[")
        {
            let close = matching_close(toks, i + 2, "[", "]");
            // Only the length operand (after the `;`) is a sink.
            let semi = stmt_end(toks, i + 3, close);
            if semi < close {
                stats.sinks += 1;
                report_hot(rel, lx, &taint, semi + 1..close, "vec![_; n]", out, used);
            }
        }
        if t.text == "["
            && i > 0
            && (toks[i - 1].kind == TokKind::Ident || toks[i - 1].text == ")" || toks[i - 1].text == "]")
            && toks[i - 1].text != "vec"
            && (i < 2 || toks[i - 2].text != "#")
        {
            stats.sinks += 1;
            let close = matching_close(toks, i, "[", "]");
            report_hot(rel, lx, &taint, i + 1..close, "slice index", out, used);
        }

        // Sanitizers: a compared/clamped occurrence clears the taint;
        // so does consumption by the internally-checked take(n).
        if t.kind == TokKind::Ident && taint.contains_key(&t.text) && locally_guarded(toks, i) {
            taint.remove(&t.text);
            stats.ints_sanitized += 1;
        }
        if t.kind == TokKind::Ident
            && t.text == "take"
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            let close = matching_close(toks, i + 1, "(", ")");
            for tok in &toks[(i + 2).min(close.min(end))..close.min(end)] {
                if tok.kind == TokKind::Ident && taint.remove(&tok.text).is_some() {
                    stats.ints_sanitized += 1;
                }
            }
        }

        i += 1;
    }
}

/// Parse `let [mut] NAME = RHS ;` starting at the `let` token.
/// Returns the bound name and the RHS token range. Destructuring
/// patterns are skipped — taint through tuples is out of scope.
fn let_binding(toks: &[Token], let_at: usize, end: usize) -> Option<(String, std::ops::Range<usize>)> {
    let mut j = let_at + 1;
    if toks.get(j).is_some_and(|t| t.text == "mut") {
        j += 1;
    }
    let name_tok = toks.get(j)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    // Find `=` before any pattern punctuation that would make this a
    // destructure (`(`, `{` right after the name means a pattern).
    j += 1;
    // Skip a type ascription `: Ty` up to the `=`.
    let mut depth = 0i64;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => return None,
            "<" => depth += 1,
            ">" => depth -= 1,
            "=" if depth <= 0 => {
                // `==` here would be nonsense after a let pattern; `=` it is.
                let rhs_start = j + 1;
                let rhs_end = stmt_end(toks, rhs_start, end);
                return Some((name, rhs_start..rhs_end));
            }
            ";" => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Report every un-guarded tainted ident in `span` as a finding at
/// the sink `what`.
fn report_hot(
    rel: &str,
    lx: &syntax::Lexed,
    taint: &std::collections::HashMap<String, Taint>,
    span: std::ops::Range<usize>,
    what: &str,
    out: &mut Vec<Finding>,
    used: &mut Vec<(u32, String)>,
) {
    let toks = &lx.tokens;
    for j in span.start..span.end.min(toks.len()) {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some(&k) = taint.get(&t.text) else { continue };
        if locally_guarded(toks, j) {
            continue;
        }
        let (code, sev, blame) = match k {
            Taint::Direct => ("DA501", Severity::Error, "decoded from the wire"),
            Taint::Derived => ("DA502", Severity::Warning, "derived from a wire value"),
        };
        if lx.waived(t.line, code) {
            used.push((t.line, code.to_string()));
            continue;
        }
        out.push(Finding::new(
            code,
            sev,
            PASS,
            format!("{rel}:{}", t.line),
            format!(
                "`{}` ({blame}) reaches {what} without a bounds check — a hostile peer controls it",
                t.text
            ),
        ));
    }
}

/// Blob-taint analysis over one consumer module.
fn blob_taint_file(
    rel: &str,
    src: &str,
    out: &mut Vec<Finding>,
    stats: &mut Stats,
    used: &mut Vec<(u32, String)>,
) {
    let lx = syntax::lex(src);
    let mask = syntax::test_mask(&lx);
    for f in syntax::extract_fns(&lx) {
        if f.in_test || f.body.is_empty() {
            continue;
        }
        if mask.get(f.body.start).copied().unwrap_or(false) {
            continue;
        }
        blob_taint_fn(rel, &lx, f.body, out, stats, used);
    }
}

fn blob_taint_fn(
    rel: &str,
    lx: &syntax::Lexed,
    body: std::ops::Range<usize>,
    out: &mut Vec<Finding>,
    stats: &mut Stats,
    used: &mut Vec<(u32, String)>,
) {
    let toks = &lx.tokens;
    let mut blobs: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut reported: std::collections::HashSet<(String, u32)> = std::collections::HashSet::new();
    let mut i = body.start;
    let end = body.end.min(toks.len());
    while i < end {
        let t = &toks[i];

        // Source 1: let NAME = … get_strip_failover…(…) … ;
        if t.kind == TokKind::Ident && t.text == "let" {
            if let Some((name, rhs)) = let_binding(toks, i, end) {
                if toks[rhs]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && BLOB_SOURCES.contains(&t.text.as_str()))
                {
                    stats.blobs += 1;
                    blobs.insert(name);
                }
            }
            // A `let payload = match peers.get_strip_failover…` RHS is
            // a block, which let_binding rejects; catch it below via
            // the statement scan.
            let se = stmt_end(toks, i, end);
            if toks[i..se]
                .iter()
                .any(|t| t.kind == TokKind::Ident && BLOB_SOURCES.contains(&t.text.as_str()))
            {
                if let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    let name = if name_tok.text == "mut" {
                        toks.get(i + 2).map(|t| t.text.clone())
                    } else {
                        Some(name_tok.text.clone())
                    };
                    if let Some(name) = name {
                        if blobs.insert(name) {
                            stats.blobs += 1;
                        }
                    }
                }
            }
        }

        // Source 2: shorthand destructure of a payload-bearing
        // variant: `StripData { payload }` / `PutStrip { …, payload }`.
        if t.kind == TokKind::Ident
            && BLOB_VARIANTS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.text == "{")
        {
            let close = matching_close(toks, i + 1, "{", "}");
            let mut j = i + 2;
            while j < close {
                let ft = &toks[j];
                if ft.kind == TokKind::Ident && BLOB_FIELDS.contains(&ft.text.as_str()) {
                    match toks.get(j + 1).map(|n| n.text.as_str()) {
                        // Shorthand binding: `payload` then `,` or `}`.
                        Some(",") | Some("}") => {
                            stats.blobs += 1;
                            blobs.insert(ft.text.clone());
                            j += 1;
                        }
                        // `payload: X` — construction or rename; skip
                        // the value, it is not a fresh wire binding.
                        Some(":") => {
                            let mut depth = 0i64;
                            j += 2;
                            while j < close {
                                match toks[j].text.as_str() {
                                    "(" | "[" | "{" => depth += 1,
                                    ")" | "]" | "}" => depth -= 1,
                                    "," if depth <= 0 => break,
                                    _ => {}
                                }
                                j += 1;
                            }
                        }
                        _ => j += 1,
                    }
                    continue;
                }
                j += 1;
            }
        }

        // Sanitizer: BLOB.len() with a comparison on either side of
        // the call. `.len()` alone (a byte counter) is not validation.
        if t.kind == TokKind::Ident
            && blobs.contains(&t.text)
            && toks.get(i + 1).is_some_and(|d| d.text == ".")
            && toks.get(i + 2).is_some_and(|m| m.text == "len" || m.text == "is_empty")
            && toks.get(i + 3).is_some_and(|p| p.text == "(")
            && toks.get(i + 4).is_some_and(|p| p.text == ")")
        {
            if cmp_adjacent(toks, i + 4) || cmp_adjacent(toks, i) {
                blobs.remove(&t.text);
                stats.blobs_sanitized += 1;
            }
            i += 5;
            continue;
        }

        // Sinks: a consuming call with an unvalidated blob in its
        // arguments, or direct indexing of the blob.
        if t.kind == TokKind::Ident
            && BLOB_CONSUMERS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            stats.sinks += 1;
            let close = matching_close(toks, i + 1, "(", ")");
            for a in &toks[(i + 2).min(close.min(end))..close.min(end)] {
                if a.kind == TokKind::Ident
                    && blobs.contains(&a.text)
                    && !reported.contains(&(a.text.clone(), a.line))
                {
                    if lx.waived(a.line, "DA503") {
                        used.push((a.line, "DA503".to_string()));
                        continue;
                    }
                    reported.insert((a.text.clone(), a.line));
                    out.push(Finding::new(
                        "DA503",
                        Severity::Error,
                        PASS,
                        format!("{rel}:{}", a.line),
                        format!(
                            "wire blob `{}` consumed by `{}(` without a length check — a short strip from a peer panics the assembly",
                            a.text, t.text
                        ),
                    ));
                }
            }
        }
        if t.text == "["
            && i > 0
            && toks[i - 1].kind == TokKind::Ident
            && blobs.contains(&toks[i - 1].text)
        {
            let a = &toks[i - 1];
            stats.sinks += 1;
            if !reported.contains(&(a.text.clone(), a.line)) {
                if lx.waived(a.line, "DA503") {
                    used.push((a.line, "DA503".to_string()));
                } else {
                    reported.insert((a.text.clone(), a.line));
                    out.push(Finding::new(
                        "DA503",
                        Severity::Error,
                        PASS,
                        format!("{rel}:{}", a.line),
                        format!("wire blob `{}` indexed without a length check", a.text),
                    ));
                }
            }
        }

        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(rel: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        let mut stats = Stats::default();
        let mut used = Vec::new();
        if is_decode_module(rel) {
            int_taint_file(rel, src, &mut out, &mut stats, &mut used);
        }
        if is_blob_module(rel) {
            blob_taint_file(rel, src, &mut out, &mut stats, &mut used);
        }
        let lx = syntax::lex(src);
        lints::stale_waivers(PASS, rel, &lx, &["DA501", "DA502", "DA503"], &used, &mut out);
        out
    }

    #[test]
    fn unchecked_wire_length_reaching_alloc_is_da501() {
        let src = "\
fn read(&mut self) -> Result<Vec<u8>, E> {
    let len = u32::from_le_bytes(hdr[8..12].try_into()?) as usize;
    let mut payload = vec![0u8; len];
    Ok(payload)
}
";
        let out = run_on("crates/das-net/src/codec.rs", src);
        assert!(out.iter().any(|f| f.code == "DA501"), "{out:?}");
    }

    #[test]
    fn compared_length_is_sanitized() {
        let src = "\
fn read(&mut self) -> Result<Vec<u8>, E> {
    let len = u32::from_le_bytes(hdr[8..12].try_into()?) as usize;
    if len > MAX_PAYLOAD {
        return Err(E::TooBig);
    }
    let mut payload = vec![0u8; len];
    Ok(payload)
}
";
        let out = run_on("crates/das-net/src/codec.rs", src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn take_consumption_sanitizes_and_derivation_downgrades() {
        let clean = "\
fn take_blob(&mut self) -> Result<Vec<u8>, E> {
    let len = self.take_u32()? as usize;
    Ok(self.take(len)?.to_vec())
}
";
        assert!(run_on("crates/das-net/src/proto.rs", clean).is_empty());

        let derived = "\
fn pad(&mut self) -> Result<Vec<u8>, E> {
    let len = self.take_u32()? as usize;
    let padded = len + 7;
    Ok(vec![0u8; padded])
}
";
        let out = run_on("crates/das-net/src/proto.rs", derived);
        assert!(out.iter().any(|f| f.code == "DA502"), "{out:?}");
        assert!(!out.iter().any(|f| f.code == "DA501"), "{out:?}");
    }

    #[test]
    fn min_clamp_guard_is_sanitizing_even_at_the_sink() {
        let src = "\
fn read(&mut self) -> Vec<u8> {
    let len = self.take_u32() as usize;
    vec![0u8; len.min(MAX)]
}
";
        assert!(run_on("crates/das-net/src/proto.rs", src).is_empty());
    }

    #[test]
    fn unchecked_peer_blob_consumed_is_da503() {
        let src = "\
fn execute(shared: &Shared) -> Message {
    let payload = match shared.peers.get_strip_failover_traced(&holders, file, u, trace) {
        Ok((p, _)) => p,
        Err(e) => return err(e),
    };
    bytes += payload.len() as u64;
    asm.insert(StripId(u), Bytes::from(payload));
    Message::Ok
}
";
        let out = run_on("crates/das-net/src/server.rs", src);
        assert!(out.iter().any(|f| f.code == "DA503"), "{out:?}");
    }

    #[test]
    fn length_compared_blob_is_clean() {
        let src = "\
fn prepare(shared: &Shared) -> Message {
    let payload = match shared.peers.get_strip_failover_traced(&holders, file, s, trace) {
        Ok((p, _)) => p,
        Err(e) => return err(e),
    };
    if payload.len() != spec.strip_len(sid, len) {
        return err(ErrorCode::StripLengthMismatch);
    }
    staged.push((sid, Bytes::from(payload)));
    Message::Ok
}
";
        assert!(run_on("crates/das-net/src/server.rs", src).is_empty());
    }

    #[test]
    fn destructured_putstrip_payload_needs_a_check() {
        let bad = "\
fn handle(m: Message) -> Message {
    match m {
        Message::PutStrip { file, strip, payload } => {
            inner.store.store(id, StripId(strip), Bytes::from(payload), true);
            Message::PutStripOk
        }
        _ => err(),
    }
}
";
        let out = run_on("crates/das-net/src/server.rs", bad);
        assert!(out.iter().any(|f| f.code == "DA503"), "{out:?}");

        let good = "\
fn handle(m: Message) -> Message {
    match m {
        Message::PutStrip { file, strip, payload } => {
            if payload.len() != expected {
                return err(ErrorCode::StripLengthMismatch);
            }
            inner.store.store(id, StripId(strip), Bytes::from(payload), true);
            Message::PutStripOk
        }
        _ => err(),
    }
}
";
        assert!(run_on("crates/das-net/src/server.rs", good).is_empty());
    }

    #[test]
    fn variant_construction_is_not_a_binding() {
        // `Message::StripData { payload: data.to_vec() }` builds a
        // reply; `data` must not become blob-tainted.
        let src = "\
fn get(inner: &Inner) -> Message {
    match inner.store.read_strip(id, sid) {
        Ok(data) => Message::StripData { payload: data.to_vec() },
        Err(_) => err(),
    }
}
";
        assert!(run_on("crates/das-net/src/server.rs", src).is_empty());
    }

    #[test]
    fn waivers_hold_for_taint_codes() {
        let src = "\
fn read(&mut self) -> Vec<u8> {
    let len = self.take_u32() as usize;
    // das-lint: allow(DA501)
    vec![0u8; len]
}
";
        assert!(run_on("crates/das-net/src/proto.rs", src).is_empty());
    }
}
