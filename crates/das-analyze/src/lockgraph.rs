//! Pass — inter-procedural lock-order analysis (`DA407`–`DA409`).
//!
//! The `lints` pass checks each function's *first* acquisitions
//! against the declared hierarchy (`DA405`) — it cannot see a
//! deadlock assembled across a call: `f` locks `conns` and calls
//! `g`, `g` locks `rx`. This pass can:
//!
//! 1. Extract every das-net function with its lock sites, tracking
//!    guard lifetimes *scope-aware*: a `let g = lock(&x);` guard
//!    lives until its enclosing block closes or `drop(g)`; a
//!    temporary guard (`lock(&x).field…`) dies at the end of its
//!    statement. Block-scoped guards that die before a peer call
//!    therefore do not leak into the callee — the pattern das-net's
//!    handlers use deliberately.
//! 2. Build the intra-crate call graph by name (an identifier called
//!    as `name(…)` that matches a das-net `fn`), and compute each
//!    function's transitively-acquired lock set to fixpoint.
//! 3. Emit an *acquired-while-held* edge `A → B` whenever `B` is
//!    acquired (directly, or anywhere in a callee) while `A` is
//!    held.
//!
//! Findings: `DA407` (error) — an edge acquired **via a call** that
//! inverts the declared hierarchy (the intra-procedural form is
//! already `DA405`); `DA408` (error) — an AB/BA cycle in the edge
//! graph, reported with one witness chain per direction; `DA409`
//! (info) — graph statistics. Known imprecision, documented so the
//! reader can calibrate trust: calls are matched by bare name (a
//! das-net method name colliding with a std method on a non-locking
//! receiver may add spurious edges), and a guard bound by a `match`
//! or `if let` scrutinee is treated as statement-scoped, which
//! under-approximates its true lifetime.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::path::Path;

use crate::finding::{Finding, Severity};
use crate::lints::{self, LOCK_HIERARCHY};
use crate::syntax::{self, TokKind};

const PASS: &str = "lockgraph";

/// One function's lock-relevant facts.
struct FnFacts {
    /// Repo-relative file and 1-based line of the `fn` keyword.
    file: String,
    /// Hierarchy locks acquired directly, with (lock, line, held-set
    /// at acquisition).
    acquisitions: Vec<(String, u32, Vec<String>)>,
    /// Calls to other das-net functions: (callee, line, held-set).
    calls: Vec<(String, u32, Vec<String>)>,
}

/// A directed acquired-while-held edge with its witness.
#[derive(Clone)]
struct Edge {
    held: String,
    acquired: String,
    /// Human-readable witness: where and through which calls.
    witness: String,
    /// Line to check waivers against.
    line: u32,
    file: String,
    /// True when the acquisition happens in a callee, not locally.
    via_call: bool,
}

/// Run the lock-graph pass over `root/crates/das-net/src`.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();

    // Gather facts per function (merging same-named fns
    // conservatively) and remember waiver info per file.
    let mut facts: BTreeMap<String, FnFacts> = BTreeMap::new();
    let mut waivers: HashMap<String, syntax::Lexed> = HashMap::new();
    let mut used: Vec<(String, u32, String)> = Vec::new();
    let mut fn_count = 0usize;
    let mut site_count = 0usize;
    for (rel, src) in lints::workspace_sources(root) {
        if lints::crate_of(&rel) != "das-net" {
            continue;
        }
        let lx = syntax::lex(&src);
        for f in syntax::extract_fns(&lx) {
            if f.in_test || f.body.is_empty() {
                continue;
            }
            fn_count += 1;
            let ff = analyze_fn(&lx, f.body.clone(), &rel);
            site_count += ff.acquisitions.len();
            match facts.entry(f.name.clone()) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(ff);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    o.get_mut().acquisitions.extend(ff.acquisitions);
                    o.get_mut().calls.extend(ff.calls);
                }
            }
        }
        waivers.insert(rel.clone(), lx);
    }

    // Restrict the call graph to das-net functions.
    let names: HashSet<String> = facts.keys().cloned().collect();
    for ff in facts.values_mut() {
        ff.calls.retain(|(callee, _, _)| names.contains(callee));
    }

    // Transitive acquisition sets to fixpoint, with one example
    // call-chain per (fn, lock) for witnesses.
    let mut acq: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut path: HashMap<(String, String), String> = HashMap::new();
    for (name, ff) in &facts {
        let set: BTreeSet<String> =
            ff.acquisitions.iter().map(|(l, _, _)| l.clone()).collect();
        for (l, line, _) in &ff.acquisitions {
            path.entry((name.clone(), l.clone()))
                .or_insert_with(|| format!("{name} ({}:{line})", ff.file));
        }
        acq.insert(name.clone(), set);
    }
    loop {
        let mut changed = false;
        for (name, ff) in &facts {
            for (callee, line, _) in &ff.calls {
                let callee_locks: Vec<String> =
                    acq.get(callee).map(|s| s.iter().cloned().collect()).unwrap_or_default();
                for l in callee_locks {
                    if acq.get_mut(name).is_some_and(|s| s.insert(l.clone())) {
                        changed = true;
                        let tail = path
                            .get(&(callee.clone(), l.clone()))
                            .cloned()
                            .unwrap_or_else(|| callee.clone());
                        path.insert(
                            (name.clone(), l.clone()),
                            format!("{name} ({}:{line}) → {tail}", ff.file),
                        );
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: direct acquisitions under a held lock, and callee
    // acquisitions under a held lock.
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (name, ff) in &facts {
        for (lock, line, held) in &ff.acquisitions {
            for h in held {
                if h != lock {
                    edges.entry((h.clone(), lock.clone())).or_insert_with(|| Edge {
                        held: h.clone(),
                        acquired: lock.clone(),
                        witness: format!(
                            "{name} ({}:{line}) locks `{lock}` while holding `{h}`",
                            ff.file
                        ),
                        line: *line,
                        file: ff.file.clone(),
                        via_call: false,
                    });
                }
            }
        }
        for (callee, line, held) in &ff.calls {
            if held.is_empty() {
                continue;
            }
            let callee_locks: Vec<String> =
                acq.get(callee).map(|s| s.iter().cloned().collect()).unwrap_or_default();
            for l in &callee_locks {
                for h in held {
                    if h != l {
                        let chain = path
                            .get(&(callee.clone(), l.clone()))
                            .cloned()
                            .unwrap_or_else(|| callee.clone());
                        edges.entry((h.clone(), l.clone())).or_insert_with(|| Edge {
                            held: h.clone(),
                            acquired: l.clone(),
                            witness: format!(
                                "{name} ({}:{line}) calls `{callee}` while holding `{h}`; `{l}` acquired via {chain}",
                                ff.file
                            ),
                            line: *line,
                            file: ff.file.clone(),
                            via_call: true,
                        });
                    }
                }
            }
        }
    }

    let rank = |l: &str| LOCK_HIERARCHY.iter().position(|&h| h == l);

    // DA407: a cross-call edge that inverts the declared hierarchy.
    for e in edges.values() {
        if !e.via_call {
            continue; // the intra-procedural form is DA405
        }
        let (Some(rh), Some(ra)) = (rank(&e.held), rank(&e.acquired)) else {
            continue;
        };
        if ra < rh && !is_waived(&waivers, &e.file, e.line, "DA407", &mut used) {
            out.push(Finding::new(
                "DA407",
                Severity::Error,
                PASS,
                format!("{}:{}", e.file, e.line),
                format!(
                    "`{}` acquired through a call while `{}` is held — inverts the declared hierarchy {LOCK_HIERARCHY:?}: {}",
                    e.acquired, e.held, e.witness
                ),
            ));
        }
    }

    // DA408: AB/BA cycles — both directions present in the edge set.
    let mut cycles_seen: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), e_ab) in &edges {
        if let Some(e_ba) = edges.get(&(b.clone(), a.clone())) {
            let key = if a < b { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) };
            if !cycles_seen.insert(key) {
                continue;
            }
            if is_waived(&waivers, &e_ab.file, e_ab.line, "DA408", &mut used)
                || is_waived(&waivers, &e_ba.file, e_ba.line, "DA408", &mut used)
            {
                continue;
            }
            out.push(Finding::new(
                "DA408",
                Severity::Error,
                PASS,
                format!("{}:{}", e_ab.file, e_ab.line),
                format!(
                    "AB/BA deadlock: `{a}`→`{b}` [{}] and `{b}`→`{a}` [{}] — two threads taking opposite sides block forever",
                    e_ab.witness, e_ba.witness
                ),
            ));
        }
    }

    // DA430: stale DA407/DA408 waivers across the scanned files
    // (sorted so finding order is stable run to run).
    let mut waiver_files: Vec<&String> = waivers.keys().collect();
    waiver_files.sort();
    for rel in waiver_files {
        let lx = &waivers[rel];
        let file_used: Vec<(u32, String)> = used
            .iter()
            .filter(|(f, _, _)| f == rel)
            .map(|(_, l, c)| (*l, c.clone()))
            .collect();
        lints::stale_waivers(PASS, rel, lx, &["DA407", "DA408"], &file_used, &mut out);
    }

    out.push(Finding::new(
        "DA409",
        Severity::Info,
        PASS,
        "crates/das-net/src",
        format!(
            "{fn_count} fns, {site_count} lock sites, {} acquired-while-held edges ({} via calls)",
            edges.len(),
            edges.values().filter(|e| e.via_call).count()
        ),
    ));
    out
}

/// Check a waiver and record its use for the stale-waiver sweep.
fn is_waived(
    waivers: &HashMap<String, syntax::Lexed>,
    file: &str,
    line: u32,
    code: &str,
    used: &mut Vec<(String, u32, String)>,
) -> bool {
    let hit = waivers.get(file).is_some_and(|lx| lx.waived(line, code));
    if hit {
        used.push((file.to_string(), line, code.to_string()));
    }
    hit
}

/// An active guard during the body walk.
struct Guard {
    lock: String,
    var: Option<String>,
    /// Relative brace depth the guard was declared at.
    depth: i64,
    /// Statement-temporary: dies at the next `;`.
    temp: bool,
}

/// Walk one function body, tracking guard lifetimes, and record lock
/// acquisitions and calls with the held-set at each.
fn analyze_fn(lx: &syntax::Lexed, body: std::ops::Range<usize>, rel: &str) -> FnFacts {
    let toks = &lx.tokens;
    let sites: HashMap<usize, lints::LockSite> = lints::lock_sites(toks, body.clone())
        .into_iter()
        .map(|s| (s.at, s))
        .collect();

    let mut guards: Vec<Guard> = Vec::new();
    let mut facts = FnFacts { file: rel.to_string(), acquisitions: Vec::new(), calls: Vec::new() };
    let mut depth = 0i64;
    let end = body.end.min(toks.len());
    let mut i = body.start;
    while i < end {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            ";" => guards.retain(|g| !g.temp),
            _ => {}
        }

        // drop(g) releases a named guard early.
        if t.kind == TokKind::Ident
            && t.text == "drop"
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Ident {
                    guards.retain(|g| g.var.as_deref() != Some(arg.text.as_str()));
                }
            }
        }

        if let Some(site) = sites.get(&i) {
            // Record *every* acquisition — AB/BA cycles (DA408) are
            // deadlocks regardless of whether the locks are ranked;
            // the hierarchy only gates DA407.
            let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
            facts.acquisitions.push((site.name.clone(), site.line, held));
            // `let [mut] NAME = lock(…)` → block-scoped guard bound
            // to NAME; anything else is statement-temporary.
            let bound = bound_var(toks, i, body.start);
            guards.push(Guard {
                lock: site.name.clone(),
                var: bound.clone(),
                depth,
                temp: bound.is_none(),
            });
            i += 1;
            continue;
        }

        // A call: ident followed by `(`, not a lock site, not a macro
        // (`name!(…)`), not a path segment of a type (`Foo::name(` is
        // still a call — keep it).
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && t.text != "lock"
            && t.text != "drop"
        {
            let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
            facts.calls.push((t.text.clone(), t.line, held));
        }

        i += 1;
    }
    facts
}

/// If the lock site at `at` is the RHS of `let [mut] NAME = lock(…)`,
/// return NAME.
fn bound_var(
    toks: &[crate::syntax::Token],
    at: usize,
    floor: usize,
) -> Option<String> {
    if at < 3 || at - 3 < floor.saturating_sub(3) {
        // Still allow matching near the body start; bounds below.
    }
    let eq = at.checked_sub(1)?;
    if toks.get(eq)?.text != "=" {
        return None;
    }
    let name = at.checked_sub(2)?;
    let name_tok = toks.get(name)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let kw = at.checked_sub(3)?;
    let kw_tok = toks.get(kw)?;
    let is_let = kw_tok.text == "let"
        || (kw_tok.text == "mut"
            && at.checked_sub(4).and_then(|k| toks.get(k)).is_some_and(|t| t.text == "let"));
    if is_let && name >= floor {
        Some(name_tok.text.clone())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run the pass against an in-memory mini-crate by materializing
    /// it under a temp dir.
    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let dir = std::env::temp_dir().join(format!(
            "das-lockgraph-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let src = dir.join("crates/das-net/src");
        std::fs::create_dir_all(&src).unwrap();
        for (name, body) in files {
            std::fs::write(src.join(name), body).unwrap();
        }
        let out = run(&dir);
        std::fs::remove_dir_all(&dir).ok();
        out
    }

    #[test]
    fn cross_function_inversion_is_da407() {
        let out = run_on(&[(
            "peer.rs",
            "\
fn outer(&self) {
    let c = lock(&self.conns);
    helper();
}
fn helper() {
    let r = lock(&self.rx);
}
",
        )]);
        assert!(out.iter().any(|f| f.code == "DA407"), "{out:?}");
    }

    #[test]
    fn block_scoped_guard_released_before_call_is_clean() {
        let out = run_on(&[(
            "server.rs",
            "\
fn outer(&self) {
    {
        let i = lock(&self.inner);
        i.touch();
    }
    helper();
}
fn helper() {
    let c = lock(&self.conns);
}
",
        )]);
        assert!(
            !out.iter().any(|f| f.severity != Severity::Info),
            "guard died at block end; no edge expected: {out:?}"
        );
    }

    #[test]
    fn ab_ba_cycle_is_da408_even_when_ranks_unknown_to_da405() {
        // Each function respects "first acquisition" ordering locally;
        // only the cross-call composition deadlocks.
        let out = run_on(&[(
            "peer.rs",
            "\
fn ab(&self) {
    let c = lock(&self.conns);
    take_down();
}
fn take_down() {
    let d = lock(&self.downs);
}
fn ba(&self) {
    let d = lock(&self.downs);
    take_conn();
}
fn take_conn() {
    let c = lock(&self.conns);
}
",
        )]);
        assert!(out.iter().any(|f| f.code == "DA408"), "{out:?}");
    }

    #[test]
    fn temp_guard_dies_at_statement_end() {
        let out = run_on(&[(
            "server.rs",
            "\
fn outer(&self) {
    lock(&self.inner).staged.insert(k, v);
    helper();
}
fn helper() {
    let c = lock(&self.conns);
}
",
        )]);
        assert!(!out.iter().any(|f| f.severity != Severity::Info), "{out:?}");
    }

    #[test]
    fn drop_releases_early() {
        let out = run_on(&[(
            "server.rs",
            "\
fn outer(&self) {
    let i = lock(&self.inner);
    drop(i);
    helper();
}
fn helper() {
    let c = lock(&self.conns);
}
",
        )]);
        assert!(!out.iter().any(|f| f.severity != Severity::Info), "{out:?}");
    }

    #[test]
    fn transitive_chains_propagate() {
        // outer holds rx; the lock is three calls away.
        let out = run_on(&[(
            "server.rs",
            "\
fn outer(&self) {
    let r = lock(&self.rx);
    a();
}
fn a() { b(); }
fn b() { c(); }
fn c() { let d = lock(&self.downs); }
",
        )]);
        // rx → downs follows the hierarchy: an edge exists but no
        // finding fires.
        assert!(!out.iter().any(|f| f.severity != Severity::Info), "{out:?}");
        let info = out.iter().find(|f| f.code == "DA409").unwrap();
        assert!(info.message.contains("1 via calls"), "{}", info.message);
    }
}
