//! # das-analyze — static analysis for the DAS workspace
//!
//! Thirteen passes, each emitting machine-readable [`Finding`]s
//! (`registry::REGISTRY` is the code registry; `das-analyze --list`
//! prints it, `docs/ANALYSIS.md` documents it):
//!
//! * [`registry`] — cross-check the compiled-in finding-code registry
//!   against the pass sources and the documentation tables; any code
//!   present in one but missing from another is drift.
//! * [`descriptors`] — parse every Kernel Features descriptor under
//!   `descriptors/`, validate offsets symbolically (affine in
//!   `imgWidth`), cross-check the txt and XML forms, verify the
//!   shipped file against the compiled-in copy, check each deployment
//!   in `descriptors/layouts.txt` for replication radii that do not
//!   cover the kernel's stencil reach, and sweep the paper's
//!   Eqs. 1–13 decision over a (D, strip, E, r) grid to flag "dead"
//!   descriptors no layout would ever offload.
//! * [`protocol`] — exhaustively roundtrip the das-net wire protocol
//!   (every message variant × every frame flag combination), probe
//!   every unassigned opcode and flag bit for rejection, and parse
//!   the tables in `docs/PROTOCOL.md` to fail on constant drift
//!   between the spec and the code.
//! * [`fetchgraph`] — build the server→server dependence-fetch graph
//!   each descriptor induces on each layout of a (D, r, policy) grid,
//!   detect cycles that could distributed-deadlock a blocking
//!   fetch-while-serving design, and prove the shipped service is
//!   safe (depth-1 `GetStrip`, canonical ascending-strip fetch
//!   order).
//! * [`lints`] — token-based source lints via the in-crate [`syntax`]
//!   lexer: no `unwrap()`/`expect(`/`panic!` in das-net's wire-facing
//!   modules, no `eprintln!` outside das-obs, no stray stdout prints
//!   in library code, and intra-function lock ordering against the
//!   declared hierarchy. `// das-lint: allow(<code>)` on the same or
//!   preceding line waives a site; `#[cfg(test)]` code is masked out.
//! * [`taint`] — wire-taint dataflow: lengths and counts decoded off
//!   the wire in das-net's `proto`/`codec` must be bounds-checked
//!   before they reach an allocation or index sink, and peer-returned
//!   strip payloads must be length-validated before the server
//!   assembles them.
//! * [`lockgraph`] — inter-procedural lock-order analysis: propagate
//!   guard-held sets through the das-net call graph and report
//!   cross-function hierarchy inversions and AB/BA cycles, with the
//!   witness call chain.
//! * [`model`] — bounded protocol model checker: exhaustively explore
//!   the client↔daemon session state machine (caps negotiation ×
//!   framing × retry/backoff × breaker × the DAS→NAS→TS ladder),
//!   driving the real codec and retry policy, and report any stuck
//!   state, idempotence breach, or discipline violation with a
//!   minimal counterexample trace.
//! * [`lockset`] — RacerD-style guard inference over das-net/das-obs:
//!   which mutex dominates each shared struct field, every access
//!   checked against its dominating guard, dead locks and guardless
//!   `Arc` interior mutation flagged, with witness access sites.
//! * [`atomics`] — atomics-ordering audit over
//!   das-net/das-obs/das-load: every `Ordering::*` use classified;
//!   Relaxed loads feeding control flow (the publication pattern),
//!   mismatched store/load strength on one atomic, and discarded
//!   `fetch_*` results flagged, with justification-checked waivers.
//! * [`pipemodel`] — bounded model checker for the *pipelined*
//!   session: 4-deep per-connection pipelining with completion-order
//!   replies, DRR weights, `--max-backlog` admission with
//!   shed-then-retry, per-hop deadline budgets, and hedge lanes —
//!   asserting no lost/duplicated reply ids, shed-then-retry
//!   liveness, deadline monotonicity, and hedge-winner uniqueness.
//! * [`hotpath`] — per-request allocation/copy/blocking analysis:
//!   scan das-net's request-path sources for heap copies, unbounded
//!   wire-sized allocations, payload byte-copy sinks, blocking ops
//!   and guard-across-dispatch sites, keep only those reachable from
//!   the evloop hot roots via the call graph, and prove the write
//!   path (`run_job` → … → `frame_parts_opts`) allocation-free.
//! * [`costmodel`] — symbolic wire-cost verification: extract each
//!   `encode_payload` arm's size formula from source, verify it
//!   against the linked codec per variant, then compose per-sequence
//!   costs (peer dependence fetches, client reads/writes) and
//!   cross-check them against measured frames over a
//!   (D, strip, policy, caps) grid — the Eqs. 1–17 bookkeeping held
//!   to the actual bytes.
//!
//! The `das-analyze` binary runs the passes against a repository
//! root; `--deny` turns any warning- or error-level finding into a
//! nonzero exit for CI.

pub mod atomics;
pub mod costmodel;
pub mod descriptors;
pub mod fetchgraph;
pub mod finding;
pub mod hotpath;
pub mod lints;
pub mod lockgraph;
pub mod lockset;
pub mod model;
pub mod pipemodel;
pub mod protocol;
pub mod registry;
pub mod syntax;
pub mod taint;

use std::path::Path;

pub use finding::{Finding, Report, Severity};

/// Pass names in execution order, as accepted by `--pass`.
pub const PASSES: [&str; 13] = [
    "registry",
    "descriptors",
    "protocol",
    "fetchgraph",
    "lints",
    "taint",
    "lockgraph",
    "model",
    "lockset",
    "atomics",
    "pipemodel",
    "hotpath",
    "costmodel",
];

/// Run one pass by name against a repository root. `None` for an
/// unknown pass name.
pub fn run_pass(name: &str, root: &Path) -> Option<Vec<Finding>> {
    match name {
        "registry" => Some(registry::run(root)),
        "descriptors" => Some(descriptors::run(root)),
        "protocol" => Some(protocol::run(root)),
        "fetchgraph" => Some(fetchgraph::run(root)),
        "lints" => Some(lints::run(root)),
        "taint" => Some(taint::run(root)),
        "lockgraph" => Some(lockgraph::run(root)),
        "model" => Some(model::run(root)),
        "lockset" => Some(lockset::run(root)),
        "atomics" => Some(atomics::run(root)),
        "pipemodel" => Some(pipemodel::run(root)),
        "hotpath" => Some(hotpath::run(root)),
        "costmodel" => Some(costmodel::run(root)),
        _ => None,
    }
}

/// Run every pass against a repository root.
pub fn run_all(root: &Path) -> Report {
    let mut report = Report::default();
    for pass in PASSES {
        report
            .findings
            .extend(run_pass(pass, root).unwrap_or_default());
    }
    report
}
