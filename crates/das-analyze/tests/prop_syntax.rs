//! Property tests for the `syntax` tokenizer the deep passes stand
//! on: lexing must be total (no panic on any input), and
//! `lex → reprint → lex` must be a fixpoint — the reprinted source
//! lexes to the identical token stream, so every pass sees the same
//! program through either text.

use std::path::Path;

use das_analyze::lints::workspace_sources;
use das_analyze::syntax::{extract_fns, lex, reprint, test_mask, TokKind};

use proptest::prelude::*;

fn repo_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

/// Token streams compared structurally (kind + text, ignoring
/// positions — reprint flattens layout).
fn shape(src: &str) -> Vec<(TokKind, String)> {
    lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
}

#[test]
fn reprint_is_a_fixpoint_over_every_workspace_source() {
    let sources = workspace_sources(&repo_root());
    assert!(sources.len() > 50, "workspace scan looks broken: {} files", sources.len());
    for (rel, src) in sources {
        let first = lex(&src);
        let printed = reprint(&first.tokens);
        let second = lex(&printed);
        assert_eq!(
            first.tokens.len(),
            second.tokens.len(),
            "{rel}: token count changed across reprint"
        );
        for (a, b) in first.tokens.iter().zip(second.tokens.iter()) {
            assert_eq!((a.kind, &a.text), (b.kind, &b.text), "{rel}: token drift");
        }
        // The derived analyses must be total on real sources too.
        let _ = test_mask(&first);
        let _ = extract_fns(&first);
    }
}

/// Fragments that deliberately stress the lexer's tricky states:
/// raw strings, nested block comments, char-vs-lifetime ambiguity,
/// unterminated literals.
const FRAGMENTS: &[&str] = &[
    "fn f() {",
    "}",
    "let s = \"str with \\\" quote and // not a comment\";",
    "let r = r#\"raw \" with hash\"#;",
    "let r2 = r\"plain raw\";",
    "/* block /* nested */ still comment */",
    "// line comment with \"quote",
    "let c = 'x';",
    "let esc = '\\n';",
    "let lt: &'static str = \"life\";",
    "match x { 'a'..='z' => {} _ => {} }",
    "#[cfg(test)] mod tests {",
    "let b = b\"bytes\\xff\";",
    "impl<'a, T: Iterator<Item = &'a u8>> X for Y {",
    "let unterminated = \"oops",
    "let half_raw = r#\"never closed",
    "/* never closed block",
    "x => y,",
    "a!=b; c=>d; e->f;",
    "vec![0u8; n]",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Any concatenation of stress fragments lexes without panicking,
    // and reprinting reaches a fixpoint in one step.
    #[test]
    fn fragment_soup_lexes_and_reprints(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..12),
        sep in 0usize..3,
    ) {
        let sep = ["\n", " ", "\t"][sep];
        let src: String =
            picks.iter().map(|&i| FRAGMENTS[i]).collect::<Vec<_>>().join(sep);
        let first = shape(&src);
        let printed = reprint(&lex(&src).tokens);
        prop_assert_eq!(&first, &shape(&printed), "soup drift on: {:?}", src);
        let lx = lex(&src);
        let _ = test_mask(&lx);
        let _ = extract_fns(&lx);
    }

    // Mutating a real source file — byte splices and truncation at
    // arbitrary char boundaries — never panics the lexer or the item
    // extractor. (Mutants routinely produce unterminated strings and
    // half-open comments.)
    #[test]
    fn mutated_real_sources_never_panic(
        file_pick in any::<u32>(),
        cut in any::<u32>(),
        splice_at in any::<u32>(),
        splice in prop::collection::vec(any::<u8>(), 0..6),
    ) {
        let sources = workspace_sources(&repo_root());
        let (_, src) = &sources[file_pick as usize % sources.len()];

        let mut truncated = src.clone();
        let mut cut = cut as usize % (src.len() + 1);
        while !truncated.is_char_boundary(cut) {
            cut -= 1;
        }
        truncated.truncate(cut);

        let mut spliced = truncated.clone();
        let mut at = splice_at as usize % (spliced.len() + 1);
        while !spliced.is_char_boundary(at) {
            at -= 1;
        }
        let noise = String::from_utf8_lossy(&splice).into_owned();
        spliced.insert_str(at, &noise);

        for mutant in [truncated, spliced] {
            let lx = lex(&mutant);
            let _ = test_mask(&lx);
            let _ = extract_fns(&lx);
            // Even mutants must reprint to a lexable string.
            let _ = lex(&reprint(&lx.tokens));
        }
    }
}
