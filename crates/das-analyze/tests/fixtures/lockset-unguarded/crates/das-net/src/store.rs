// Fixture: a mutex-protected struct with one access path that
// bypasses the guard — the lockset pass must flag it with a witness.
struct Inner {
    items: Vec<u32>,
    total: u64,
}

struct Store {
    inner: Mutex<Inner>,
    raw: Inner,
}

impl Store {
    fn push(&self, v: u32) {
        let mut inner = lock(&self.inner);
        inner.items.push(v);
        inner.total += 1;
    }

    fn racy_count(&self) -> usize {
        self.raw.items.len()
    }
}
