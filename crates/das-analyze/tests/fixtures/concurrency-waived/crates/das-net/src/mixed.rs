// Fixture: every concurrency finding in here is waived with a
// justifying comment — the lockset and atomics passes must pass it
// under --deny, and none of the waivers may read as stale (DA430)
// or bare (DA714).
struct Inner {
    items: Vec<u32>,
}

struct Store {
    inner: Mutex<Inner>,
    // das-lint: allow(DA703) poison-recovery fallback, acquired via the ffi shim
    spare: Mutex<Vec<u32>>,
}

impl Store {
    fn push(&self, v: u32) {
        let mut inner = lock(&self.inner);
        inner.items.push(v);
    }

    fn startup_fill(&mut self, v: u32) {
        // das-lint: allow(DA701) single-threaded init: no worker has been spawned yet
        self.raw.items.push(v);
    }
}

fn pump(stop: &AtomicBool) {
    // das-lint: allow(DA711) pure quiesce flag — results are read only after join()
    while !stop.load(Ordering::Relaxed) {
        step();
    }
}
