//! Seeded defect: `record` holds `spans` (rank 10, the declared leaf
//! — the flight recorder's ring, under which nothing may be acquired)
//! while calling `mirror_gauges`, which acquires `sched` (rank 5) —
//! the inversion the SpanStore leaf rank exists to forbid, visible
//! only to the inter-procedural lockgraph pass. Must fail
//! `--deny --pass lockgraph` with DA407.

pub struct SpanStore;

impl SpanStore {
    fn record(&self) {
        let g = lock(&self.spans);
        self.mirror_gauges();
        drop(g);
    }

    fn mirror_gauges(&self) {
        let s = lock(&self.sched);
        let _ = s;
    }
}
