//! Seeded defect: `route_done` holds `done` (rank 5) while calling
//! `adopt`, which acquires `inbox` (rank 4) — an inversion of the
//! event-loop engine's shard-queue lock order that only the
//! inter-procedural lockgraph pass can see. Must fail
//! `--deny --pass lockgraph` with DA407.

pub struct Shard;

impl Shard {
    fn route_done(&self) {
        let d = lock(&self.done);
        self.adopt();
        drop(d);
    }

    fn adopt(&self) {
        let q = lock(&self.inbox);
        let _ = q;
    }
}
