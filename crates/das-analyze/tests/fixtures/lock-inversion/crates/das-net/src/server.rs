//! Seeded defect: `outer` holds `inner` (rank 2) while calling
//! `helper`, which acquires `conns` (rank 1) — a cross-function
//! inversion of the declared hierarchy that only an inter-procedural
//! pass can see. Must fail `--deny --pass lockgraph` with DA407.

pub struct Srv;

impl Srv {
    fn outer(&self) {
        let g = lock(&self.inner);
        self.helper();
        drop(g);
    }

    fn helper(&self) {
        let c = lock(&self.conns);
        let _ = c;
    }
}
