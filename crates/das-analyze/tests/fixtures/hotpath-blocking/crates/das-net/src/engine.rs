//! Seeded blocking defects on the shard poll loop (DA803): a sleep
//! and a synchronous connect, two calls deep from `shard_loop` —
//! the inter-procedural case a per-function lint misses.

fn shard_loop(q: &Queues) {
    loop {
        poll_once(q);
    }
}

fn poll_once(q: &Queues) {
    if q.is_idle() {
        refresh_peer(q);
    }
}

fn refresh_peer(q: &Queues) {
    std::thread::sleep(Duration::from_millis(5));
    let sock = TcpStream::connect(q.peer_addr);
    q.adopt(sock);
}

fn worker_loop(q: &Queues) {
    // Workers may block: peer fetches are blocking RPC by design.
    let reply = q.rx.recv();
    q.finish(reply);
}
