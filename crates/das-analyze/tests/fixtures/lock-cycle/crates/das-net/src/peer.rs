//! Seeded defect: `ab` takes alpha then (via a call) beta, while
//! `ba` takes beta then (via a call) alpha — an AB/BA cycle spread
//! across four functions. Must fail `--deny --pass lockgraph` with
//! DA408. The locks are deliberately outside the declared hierarchy
//! so only the cycle detector fires.

pub struct Peers;

impl Peers {
    fn ab(&self) {
        let a = lock(&self.alpha);
        self.takes_beta();
        drop(a);
    }

    fn takes_beta(&self) {
        let b = lock(&self.beta);
        let _ = b;
    }

    fn ba(&self) {
        let b = lock(&self.beta);
        self.takes_alpha();
        drop(b);
    }

    fn takes_alpha(&self) {
        let a = lock(&self.alpha);
        let _ = a;
    }
}
