//! Seeded wire-cost drift: the `GetStrip` encode arm carries an
//! extra `put_u64` the real codec never writes, so the symbolic
//! |payload| = 20 disagrees with the linked codec's 12 B (DA811)
//! and every composed sequence formula diverges (DA812).

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_blob(b: &mut Vec<u8>, blob: &[u8]) {
    put_u32(b, blob.len() as u32);
    b.extend_from_slice(blob);
}

impl Message {
    pub fn opcode(&self) -> u8 {
        match self {
            Message::GetStrip { .. } => 0x14,
            Message::StripData { .. } => 0x15,
            Message::PutStrip { .. } => 0x12,
            Message::PutStripOk => 0x13,
        }
    }

    pub fn encode_payload(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Message::GetStrip { file, strip } => {
                put_u32(&mut b, *file);
                put_u64(&mut b, *strip);
                put_u64(&mut b, 0);
            }
            Message::StripData { payload } => put_blob(&mut b, payload),
            Message::PutStrip { file, strip, payload } => {
                put_u32(&mut b, *file);
                put_u64(&mut b, *strip);
                put_blob(&mut b, payload);
            }
            Message::PutStripOk => {}
        }
        b
    }
}
