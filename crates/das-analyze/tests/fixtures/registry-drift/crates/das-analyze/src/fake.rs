//! Seeded defect: this "pass" emits a finding code nobody
//! registered — DA001 drift.

pub fn rogue_code() -> &'static str {
    "DA999"
}
