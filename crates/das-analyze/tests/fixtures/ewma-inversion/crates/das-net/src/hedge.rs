//! Seeded defect: `observe` holds `ewma` (rank 9; only the span
//! recorder ranks below it) while calling `reorder`, which
//! acquires `sched` (rank 5) — an inversion of the hierarchy's
//! tail-tolerance ranks that only the inter-procedural lockgraph pass
//! can see. Must fail `--deny --pass lockgraph` with DA407.

pub struct LoadTracker;

impl LoadTracker {
    fn observe(&self) {
        let e = lock(&self.ewma);
        self.reorder();
        drop(e);
    }

    fn reorder(&self) {
        let s = lock(&self.sched);
        let _ = s;
    }
}
