//! False-positive regression fixture: every pattern below is one the
//! old line-based lints misfired on, and the token-based lints must
//! pass. Doc prose mentioning unwrap() or panic! is not code.

/// Calling `.expect("boom")` is merely *documented* here — and this
/// doc comment also says panic!("no").
pub fn fine() -> &'static str {
    // a comment saying .unwrap() must not count
    let s = "calling .unwrap() or panic!(\"x\") in a string is data";
    /* block comment: .expect("also fine") and eprintln!("quiet") */
    s
}

/// A multi-line string literal holding lint-shaped text.
pub fn raw() -> &'static str {
    r#"
    .unwrap()
    .expect("inside a raw string")
    panic!("inert")
    println!("inert")
    "#
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_masked() {
        let v: Option<u8> = Some(1);
        v.unwrap();
        let r: Result<u8, u8> = Ok(1);
        r.expect("fine inside cfg(test)");
        if fine().is_empty() {
            panic!("unreachable");
        }
        println!("tests may print");
        eprintln!("and eprint");
    }
}
