//! Seeded defect for the blob-taint rule: a peer-returned strip is
//! stored without its length ever being validated (DA503).

impl Srv {
    fn assemble(&self, file: u32, u: u64) -> Result<(), NetError> {
        let payload = self.get_strip_failover(file, u)?;
        self.store.insert(u, payload);
        Ok(())
    }
}
