//! Seeded defects for the wire-taint pass: `read_blob` allocates
//! directly from a wire-decoded length (DA501), and `read_quads`
//! allocates from a value *derived* from one (DA502). Neither length
//! is compared against any bound first.

impl Dec {
    fn read_blob(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.take_u32()? as usize;
        let buf = vec![0u8; n];
        Ok(buf)
    }

    fn read_quads(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.take_u32()? as usize;
        let m = n * 4;
        let mut v = Vec::with_capacity(m);
        v.push(0);
        Ok(v)
    }
}
