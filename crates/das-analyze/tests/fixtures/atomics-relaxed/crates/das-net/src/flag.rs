// Fixture: the publication anti-pattern — a Relaxed flag load gates
// a branch that consumes data the flag's writer published.
fn writer(data: &mut Payload) {
    data.fill();
    READY.store(true, Ordering::Release);
}

fn reader() {
    if READY.load(Ordering::Relaxed) {
        consume(&DATA);
    }
}
