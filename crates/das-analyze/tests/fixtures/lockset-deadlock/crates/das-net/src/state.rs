// Fixture: two declared lock fields, one of which is never acquired
// anywhere in the file set — a dead lock the pass must flag.
struct Pools {
    used: Mutex<Vec<u32>>,
    idle: Mutex<Vec<u32>>,
}

fn recycle(p: &Pools) {
    let mut g = lock(&p.used);
    g.clear();
}
