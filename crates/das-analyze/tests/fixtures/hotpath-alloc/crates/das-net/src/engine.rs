//! Seeded hot-path allocation defects: a byte-copy in the job
//! runner (DA801), an unbounded wire-sized allocation (DA802), and
//! a payload byte-copy sink (DA804) — all reachable from the shard
//! poll loop.

fn shard_loop(q: &Queues) {
    while let Some(job) = q.pop() {
        run_job(job);
    }
}

fn run_job(job: Job) {
    // The classic regression: materializing the strip payload.
    let payload = job.payload.to_vec();
    handle(job.hdr, payload);
}

fn handle(hdr: [u8; 4], payload: Vec<u8>) {
    let n = u32::from_le_bytes(hdr) as usize;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&payload);
    submit(out);
}

fn submit(_out: Vec<u8>) {}

fn cold_admin_tool(snapshot: &Snapshot) -> Vec<u8> {
    // Unreachable from the poll loop: copying here is fine.
    snapshot.payload.to_vec()
}
