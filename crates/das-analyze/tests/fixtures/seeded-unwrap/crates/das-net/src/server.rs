// Fixture: a request-path module with a seeded panic site.
fn handle_frame(frame: &[u8]) -> u32 {
    let len = frame.len().checked_sub(4).unwrap();
    len as u32
}
