//! Property test for the costmodel pass's symbolic frame-size
//! formulas: for *arbitrary* field values — not just the pass's
//! n ∈ {0, 1, 7, 1024} probe points — every message variant's frame
//! length through the real codec must equal the closed-form
//! expression the pass extracts from source (payload constant plus
//! blob lengths, plus the 12 + 4 + 8·[trace] + 4·[budget] frame
//! overhead). This is the Eqs. 1–17 trust chain exercised from the
//! opposite direction: the formulas are restated here independently,
//! so a change to either the codec or the extractor that silently
//! shifts a byte fails one of the two.

use das_net::codec::frame_parts_opts;
use das_net::proto::{ErrorCode, Message, Role, WireStats};
use das_pfs::{DistributionInfo, LayoutPolicy};

use proptest::prelude::*;

/// The symbolic per-variant payload size — the same formulas
/// `das-analyze --pass costmodel` extracts from `proto.rs` and
/// proves as DA810 records, restated by hand.
fn symbolic_payload_len(m: &Message) -> usize {
    match m {
        Message::Hello { .. } => 9,
        Message::HelloOk { .. } => 8,
        Message::CreateFile { name, .. } => 27 + name.len(),
        Message::CreateFileOk { .. } => 4,
        Message::PutStrip { payload, .. } => 16 + payload.len(),
        Message::PutStripOk => 0,
        Message::GetStrip { .. } => 12,
        Message::StripData { payload } => 4 + payload.len(),
        Message::Lookup { name } => 2 + name.len(),
        Message::LookupOk { .. } => 33,
        Message::GetDistribution { .. } => 4,
        Message::DistributionResp { .. } => 29,
        Message::RedistPrepare { .. } | Message::RedistCommit { .. } => 13,
        Message::RedistPrepareOk { .. } => 16,
        Message::RedistCommitOk => 0,
        Message::Execute { kernel, .. } => 24 + kernel.len(),
        Message::ExecuteOk { .. } => 24,
        Message::Stats
        | Message::ResetStats
        | Message::ResetStatsOk
        | Message::MetricsDump
        | Message::Ping
        | Message::Pong
        | Message::Shutdown
        | Message::ShutdownOk => 0,
        Message::StatsResp(_) => 32,
        Message::MetricsText { text } => 4 + text.len(),
        Message::TraceDump { .. } => 8,
        Message::TraceDumpResp { spans } | Message::SlowLogResp { spans } => 4 + spans.len(),
        Message::SlowLog { .. } => 4,
        Message::Error { message, .. } => 4 + message.len(),
    }
}

fn policies() -> impl Strategy<Value = LayoutPolicy> {
    prop_oneof![
        Just(LayoutPolicy::RoundRobin),
        (1u64..=8).prop_map(|group| LayoutPolicy::Grouped { group }),
        (1u64..=8).prop_map(|group| LayoutPolicy::GroupedReplicated { group }),
    ]
}

fn dists() -> impl Strategy<Value = DistributionInfo> {
    (1usize..=1 << 20, 1u32..=16, policies(), any::<u64>()).prop_map(
        |(strip_size, servers, policy, file_len)| DistributionInfo {
            strip_size,
            servers,
            policy,
            file_len,
        },
    )
}

fn error_codes() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::NoSuchFile),
        Just(ErrorCode::OutOfBounds),
        Just(ErrorCode::StripNotLocal),
        Just(ErrorCode::Retryable),
    ]
}

/// Arbitrary strings stay under the `put_str` u16 length cap; byte
/// lengths (what the formulas count) exceed char counts for
/// non-ASCII, which is exactly the case worth sweeping.
fn names() -> impl Strategy<Value = String> {
    ".{0,48}"
}

fn blobs() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..4096)
}

fn messages() -> impl Strategy<Value = Message> {
    prop_oneof![
        (prop_oneof![Just(Role::Client), Just(Role::Server)], any::<u32>(), any::<u32>())
            .prop_map(|(role, peer_id, caps)| Message::Hello { role, peer_id, caps }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(server_id, caps)| Message::HelloOk { server_id, caps }),
        (names(), any::<u64>(), any::<u32>(), policies(), any::<u32>()).prop_map(
            |(name, file_len, strip_size, policy, servers)| Message::CreateFile {
                name,
                file_len,
                strip_size,
                policy,
                servers,
            }
        ),
        any::<u32>().prop_map(|file| Message::CreateFileOk { file }),
        (any::<u32>(), any::<u64>(), blobs())
            .prop_map(|(file, strip, payload)| Message::PutStrip { file, strip, payload }),
        Just(Message::PutStripOk),
        (any::<u32>(), any::<u64>()).prop_map(|(file, strip)| Message::GetStrip { file, strip }),
        blobs().prop_map(|payload| Message::StripData { payload }),
        names().prop_map(|name| Message::Lookup { name }),
        (any::<u32>(), dists()).prop_map(|(file, dist)| Message::LookupOk { file, dist }),
        any::<u32>().prop_map(|file| Message::GetDistribution { file }),
        dists().prop_map(|dist| Message::DistributionResp { dist }),
        (any::<u32>(), policies())
            .prop_map(|(file, policy)| Message::RedistPrepare { file, policy }),
        (any::<u64>(), any::<u64>()).prop_map(|(fetched_strips, fetched_bytes)| {
            Message::RedistPrepareOk { fetched_strips, fetched_bytes }
        }),
        (any::<u32>(), policies())
            .prop_map(|(file, policy)| Message::RedistCommit { file, policy }),
        Just(Message::RedistCommitOk),
        ((any::<u32>(), any::<u32>(), names(), any::<u64>()), (any::<u32>(), any::<bool>(), any::<bool>()))
            .prop_map(|((file, out_file, kernel, img_width), (element_size, successive, force))| {
                Message::Execute { file, out_file, kernel, img_width, element_size, successive, force }
            }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(strips_computed, dep_fetches, dep_fetch_bytes)| Message::ExecuteOk {
                strips_computed,
                dep_fetches,
                dep_fetch_bytes,
            }
        ),
        prop_oneof![
            Just(Message::Stats),
            Just(Message::ResetStats),
            Just(Message::ResetStatsOk),
            Just(Message::MetricsDump),
            Just(Message::Ping),
            Just(Message::Pong),
            Just(Message::Shutdown),
            Just(Message::ShutdownOk),
        ],
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(client_in, client_out, server_in, server_out)| Message::StatsResp(WireStats {
                client_in,
                client_out,
                server_in,
                server_out,
            })
        ),
        names().prop_map(|text| Message::MetricsText { text }),
        any::<u64>().prop_map(|trace| Message::TraceDump { trace }),
        blobs().prop_map(|spans| Message::TraceDumpResp { spans }),
        any::<u32>().prop_map(|per_class| Message::SlowLog { per_class }),
        blobs().prop_map(|spans| Message::SlowLogResp { spans }),
        (error_codes(), names()).prop_map(|(code, message)| Message::Error { code, message }),
    ]
}

fn caps() -> impl Strategy<Value = (Option<u64>, Option<u32>)> {
    (
        prop_oneof![Just(None), any::<u64>().prop_map(Some)],
        prop_oneof![Just(None), any::<u32>().prop_map(Some)],
    )
}

proptest! {
    // The payload-level formula: `encode_payload` produces exactly
    // the symbolic byte count for every variant and field values.
    #[test]
    fn encode_payload_matches_symbolic_formula(msg in messages()) {
        prop_assert_eq!(msg.encode_payload().len(), symbolic_payload_len(&msg));
    }

    // The frame-level formula: header + CRC + optional trace and
    // budget fields + payload, for every caps combination — the
    // per-message term every DA812 sequence cost composes from.
    #[test]
    fn frame_len_matches_symbolic_formula(msg in messages(), (trace, budget) in caps()) {
        let overhead = 12 + 4
            + if trace.is_some() { 8 } else { 0 }
            + if budget.is_some() { 4 } else { 0 };
        let parts = frame_parts_opts(&msg, trace, budget);
        prop_assert_eq!(parts.len(), overhead + symbolic_payload_len(&msg));
        // The split encode is bit-identical to the owned encode: the
        // zero-copy path may never change what goes on the wire.
        let (prefix, body) = msg.split_payload();
        let mut joined = prefix;
        joined.extend_from_slice(body);
        prop_assert_eq!(joined, msg.encode_payload());
    }
}
