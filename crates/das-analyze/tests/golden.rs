//! Golden-fixture tests for the `das-analyze` binary: each fixture
//! under `tests/fixtures/` is a miniature repository seeded with one
//! class of defect, and `das-analyze --deny` must exit nonzero with
//! the expected finding code on it — and exit zero on the real repo.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

/// Run the binary with `--deny --json` against `root`, returning
/// (exit-ok, stdout).
fn analyze(root: &Path, passes: &[&str]) -> (bool, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_das-analyze"));
    cmd.arg("--root").arg(root).arg("--deny").arg("--json");
    for pass in passes {
        cmd.arg("--pass").arg(pass);
    }
    let out = cmd.output().expect("spawn das-analyze");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.success(), stdout)
}

fn assert_denied_with(root: &Path, passes: &[&str], codes: &[&str]) {
    let (ok, stdout) = analyze(root, passes);
    assert!(!ok, "expected --deny to fail on {}:\n{stdout}", root.display());
    for code in codes {
        assert!(
            stdout.contains(&format!("\"code\":\"{code}\"")),
            "expected {code} on {}:\n{stdout}",
            root.display()
        );
    }
}

#[test]
fn malformed_descriptor_fails_with_parse_error() {
    assert_denied_with(&fixture("malformed"), &["descriptors"], &["DA101"]);
}

#[test]
fn conflicting_txt_and_xml_fail_with_drift_codes() {
    let (ok, stdout) = analyze(&fixture("conflict"), &["descriptors"]);
    assert!(!ok, "{stdout}");
    // Pattern disagreement on the shared kernel…
    assert!(stdout.contains("\"code\":\"DA106\""), "{stdout}");
    // …and one-sided kernels in both directions.
    assert!(stdout.contains("\"code\":\"DA105\""), "{stdout}");
    assert!(stdout.contains("txt-only"), "{stdout}");
    assert!(stdout.contains("xml-only"), "{stdout}");
}

#[test]
fn under_replicated_layout_fails_with_da107() {
    assert_denied_with(&fixture("underrep"), &["descriptors"], &["DA107"]);
}

#[test]
fn doctored_protocol_doc_fails_with_drift_codes() {
    let (ok, stdout) = analyze(&fixture("doc-drift"), &["protocol"]);
    assert!(!ok, "{stdout}");
    // Misnamed opcode 0x01 and the ghost opcode both surface as DA205.
    assert!(stdout.contains("\"code\":\"DA205\""), "{stdout}");
    assert!(stdout.contains("0x7e"), "{stdout}");
    // Misnamed error code 1 and the missing rows surface as DA206.
    assert!(stdout.contains("\"code\":\"DA206\""), "{stdout}");
    // No fault class is documented at all.
    assert!(stdout.contains("\"code\":\"DA207\""), "{stdout}");
}

#[test]
fn seeded_unwrap_in_request_path_fails_with_da401() {
    let (ok, stdout) = analyze(&fixture("seeded-unwrap"), &["lints"]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("\"code\":\"DA401\""), "{stdout}");
    assert!(stdout.contains("server.rs:3"), "{stdout}");
}

#[test]
fn real_repo_is_clean_under_deny() {
    let (ok, stdout) = analyze(&repo_root(), &[]);
    assert!(ok, "the shipped repo must pass --deny:\n{stdout}");
    // The proof findings must be on the record.
    assert!(stdout.contains("\"code\":\"DA200\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA301\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA303\""), "{stdout}");
}

#[test]
fn unknown_pass_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_das-analyze"))
        .args(["--pass", "nonsense"])
        .output()
        .expect("spawn das-analyze");
    assert_eq!(out.status.code(), Some(2));
}
