//! Golden-fixture tests for the `das-analyze` binary: each fixture
//! under `tests/fixtures/` is a miniature repository seeded with one
//! class of defect, and `das-analyze --deny` must exit nonzero with
//! the expected finding code on it — and exit zero on the real repo.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

/// Run the binary with `--deny --json` against `root`, returning
/// (exit-ok, stdout).
fn analyze(root: &Path, passes: &[&str]) -> (bool, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_das-analyze"));
    cmd.arg("--root").arg(root).arg("--deny").arg("--json");
    for pass in passes {
        cmd.arg("--pass").arg(pass);
    }
    let out = cmd.output().expect("spawn das-analyze");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.success(), stdout)
}

fn assert_denied_with(root: &Path, passes: &[&str], codes: &[&str]) {
    let (ok, stdout) = analyze(root, passes);
    assert!(!ok, "expected --deny to fail on {}:\n{stdout}", root.display());
    for code in codes {
        assert!(
            stdout.contains(&format!("\"code\":\"{code}\"")),
            "expected {code} on {}:\n{stdout}",
            root.display()
        );
    }
}

#[test]
fn malformed_descriptor_fails_with_parse_error() {
    assert_denied_with(&fixture("malformed"), &["descriptors"], &["DA101"]);
}

#[test]
fn conflicting_txt_and_xml_fail_with_drift_codes() {
    let (ok, stdout) = analyze(&fixture("conflict"), &["descriptors"]);
    assert!(!ok, "{stdout}");
    // Pattern disagreement on the shared kernel…
    assert!(stdout.contains("\"code\":\"DA106\""), "{stdout}");
    // …and one-sided kernels in both directions.
    assert!(stdout.contains("\"code\":\"DA105\""), "{stdout}");
    assert!(stdout.contains("txt-only"), "{stdout}");
    assert!(stdout.contains("xml-only"), "{stdout}");
}

#[test]
fn under_replicated_layout_fails_with_da107() {
    assert_denied_with(&fixture("underrep"), &["descriptors"], &["DA107"]);
}

#[test]
fn doctored_protocol_doc_fails_with_drift_codes() {
    let (ok, stdout) = analyze(&fixture("doc-drift"), &["protocol"]);
    assert!(!ok, "{stdout}");
    // Misnamed opcode 0x01 and the ghost opcode both surface as DA205.
    assert!(stdout.contains("\"code\":\"DA205\""), "{stdout}");
    assert!(stdout.contains("0x7e"), "{stdout}");
    // Misnamed error code 1 and the missing rows surface as DA206.
    assert!(stdout.contains("\"code\":\"DA206\""), "{stdout}");
    // No fault class is documented at all.
    assert!(stdout.contains("\"code\":\"DA207\""), "{stdout}");
}

#[test]
fn seeded_unwrap_in_request_path_fails_with_da401() {
    let (ok, stdout) = analyze(&fixture("seeded-unwrap"), &["lints"]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("\"code\":\"DA401\""), "{stdout}");
    assert!(stdout.contains("server.rs:3"), "{stdout}");
}

#[test]
fn lint_shaped_text_in_comments_strings_and_tests_is_clean() {
    // Regression net for the old line-heuristic false positives:
    // every pattern in this fixture once misfired, and the
    // token-based lints must pass it.
    let (ok, stdout) = analyze(&fixture("lint-fp"), &["lints"]);
    assert!(ok, "token-based lints must not fire on comments/strings/tests:\n{stdout}");
}

#[test]
fn cross_function_lock_inversion_fails_with_da407() {
    let (ok, stdout) = analyze(&fixture("lock-inversion"), &["lockgraph"]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("\"code\":\"DA407\""), "{stdout}");
    // The witness chain names both ends of the call.
    assert!(stdout.contains("outer"), "{stdout}");
    assert!(stdout.contains("helper"), "{stdout}");
}

#[test]
fn engine_shard_queue_inversion_fails_with_da407() {
    // The event-loop engine's locks (`inbox` rank 4, `done` rank 5)
    // are part of the declared hierarchy; acquiring them backwards
    // across a call is the same AB/BA deadlock as the server locks.
    let (ok, stdout) = analyze(&fixture("engine-inversion"), &["lockgraph"]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("\"code\":\"DA407\""), "{stdout}");
    assert!(stdout.contains("route_done"), "{stdout}");
    assert!(stdout.contains("adopt"), "{stdout}");
}

#[test]
fn ewma_leaf_inversion_fails_with_da407() {
    // `ewma` is the hierarchy's declared leaf (the hedging load
    // tracker): acquiring the fair scheduler's `sched` through a call
    // made under it inverts the tail-tolerance ranks added with the
    // hedged-read/shedding work.
    let (ok, stdout) = analyze(&fixture("ewma-inversion"), &["lockgraph"]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("\"code\":\"DA407\""), "{stdout}");
    assert!(stdout.contains("observe"), "{stdout}");
    assert!(stdout.contains("reorder"), "{stdout}");
}

#[test]
fn span_store_leaf_inversion_fails_with_da407() {
    // `spans` is the hierarchy's declared leaf (the per-daemon span
    // flight recorder): record sites run under arbitrary request-path
    // ranks, so acquiring *anything* ranked through a call made while
    // `spans` is held inverts the order the observability work
    // declared.
    let (ok, stdout) = analyze(&fixture("span-inversion"), &["lockgraph"]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("\"code\":\"DA407\""), "{stdout}");
    assert!(stdout.contains("record"), "{stdout}");
    assert!(stdout.contains("mirror_gauges"), "{stdout}");
}

#[test]
fn ab_ba_lock_cycle_across_calls_fails_with_da408() {
    let (ok, stdout) = analyze(&fixture("lock-cycle"), &["lockgraph"]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("\"code\":\"DA408\""), "{stdout}");
    assert!(stdout.contains("alpha"), "{stdout}");
    assert!(stdout.contains("beta"), "{stdout}");
}

#[test]
fn unchecked_wire_lengths_fail_with_da501_and_da502() {
    let (ok, stdout) = analyze(&fixture("taint-unchecked"), &["taint"]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("\"code\":\"DA501\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA502\""), "{stdout}");
}

#[test]
fn unvalidated_peer_blob_fails_with_da503() {
    let (_, stdout) = analyze(&fixture("taint-unchecked"), &["taint"]);
    assert!(stdout.contains("\"code\":\"DA503\""), "{stdout}");
    assert!(stdout.contains("server.rs"), "{stdout}");
}

#[test]
fn every_seeded_model_defect_yields_its_counterexample() {
    let (ok, stdout) = analyze(&fixture("model-defects"), &["model"]);
    assert!(!ok, "{stdout}");
    for code in ["DA601", "DA602", "DA603", "DA604", "DA605", "DA606"] {
        assert!(stdout.contains(&format!("\"code\":\"{code}\"")), "missing {code}:\n{stdout}");
    }
    // The unknown defect name is registry drift…
    assert!(stdout.contains("\"code\":\"DA607\""), "{stdout}");
    // …and each counterexample is a readable numbered trace.
    assert!(stdout.contains("counterexample"), "{stdout}");
    assert!(stdout.contains("[1] connect"), "{stdout}");
}

#[test]
fn unguarded_field_access_fails_with_da701() {
    let (ok, stdout) = analyze(&fixture("lockset-unguarded"), &["lockset"]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("\"code\":\"DA701\""), "{stdout}");
    // The witness names the field, the dominating guard, and a
    // guarded access elsewhere for contrast.
    assert!(stdout.contains("store.rs:21"), "{stdout}");
    assert!(stdout.contains("guarded accesses elsewhere"), "{stdout}");
    assert!(stdout.contains("store.rs:16"), "{stdout}");
}

#[test]
fn dead_lock_fails_with_da703() {
    let (ok, stdout) = analyze(&fixture("lockset-deadlock"), &["lockset"]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("\"code\":\"DA703\""), "{stdout}");
    assert!(stdout.contains("idle"), "{stdout}");
    // The acquired lock is not a dead lock.
    assert!(!stdout.contains("`used` is declared"), "{stdout}");
}

#[test]
fn relaxed_publication_load_fails_with_da711() {
    let (ok, stdout) = analyze(&fixture("atomics-relaxed"), &["atomics"]);
    assert!(!ok, "{stdout}");
    // The Relaxed branch load is the publication pattern…
    assert!(stdout.contains("\"code\":\"DA711\""), "{stdout}");
    assert!(stdout.contains("READY"), "{stdout}");
    // …and the Release store it pairs with makes the strength
    // mismatch explicit too.
    assert!(stdout.contains("\"code\":\"DA712\""), "{stdout}");
}

#[test]
fn every_seeded_pipelined_defect_yields_its_counterexample() {
    let (ok, stdout) = analyze(&fixture("pipemodel-defects"), &["pipemodel"]);
    assert!(!ok, "{stdout}");
    for code in ["DA621", "DA622", "DA623", "DA624", "DA625", "DA626"] {
        assert!(stdout.contains(&format!("\"code\":\"{code}\"")), "missing {code}:\n{stdout}");
    }
    // The unknown defect name is drift…
    assert!(stdout.contains("\"code\":\"DA627\""), "{stdout}");
    assert!(stdout.contains("pipe-made-up-defect"), "{stdout}");
    // …and each counterexample is a readable numbered trace.
    assert!(stdout.contains("counterexample"), "{stdout}");
    assert!(stdout.contains("[1] submit"), "{stdout}");
}

#[test]
fn justified_concurrency_waivers_pass_deny() {
    // Seeded DA701/DA703/DA711 sites, each waived with a justifying
    // comment: the passes must honor every waiver (no findings), see
    // none as stale (no DA430), and accept the justifications (no
    // DA714).
    let (ok, stdout) = analyze(&fixture("concurrency-waived"), &["lockset", "atomics"]);
    assert!(ok, "justified waivers must pass --deny:\n{stdout}");
}

#[test]
fn registry_drift_fails_with_da001_and_da003() {
    let (ok, stdout) = analyze(&fixture("registry-drift"), &["registry"]);
    assert!(!ok, "{stdout}");
    // An emitted-but-unregistered code…
    assert!(stdout.contains("\"code\":\"DA001\""), "{stdout}");
    assert!(stdout.contains("DA999"), "{stdout}");
    // …and a documented-but-unregistered one.
    assert!(stdout.contains("\"code\":\"DA003\""), "{stdout}");
    assert!(stdout.contains("DA888"), "{stdout}");
}

#[test]
fn seeded_hot_path_allocations_fail_with_da801_da802_da804() {
    let (ok, stdout) = analyze(&fixture("hotpath-alloc"), &["hotpath"]);
    assert!(!ok, "{stdout}");
    // The reachable to_vec, the unbounded wire-sized allocation, and
    // the payload byte-copy sink…
    assert!(stdout.contains("\"code\":\"DA801\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA802\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA804\""), "{stdout}");
    // …but not the copy in the unreachable admin tool.
    assert_eq!(stdout.matches("\"code\":\"DA801\"").count(), 1, "{stdout}");
}

#[test]
fn seeded_blocking_calls_on_the_poll_loop_fail_with_da803() {
    let (ok, stdout) = analyze(&fixture("hotpath-blocking"), &["hotpath"]);
    assert!(!ok, "{stdout}");
    // The sleep and the synchronous connect, two calls deep from
    // shard_loop — but not the worker's recv (workers may block).
    assert_eq!(stdout.matches("\"code\":\"DA803\"").count(), 2, "{stdout}");
    assert!(stdout.contains("sleep"), "{stdout}");
    assert!(stdout.contains("connect"), "{stdout}");
}

#[test]
fn doctored_encode_arm_fails_with_da811_and_da812() {
    let (ok, stdout) = analyze(&fixture("costmodel-drift"), &["costmodel"]);
    assert!(!ok, "{stdout}");
    // The per-variant formula drifts from the linked codec…
    assert!(stdout.contains("\"code\":\"DA811\""), "{stdout}");
    assert!(stdout.contains("symbolic |payload| = 20"), "{stdout}");
    // …and every composed sequence cost diverges with it.
    assert!(stdout.contains("\"code\":\"DA812\""), "{stdout}");
}

#[test]
fn real_repo_is_clean_under_deny() {
    let (ok, stdout) = analyze(&repo_root(), &[]);
    assert!(ok, "the shipped repo must pass --deny:\n{stdout}");
    // The proof findings must be on the record.
    assert!(stdout.contains("\"code\":\"DA200\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA301\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA303\""), "{stdout}");
    // …including the deep-analysis summaries: registry, taint,
    // lock graph, and the model checker's explored-state record.
    assert!(stdout.contains("\"code\":\"DA000\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA500\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA409\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA600\""), "{stdout}");
    // …and the concurrency-soundness records: the lockset proof,
    // the atomics census, and the pipelined model's explored-state
    // record.
    assert!(stdout.contains("\"code\":\"DA700\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA705\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA710\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA620\""), "{stdout}");
    // …and the perfguard records: the zero-copy write-path proof and
    // the wire-cost model with every message variant verified.
    assert!(stdout.contains("\"code\":\"DA800\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA806\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"DA810\""), "{stdout}");
    assert_eq!(
        stdout.matches("\"code\":\"DA810\"").count(),
        34,
        "33 variants + frame overhead must each carry a proof:\n{stdout}"
    );
    assert!(stdout.contains("\"code\":\"DA815\""), "{stdout}");
}

#[test]
fn unknown_pass_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_das-analyze"))
        .args(["--pass", "nonsense"])
        .output()
        .expect("spawn das-analyze");
    assert_eq!(out.status.code(), Some(2));
}
