//! Property tests for the discrete-event engine: on arbitrary DAGs the
//! schedule must respect dependencies, respect capacities, conserve
//! bytes, and sit between the critical-path and serialized bounds.

use das_sim::{OpId, OpKind, OpSpec, SimDuration, Simulator, TransferClass};
use proptest::prelude::*;

/// A generated op: duration, subset of earlier ops as deps, subset of
/// resources, byte payload.
#[derive(Debug, Clone)]
struct GenOp {
    duration_ns: u64,
    deps: Vec<usize>,
    resources: Vec<usize>,
    bytes: u64,
}

fn gen_dag(max_ops: usize, n_resources: usize) -> impl Strategy<Value = Vec<GenOp>> {
    prop::collection::vec(
        (
            0u64..1_000,
            prop::collection::vec(any::<prop::sample::Index>(), 0..4),
            prop::collection::vec(0..n_resources, 0..3),
            0u64..10_000,
        ),
        0..max_ops,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (duration_ns, dep_idx, resources, bytes))| GenOp {
                duration_ns,
                // Deps may only point at earlier ops (acyclic by construction).
                deps: if i == 0 {
                    vec![]
                } else {
                    dep_idx.iter().map(|d| d.index(i)).collect()
                },
                resources,
                bytes,
            })
            .collect()
    })
}

fn build(ops: &[GenOp], capacities: &[u32]) -> (Simulator, Vec<OpId>) {
    let mut sim = Simulator::new();
    sim.enable_trace();
    let rids: Vec<_> = capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| sim.add_resource(format!("r{i}"), c))
        .collect();
    let mut ids = Vec::new();
    for op in ops {
        let mut spec = OpSpec::new(OpKind::NetTransfer {
            src: 0,
            dst: 1,
            bytes: op.bytes,
        })
        .duration(SimDuration::from_nanos(op.duration_ns))
        .class(TransferClass::ServerServer);
        for &d in &op.deps {
            spec = spec.after(ids[d]);
        }
        for &r in &op.resources {
            spec = spec.uses(rids[r]);
        }
        ids.push(sim.add_op(spec));
    }
    (sim, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn schedule_respects_dependencies(
        ops in gen_dag(40, 3),
        caps in prop::collection::vec(1u32..4, 3),
    ) {
        let (sim, ids) = build(&ops, &caps);
        let report = sim.run().unwrap();
        let trace = report.trace.as_ref().unwrap();
        let mut start = vec![None; ops.len()];
        let mut finish = vec![None; ops.len()];
        for e in trace.entries() {
            let i = ids.iter().position(|&id| id == e.op).unwrap();
            start[i] = Some(e.start);
            finish[i] = Some(e.finish);
        }
        for (i, op) in ops.iter().enumerate() {
            for &d in &op.deps {
                prop_assert!(finish[d].unwrap() <= start[i].unwrap(),
                    "op {i} started before dep {d} finished");
            }
        }
    }

    #[test]
    fn capacity_never_exceeded(
        ops in gen_dag(40, 2),
        caps in prop::collection::vec(1u32..3, 2),
    ) {
        let (sim, ids) = build(&ops, &caps);
        let report = sim.run().unwrap();
        let trace = report.trace.as_ref().unwrap();
        // Sweep events per resource: +1 at start, -1 at finish; running
        // count must never exceed capacity. Zero-duration ops hold their
        // slot for an instant only; process finishes before starts at
        // equal times, matching the engine's release-then-start order.
        for (r, &cap) in caps.iter().enumerate() {
            let mut events: Vec<(u64, i32)> = Vec::new();
            for e in trace.entries() {
                let i = ids.iter().position(|&id| id == e.op).unwrap();
                if ops[i].resources.contains(&r) && e.finish > e.start {
                    events.push((e.start.as_nanos(), 1));
                    events.push((e.finish.as_nanos(), -1));
                }
            }
            events.sort_by_key(|&(t, delta)| (t, delta)); // -1 before +1 at ties
            let mut in_use = 0i32;
            for (_, delta) in events {
                in_use += delta;
                prop_assert!(in_use <= cap as i32, "resource {r} oversubscribed");
            }
        }
    }

    #[test]
    fn bytes_are_conserved(ops in gen_dag(60, 2)) {
        let caps = vec![2, 2];
        let (sim, _) = build(&ops, &caps);
        let report = sim.run().unwrap();
        let expected: u64 = ops.iter().map(|o| o.bytes).sum();
        prop_assert_eq!(report.bytes.net_server_server, expected);
        prop_assert_eq!(report.bytes.net_total(), expected);
    }

    #[test]
    fn makespan_bounded_by_critical_path_and_serial_sum(
        ops in gen_dag(40, 2),
        caps in prop::collection::vec(1u32..4, 2),
    ) {
        let (sim, _) = build(&ops, &caps);
        let report = sim.run().unwrap();
        let serial: u64 = ops.iter().map(|o| o.duration_ns).sum();
        prop_assert!(report.critical_path <= report.makespan);
        prop_assert!(report.makespan <= SimDuration::from_nanos(serial));
    }

    #[test]
    fn deterministic_replay(ops in gen_dag(30, 2)) {
        let caps = vec![1, 2];
        let (sim_a, _) = build(&ops, &caps);
        let (sim_b, _) = build(&ops, &caps);
        let a = sim_a.run().unwrap();
        let b = sim_b.run().unwrap();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.bytes, b.bytes);
        let ta = a.trace.as_ref().unwrap().entries();
        let tb = b.trace.as_ref().unwrap().entries();
        prop_assert_eq!(ta.len(), tb.len());
        for (ea, eb) in ta.iter().zip(tb) {
            prop_assert_eq!(ea.op, eb.op);
            prop_assert_eq!(ea.start, eb.start);
            prop_assert_eq!(ea.finish, eb.finish);
        }
    }

    #[test]
    fn all_ops_complete(ops in gen_dag(80, 3)) {
        let caps = vec![1, 1, 1];
        let (sim, _) = build(&ops, &caps);
        let report = sim.run().unwrap();
        prop_assert_eq!(report.op_count, ops.len());
        if let Some(trace) = &report.trace {
            prop_assert_eq!(trace.entries().len(), ops.len());
        }
    }
}
