//! Bandwidth/latency arithmetic shared by the cluster models.
//!
//! A [`LinkRate`] converts byte counts into [`SimDuration`]s with a
//! fixed per-message latency plus a throughput term — the standard
//! first-order model (`t = α + β·n`) of both network messages and disk
//! accesses used throughout parallel-I/O literature, including the
//! bandwidth analysis of the DAS paper (Section III-C).

use crate::time::SimDuration;

/// A latency + bandwidth cost model for a communication or storage link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkRate {
    /// Fixed cost per message/access.
    pub latency: SimDuration,
    /// Sustained throughput in bytes per second.
    pub bytes_per_sec: f64,
}

impl LinkRate {
    /// Build from a latency and a throughput in **MiB/s**.
    ///
    /// # Panics
    /// Panics unless `mib_per_sec` is finite and positive.
    pub fn new(latency: SimDuration, mib_per_sec: f64) -> Self {
        assert!(
            mib_per_sec.is_finite() && mib_per_sec > 0.0,
            "throughput must be positive, got {mib_per_sec}"
        );
        LinkRate {
            latency,
            bytes_per_sec: mib_per_sec * 1024.0 * 1024.0,
        }
    }

    /// Time to move `bytes` in a single message: `latency + bytes/bw`.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Time to move `bytes` split over `messages` messages (each paying
    /// the latency once). `messages` is clamped to at least 1.
    pub fn transfer_time_msgs(&self, bytes: u64, messages: u64) -> SimDuration {
        let m = messages.max(1);
        self.latency * m + SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// The effective bandwidth achieved moving `bytes` in one message,
    /// in bytes/second (reported in bandwidth figures).
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        let t = self.transfer_time(bytes).as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            bytes as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_bandwidth_term() {
        let r = LinkRate::new(SimDuration::ZERO, 1.0); // 1 MiB/s
        assert_eq!(r.transfer_time(1 << 20), SimDuration::from_secs_f64(1.0));
    }

    #[test]
    fn latency_dominates_small_messages() {
        let r = LinkRate::new(SimDuration::from_micros(100), 1024.0);
        let t = r.transfer_time(64);
        assert!(t >= SimDuration::from_micros(100));
        assert!(t < SimDuration::from_micros(101));
    }

    #[test]
    fn message_count_multiplies_latency_only() {
        let r = LinkRate::new(SimDuration::from_micros(10), 1.0);
        let one = r.transfer_time_msgs(1 << 20, 1);
        let four = r.transfer_time_msgs(1 << 20, 4);
        assert_eq!(four - one, SimDuration::from_micros(30));
    }

    #[test]
    fn effective_bandwidth_below_peak() {
        let r = LinkRate::new(SimDuration::from_micros(100), 1024.0);
        let eff = r.effective_bandwidth(1 << 20);
        assert!(eff < r.bytes_per_sec);
        assert!(eff > 0.0);
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn non_positive_throughput_rejected() {
        let _ = LinkRate::new(SimDuration::ZERO, 0.0);
    }
}
