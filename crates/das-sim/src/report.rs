//! Simulation results: makespan, per-resource usage and byte movement.

use crate::op::{OpKind, TransferClass};
use crate::time::SimDuration;
use crate::trace::TraceLog;

/// Bytes moved during a simulation, split the way the DAS paper's
/// analysis splits them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteCounters {
    /// Bytes read from disks.
    pub disk_read: u64,
    /// Bytes written to disks.
    pub disk_write: u64,
    /// Network bytes between compute clients and storage servers
    /// (the traditional-storage data path).
    pub net_client_server: u64,
    /// Network bytes among storage servers (dependence traffic — the
    /// cost naive active storage pays and DAS eliminates).
    pub net_server_server: u64,
    /// Network bytes on transfers that carried no [`TransferClass`].
    pub net_unclassified: u64,
}

impl ByteCounters {
    pub(crate) fn record(&mut self, kind: &OpKind, class: Option<TransferClass>) {
        match kind {
            OpKind::DiskRead { bytes, .. } => self.disk_read += bytes,
            OpKind::DiskWrite { bytes, .. } => self.disk_write += bytes,
            OpKind::NetTransfer { bytes, .. } => match class {
                Some(TransferClass::ClientServer) => self.net_client_server += bytes,
                Some(TransferClass::ServerServer) => self.net_server_server += bytes,
                None => self.net_unclassified += bytes,
            },
            OpKind::Compute { .. } | OpKind::Barrier => {}
        }
    }

    /// Total bytes that crossed the network.
    pub fn net_total(&self) -> u64 {
        self.net_client_server + self.net_server_server + self.net_unclassified
    }

    /// Total bytes touched on disks.
    pub fn disk_total(&self) -> u64 {
        self.disk_read + self.disk_write
    }
}

/// How busy one resource was over the run.
#[derive(Debug, Clone)]
pub struct ResourceUsage {
    /// Resource name as registered.
    pub name: String,
    /// Concurrency capacity.
    pub capacity: u32,
    /// Total occupied time summed over slots.
    pub busy: SimDuration,
}

impl ResourceUsage {
    /// Fraction of capacity·makespan the resource was occupied
    /// (0.0 when the makespan is zero).
    pub fn utilization(&self, makespan: SimDuration) -> f64 {
        let denom = makespan.as_secs_f64() * f64::from(self.capacity);
        if denom == 0.0 {
            0.0
        } else {
            self.busy.as_secs_f64() / denom
        }
    }
}

/// The result of running a [`crate::Simulator`] to completion.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Completion time of the last operation.
    pub makespan: SimDuration,
    /// Longest dependency chain ignoring contention (lower bound on the
    /// makespan); the gap between the two measures queueing delay.
    pub critical_path: SimDuration,
    /// Number of operations executed.
    pub op_count: usize,
    /// Per-resource occupancy, in registration order.
    pub resources: Vec<ResourceUsage>,
    /// Data movement by category.
    pub bytes: ByteCounters,
    /// Present when tracing was enabled.
    pub trace: Option<TraceLog>,
}

impl SimReport {
    /// Queueing delay: makespan minus critical path.
    pub fn contention_overhead(&self) -> SimDuration {
        self.makespan.saturating_sub(self.critical_path)
    }

    /// Human-readable run summary: timing, data movement, and the
    /// most-utilized resources (the bottleneck view).
    pub fn summary(&self) -> String {
        let mut by_util: Vec<&ResourceUsage> = self.resources.iter().collect();
        by_util.sort_by(|a, b| {
            b.utilization(self.makespan)
                .total_cmp(&a.utilization(self.makespan))
        });
        let mut out = format!(
            "makespan {}  critical-path {}  contention {}  ops {}\n\
             bytes: disk r/w {}/{} MiB, net client {} MiB, net server {} MiB\n\
             busiest resources:\n",
            self.makespan,
            self.critical_path,
            self.contention_overhead(),
            self.op_count,
            self.bytes.disk_read / (1 << 20),
            self.bytes.disk_write / (1 << 20),
            self.bytes.net_client_server / (1 << 20),
            self.bytes.net_server_server / (1 << 20),
        );
        for r in by_util.iter().take(5) {
            out.push_str(&format!(
                "  {:<16} {:>6.1}% busy ({})\n",
                r.name,
                r.utilization(self.makespan) * 100.0,
                r.busy
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_handles_zero_makespan() {
        let u = ResourceUsage {
            name: "cpu".into(),
            capacity: 2,
            busy: SimDuration::ZERO,
        };
        assert_eq!(u.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn counters_totals() {
        let c = ByteCounters {
            disk_read: 1,
            disk_write: 2,
            net_client_server: 4,
            net_server_server: 8,
            net_unclassified: 16,
        };
        assert_eq!(c.net_total(), 28);
        assert_eq!(c.disk_total(), 3);
    }
}
