//! Simulated time: nanosecond-resolution instants and durations.
//!
//! The simulator never consults the wall clock; all times are logical.
//! `u64` nanoseconds give ~584 years of simulated range, far beyond any
//! experiment in this workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, measured in nanoseconds from the start
/// of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; the engine only ever
    /// subtracts a start time from a completion time.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is later than self"),
        )
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from (possibly fractional) seconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64: invalid seconds {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulation ran past u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_500);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_nanos(250_000_000)
        );
    }

    #[test]
    fn duration_sum_and_scale() {
        let parts = [
            SimDuration::from_nanos(1),
            SimDuration::from_nanos(2),
            SimDuration::from_nanos(3),
        ];
        let total: SimDuration = parts.into_iter().sum();
        assert_eq!(total, SimDuration::from_nanos(6));
        assert_eq!(total * 2, SimDuration::from_nanos(12));
        assert_eq!(total / 3, SimDuration::from_nanos(2));
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn since_panics_on_reversed_order() {
        let _ = SimTime::ZERO.since(SimTime::from_nanos(1));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs_f64(1.5).to_string(), "1.500s");
    }
}
