//! Contended resources: CPUs, NICs, disks, switches.
//!
//! A [`Resource`] has a fixed integer capacity (number of operations it
//! can execute concurrently). The cluster models in `das-runtime` create
//! one CPU resource per node (capacity = cores dedicated to the storage
//! service), one NIC resource per node, and one disk resource per
//! storage node; contention between offloaded kernels and dependence
//! requests then falls out of the scheduler instead of being assumed.

/// Identifier of a resource inside one [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// The raw index of the resource in creation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named, capacity-limited resource.
#[derive(Debug, Clone)]
pub struct Resource {
    /// Human-readable name used in traces and reports (e.g. `"nic3"`).
    pub name: String,
    /// Number of operations the resource can run concurrently (≥ 1).
    pub capacity: u32,
    pub(crate) in_use: u32,
}

impl Resource {
    pub(crate) fn new(name: impl Into<String>, capacity: u32) -> Self {
        assert!(capacity >= 1, "resource capacity must be >= 1");
        Resource {
            name: name.into(),
            capacity,
            in_use: 0,
        }
    }

    /// Whether at least one slot is free.
    pub(crate) fn has_slot(&self) -> bool {
        self.in_use < self.capacity
    }

    pub(crate) fn acquire(&mut self) {
        debug_assert!(self.has_slot(), "acquire on saturated resource {}", self.name);
        self.in_use += 1;
    }

    pub(crate) fn release(&mut self) {
        debug_assert!(self.in_use > 0, "release on idle resource {}", self.name);
        self.in_use -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_gates_slots() {
        let mut r = Resource::new("cpu", 2);
        assert!(r.has_slot());
        r.acquire();
        assert!(r.has_slot());
        r.acquire();
        assert!(!r.has_slot());
        r.release();
        assert!(r.has_slot());
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn zero_capacity_rejected() {
        let _ = Resource::new("bad", 0);
    }
}
