//! Operations: the unit of simulated work.
//!
//! An operation occupies a set of resources for a fixed duration once
//! all of its dependencies have completed. Byte-carrying kinds
//! ([`OpKind::DiskRead`], [`OpKind::DiskWrite`], [`OpKind::NetTransfer`])
//! are accounted in [`crate::ByteCounters`] so experiments can report
//! data movement per category — the quantity the DAS paper's analysis
//! revolves around.

use crate::time::SimDuration;
use crate::ResourceId;

/// Identifier of an operation inside one [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// The raw index of the op in creation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Classifies a network transfer for byte accounting.
///
/// The DAS paper distinguishes traffic between compute nodes (clients)
/// and storage nodes from dependence traffic *among* storage nodes;
/// the former is the cost of traditional storage (TS), the latter is
/// what sinks naive active storage (NAS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferClass {
    /// Storage server ↔ compute client (normal I/O path).
    ClientServer,
    /// Storage server ↔ storage server (dependence traffic).
    ServerServer,
}

/// What an operation does. Node indices are opaque to the engine; the
/// cluster model in `das-runtime` assigns them meaning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Read `bytes` from the disk of `node`.
    DiskRead {
        /// Node whose disk is read.
        node: u32,
        /// Number of bytes read.
        bytes: u64,
    },
    /// Write `bytes` to the disk of `node`.
    DiskWrite {
        /// Node whose disk is written.
        node: u32,
        /// Number of bytes written.
        bytes: u64,
    },
    /// Move `bytes` from `src` to `dst` over the network.
    NetTransfer {
        /// Sending node.
        src: u32,
        /// Receiving node.
        dst: u32,
        /// Number of bytes moved.
        bytes: u64,
    },
    /// Spend CPU time on `node` (kernel execution, request service, …).
    Compute {
        /// Node whose CPU is occupied.
        node: u32,
        /// Work units (elements processed); informational.
        units: u64,
    },
    /// Zero-byte synchronization point (holds no resources by default).
    Barrier,
}

impl OpKind {
    /// Bytes carried by the operation (0 for compute/barrier).
    pub fn bytes(&self) -> u64 {
        match *self {
            OpKind::DiskRead { bytes, .. }
            | OpKind::DiskWrite { bytes, .. }
            | OpKind::NetTransfer { bytes, .. } => bytes,
            OpKind::Compute { .. } | OpKind::Barrier => 0,
        }
    }
}

/// Specification of one operation: what it is, how long it takes, what
/// it occupies, and what must finish first.
#[derive(Debug, Clone)]
pub struct OpSpec {
    /// The operation kind (drives byte accounting and traces).
    pub kind: OpKind,
    /// How long the operation occupies its resources.
    pub duration: SimDuration,
    /// Resources acquired atomically at start and released at end.
    pub resources: Vec<ResourceId>,
    /// Operations that must complete before this one may start.
    pub deps: Vec<OpId>,
    /// Transfer classification for [`OpKind::NetTransfer`] accounting.
    pub class: Option<TransferClass>,
    /// Optional label surfaced in traces.
    pub tag: Option<&'static str>,
}

impl OpSpec {
    /// Start building an op of the given kind with zero duration, no
    /// resources and no dependencies.
    pub fn new(kind: OpKind) -> Self {
        OpSpec {
            kind,
            duration: SimDuration::ZERO,
            resources: Vec::new(),
            deps: Vec::new(),
            class: None,
            tag: None,
        }
    }

    /// Set the duration.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Occupy `r` for the whole duration (may be called repeatedly).
    pub fn uses(mut self, r: ResourceId) -> Self {
        self.resources.push(r);
        self
    }

    /// Occupy every resource in `rs`.
    pub fn uses_all(mut self, rs: impl IntoIterator<Item = ResourceId>) -> Self {
        self.resources.extend(rs);
        self
    }

    /// Require `dep` to complete first (may be called repeatedly).
    pub fn after(mut self, dep: OpId) -> Self {
        self.deps.push(dep);
        self
    }

    /// Require every op in `deps` to complete first.
    pub fn after_all(mut self, deps: impl IntoIterator<Item = OpId>) -> Self {
        self.deps.extend(deps);
        self
    }

    /// Classify a network transfer (client↔server vs server↔server).
    pub fn class(mut self, c: TransferClass) -> Self {
        self.class = Some(c);
        self
    }

    /// Attach a static label for traces.
    pub fn tag(mut self, t: &'static str) -> Self {
        self.tag = Some(t);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let spec = OpSpec::new(OpKind::Barrier)
            .duration(SimDuration::from_nanos(5))
            .uses(ResourceId(0))
            .uses(ResourceId(1))
            .after(OpId(7))
            .tag("sync");
        assert_eq!(spec.resources, vec![ResourceId(0), ResourceId(1)]);
        assert_eq!(spec.deps, vec![OpId(7)]);
        assert_eq!(spec.duration, SimDuration::from_nanos(5));
        assert_eq!(spec.tag, Some("sync"));
    }

    #[test]
    fn byte_accounting_by_kind() {
        assert_eq!(OpKind::DiskRead { node: 0, bytes: 10 }.bytes(), 10);
        assert_eq!(OpKind::Compute { node: 0, units: 99 }.bytes(), 0);
        assert_eq!(OpKind::Barrier.bytes(), 0);
        assert_eq!(
            OpKind::NetTransfer { src: 0, dst: 1, bytes: 3 }.bytes(),
            3
        );
    }
}
