//! # das-sim — deterministic discrete-event cluster simulator
//!
//! This crate is the timing substrate of the `das` workspace, the
//! reproduction of *"Dynamic Active Storage for High Performance I/O"*
//! (Chen & Chen, ICPP 2012). The paper evaluated on a 60-node Lustre
//! cluster; this crate replaces that hardware with a deterministic
//! discrete-event simulation of the quantities the paper's results
//! actually depend on:
//!
//! * **where bytes move** — disk-local reads/writes, server↔server
//!   transfers (dependence traffic), and server↔client transfers
//!   (normal I/O), each accounted separately;
//! * **resource contention** — every node has CPU, NIC and disk
//!   [`Resource`]s with finite capacity, so a storage server that must
//!   simultaneously compute offloaded kernels *and* serve neighbor
//!   requests (the effect Section IV-B.1 of the paper attributes NAS's
//!   slowdown to) is serialized exactly as on real hardware;
//! * **parallel structure** — work is described as a DAG of
//!   [`OpSpec`]s; the engine performs greedy list scheduling with
//!   all-or-nothing resource acquisition, which is deterministic and
//!   deadlock-free (no hold-and-wait).
//!
//! The simulator is purely logical: no threads, no wall-clock time, no
//! randomness. Identical inputs produce identical [`SimReport`]s.
//!
//! ## Example
//!
//! ```
//! use das_sim::{Simulator, OpSpec, OpKind, SimDuration};
//!
//! let mut sim = Simulator::new();
//! let disk = sim.add_resource("disk0", 1);
//! let nic = sim.add_resource("nic0", 1);
//!
//! // Read 1 MiB from disk, then ship it over the NIC.
//! let read = sim.add_op(
//!     OpSpec::new(OpKind::DiskRead { node: 0, bytes: 1 << 20 })
//!         .duration(SimDuration::from_micros(500))
//!         .uses(disk),
//! );
//! let send = sim.add_op(
//!     OpSpec::new(OpKind::NetTransfer { src: 0, dst: 1, bytes: 1 << 20 })
//!         .duration(SimDuration::from_micros(1_000))
//!         .uses(nic)
//!         .after(read),
//! );
//! let report = sim.run().unwrap();
//! assert_eq!(report.makespan, SimDuration::from_micros(1_500));
//! assert_eq!(report.bytes.net_total(), 1 << 20);
//! let _ = send;
//! ```


mod engine;
mod op;
mod rates;
mod report;
mod resource;
mod time;
mod trace;

pub use engine::{SimError, Simulator};
pub use op::{OpId, OpKind, OpSpec, TransferClass};
pub use rates::LinkRate;
pub use report::{ByteCounters, ResourceUsage, SimReport};
pub use resource::{Resource, ResourceId};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEntry, TraceLog};
