//! Optional execution traces for debugging and Gantt-style inspection.

use crate::op::{OpId, OpKind};
use crate::time::SimTime;

/// One executed operation: what ran and when.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// The operation.
    pub op: OpId,
    /// Kind (with byte counts / endpoints).
    pub kind: OpKind,
    /// Static label attached at construction, if any.
    pub tag: Option<&'static str>,
    /// Start instant.
    pub start: SimTime,
    /// Completion instant.
    pub finish: SimTime,
}

/// Chronological (by completion) record of every operation executed.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    entries: Vec<TraceEntry>,
}

impl TraceLog {
    pub(crate) fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// All entries, ordered by completion time.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries whose tag equals `tag`.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.tag == Some(tag))
    }

    /// Total operation time grouped by tag (untagged ops under `"-"`).
    /// Resource-seconds, not wall time: concurrent ops both count.
    /// The per-phase view behind "where did this scheme spend its
    /// time".
    pub fn time_by_tag(&self) -> std::collections::BTreeMap<&'static str, crate::SimDuration> {
        let mut out = std::collections::BTreeMap::new();
        for e in &self.entries {
            let dur = e.finish.since(e.start);
            *out.entry(e.tag.unwrap_or("-"))
                .or_insert(crate::SimDuration::ZERO) += dur;
        }
        out
    }

    /// Render a text Gantt chart: one lane per (node, activity class),
    /// `width` characters across the full makespan. Overlapping ops in
    /// a lane merge (a lane shows *busy* intervals). Useful for
    /// eyeballing where a scheme's time goes:
    ///
    /// ```text
    /// node 0 cpu  |████··████████···|
    /// node 0 net  |··██··········██·|
    /// ```
    pub fn render_gantt(&self, width: usize) -> String {
        use crate::op::OpKind;
        use std::collections::BTreeMap;

        let width = width.max(10);
        let end = self
            .entries
            .iter()
            .map(|e| e.finish.as_nanos())
            .max()
            .unwrap_or(0);
        if end == 0 {
            return String::from("(empty trace)\n");
        }

        // (node, class) → busy cells.
        let mut lanes: BTreeMap<(u32, &'static str), Vec<bool>> = BTreeMap::new();
        let cell = |t: u64| ((t as u128 * width as u128) / (end as u128 + 1)) as usize;
        for e in &self.entries {
            let targets: Vec<(u32, &'static str)> = match e.kind {
                OpKind::Compute { node, .. } => vec![(node, "cpu ")],
                OpKind::DiskRead { node, .. } | OpKind::DiskWrite { node, .. } => {
                    vec![(node, "disk")]
                }
                OpKind::NetTransfer { src, dst, .. } => vec![(src, "net "), (dst, "net ")],
                OpKind::Barrier => continue,
            };
            let (a, b) = (cell(e.start.as_nanos()), cell(e.finish.as_nanos()));
            for key in targets {
                let lane = lanes.entry(key).or_insert_with(|| vec![false; width]);
                for c in &mut lane[a..=b.min(width - 1)] {
                    *c = true;
                }
            }
        }

        let mut out = String::new();
        for ((node, class), lane) in lanes {
            out.push_str(&format!("node {node:>3} {class} |"));
            for busy in lane {
                out.push(if busy { '█' } else { '·' });
            }
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_by_tag_sums_resource_seconds() {
        let mut log = TraceLog::default();
        for (tag, start, finish) in
            [(Some("read"), 0u64, 10u64), (Some("read"), 5, 25), (None, 0, 7)]
        {
            log.push(TraceEntry {
                op: OpId(0),
                kind: OpKind::Barrier,
                tag,
                start: SimTime::from_nanos(start),
                finish: SimTime::from_nanos(finish),
            });
        }
        let by_tag = log.time_by_tag();
        assert_eq!(by_tag["read"], crate::SimDuration::from_nanos(30));
        assert_eq!(by_tag["-"], crate::SimDuration::from_nanos(7));
    }

    #[test]
    fn gantt_renders_lanes_and_gaps() {
        let mut log = TraceLog::default();
        log.push(TraceEntry {
            op: OpId(0),
            kind: OpKind::Compute { node: 0, units: 1 },
            tag: None,
            start: SimTime::from_nanos(0),
            finish: SimTime::from_nanos(50),
        });
        log.push(TraceEntry {
            op: OpId(1),
            kind: OpKind::NetTransfer { src: 0, dst: 1, bytes: 8 },
            tag: None,
            start: SimTime::from_nanos(50),
            finish: SimTime::from_nanos(100),
        });
        let chart = log.render_gantt(20);
        assert!(chart.contains("node   0 cpu "));
        assert!(chart.contains("node   0 net "));
        assert!(chart.contains("node   1 net "));
        // The cpu lane is busy early and idle late; net the reverse.
        let cpu_line = chart.lines().find(|l| l.contains("cpu")).unwrap();
        assert!(cpu_line.contains('█') && cpu_line.contains('·'));
        assert_eq!(chart.lines().count(), 3);
    }

    #[test]
    fn gantt_handles_empty_trace() {
        assert_eq!(TraceLog::default().render_gantt(40), "(empty trace)\n");
    }

    #[test]
    fn tag_filter_selects() {
        let mut log = TraceLog::default();
        log.push(TraceEntry {
            op: OpId(0),
            kind: OpKind::Barrier,
            tag: Some("x"),
            start: SimTime::ZERO,
            finish: SimTime::ZERO,
        });
        log.push(TraceEntry {
            op: OpId(1),
            kind: OpKind::Barrier,
            tag: Some("y"),
            start: SimTime::ZERO,
            finish: SimTime::ZERO,
        });
        assert_eq!(log.with_tag("x").count(), 1);
        assert_eq!(log.entries().len(), 2);
    }
}
