//! The discrete-event scheduling engine.
//!
//! The engine performs *greedy list scheduling* over the operation DAG:
//! an operation becomes *ready* when all of its dependencies have
//! completed, and *starts* at the earliest instant at which every one of
//! its resources has a free slot. Ready operations are considered in
//! FIFO order of becoming ready (ties broken by creation order), with
//! skipping: a blocked operation does not prevent a later ready
//! operation that only needs free resources from starting. Acquisition
//! is all-or-nothing, so there is no hold-and-wait and therefore no
//! deadlock.
//!
//! The schedule is fully deterministic: same ops, same report.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::fmt;

use crate::op::{OpId, OpSpec};
use crate::report::{ByteCounters, ResourceUsage, SimReport};
use crate::resource::{Resource, ResourceId};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEntry, TraceLog};

/// Errors surfaced by [`Simulator::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Ready operations remain but none can ever acquire its resources.
    /// With per-op resource deduplication this cannot happen in
    /// practice; it is kept as a defensive invariant check.
    Stuck {
        /// Operations that were ready but unschedulable.
        ready: Vec<OpId>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stuck { ready } => {
                write!(f, "simulation stuck with {} unschedulable ops", ready.len())
            }
        }
    }
}

impl std::error::Error for SimError {}

struct OpState {
    spec: OpSpec,
    unmet_deps: u32,
    dependents: Vec<OpId>,
    start: Option<SimTime>,
    finish: Option<SimTime>,
}

/// A deterministic discrete-event simulator over resources and an
/// operation DAG. See the crate docs for an end-to-end example.
pub struct Simulator {
    resources: Vec<Resource>,
    ops: Vec<OpState>,
    trace: Option<TraceLog>,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Create an empty simulator.
    pub fn new() -> Self {
        Simulator {
            resources: Vec::new(),
            ops: Vec::new(),
            trace: None,
        }
    }

    /// Record a [`TraceLog`] during [`run`](Self::run); retrieve it from
    /// the report.
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceLog::default());
    }

    /// Register a resource with the given concurrency `capacity`.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: u32) -> ResourceId {
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(Resource::new(name, capacity));
        id
    }

    /// Add an operation to the DAG and return its id.
    ///
    /// Duplicate resources in the spec are collapsed (an op needs one
    /// slot per *distinct* resource). Dependencies must refer to ops
    /// added earlier, which makes the DAG acyclic by construction.
    ///
    /// # Panics
    /// Panics if a dependency or resource id does not exist.
    pub fn add_op(&mut self, mut spec: OpSpec) -> OpId {
        let id = OpId(u32::try_from(self.ops.len()).expect("too many ops"));
        for dep in &spec.deps {
            assert!(
                dep.0 < id.0,
                "op {:?} depends on not-yet-added op {:?}",
                id,
                dep
            );
        }
        for r in &spec.resources {
            assert!(
                (r.0 as usize) < self.resources.len(),
                "op {:?} uses unknown resource {:?}",
                id,
                r
            );
        }
        spec.resources.sort_unstable();
        spec.resources.dedup();
        spec.deps.sort_unstable();
        spec.deps.dedup();
        let unmet = u32::try_from(spec.deps.len()).expect("too many deps");
        self.ops.push(OpState {
            spec,
            unmet_deps: unmet,
            dependents: Vec::new(),
            start: None,
            finish: None,
        });
        id
    }

    /// Number of operations added so far.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// A position marker for [`ops_since`](Self::ops_since): captures
    /// the current op count so a caller composing several work streams
    /// into one DAG can later refer to "everything added after here".
    pub fn mark(&self) -> usize {
        self.ops.len()
    }

    /// Ids of every op added since `mark` (e.g. to hang a completion
    /// barrier over one job's operations in a multi-job simulation).
    pub fn ops_since(&self, mark: usize) -> Vec<OpId> {
        (mark..self.ops.len()).map(|i| OpId(i as u32)).collect()
    }

    /// Execute the DAG to completion and report timing and data
    /// movement. Consumes the schedule state; a `Simulator` is
    /// single-shot.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        // Build reverse edges.
        for i in 0..self.ops.len() {
            let deps = self.ops[i].spec.deps.clone();
            for d in deps {
                self.ops[d.index()].dependents.push(OpId(i as u32));
            }
        }

        // Scheduling state. Blocked-but-ready ops are indexed by every
        // resource they need, so each event only re-examines ops that
        // a freed resource could actually unblock — the scan is
        // O(affected ops), not O(all waiting ops). An op blocked on
        // resource X can only become startable after X releases a
        // slot, so the index is complete.
        let mut ready_seq: u64 = 0;
        // Ops ready but blocked, keyed (seq, op) per needed resource.
        let mut waiting_on: Vec<BTreeSet<(u64, OpId)>> =
            vec![BTreeSet::new(); self.resources.len()];
        let mut is_waiting: Vec<bool> = vec![false; self.ops.len()];

        // Completion event heap: (finish_time, seq, op).
        let mut events: BinaryHeap<Reverse<(SimTime, u64, OpId)>> = BinaryHeap::new();
        let mut event_seq: u64 = 0;

        let mut busy: Vec<SimDuration> = vec![SimDuration::ZERO; self.resources.len()];
        let mut bytes = ByteCounters::default();
        let mut makespan = SimTime::ZERO;
        let mut completed: usize = 0;
        let mut now = SimTime::ZERO;

        // Candidates for the next start pass, ordered by ready seq.
        let mut candidates: BTreeSet<(u64, OpId)> = BTreeSet::new();
        for (i, op) in self.ops.iter().enumerate() {
            if op.unmet_deps == 0 {
                candidates.insert((ready_seq, OpId(i as u32)));
                ready_seq += 1;
            }
        }

        loop {
            // Start every candidate whose resources are all free; park
            // the rest in the per-resource wait index.
            for (seq, op_id) in std::mem::take(&mut candidates) {
                if self.ops[op_id.index()].start.is_some() {
                    continue; // started by an earlier pass
                }
                let can_start = self.ops[op_id.index()]
                    .spec
                    .resources
                    .iter()
                    .all(|r| self.resources[r.index()].has_slot());
                if !can_start {
                    if !is_waiting[op_id.index()] {
                        is_waiting[op_id.index()] = true;
                        for r in &self.ops[op_id.index()].spec.resources {
                            waiting_on[r.index()].insert((seq, op_id));
                        }
                    }
                    continue;
                }
                if is_waiting[op_id.index()] {
                    is_waiting[op_id.index()] = false;
                    for r in &self.ops[op_id.index()].spec.resources {
                        waiting_on[r.index()].remove(&(seq, op_id));
                    }
                }
                let dur = {
                    let op = &mut self.ops[op_id.index()];
                    op.start = Some(now);
                    op.spec.duration
                };
                let resources = self.ops[op_id.index()].spec.resources.clone();
                for r in &resources {
                    self.resources[r.index()].acquire();
                    busy[r.index()] += dur;
                    // Ops waiting on a resource we just filled cannot
                    // start now, but they stay indexed for the next
                    // release — nothing to do here.
                }
                events.push(Reverse((now + dur, event_seq, op_id)));
                event_seq += 1;
            }

            // Pull the next completion; if none, we are done (or stuck).
            let Some(Reverse((t, _, first))) = events.pop() else {
                break;
            };
            now = t;
            let mut finished = vec![first];
            // Drain all completions at the same instant so the next
            // start pass sees every slot freed at `now`.
            while let Some(&Reverse((t2, _, _))) = events.peek() {
                if t2 == now {
                    let Reverse((_, _, op)) = events.pop().expect("peeked");
                    finished.push(op);
                } else {
                    break;
                }
            }

            for op_id in finished {
                let (kind, class, tag, start, resources) = {
                    let op = &mut self.ops[op_id.index()];
                    op.finish = Some(now);
                    (
                        op.spec.kind.clone(),
                        op.spec.class,
                        op.spec.tag,
                        op.start.expect("finished op has start"),
                        op.spec.resources.clone(),
                    )
                };
                for r in &resources {
                    self.resources[r.index()].release();
                    // Everything blocked on this resource becomes a
                    // candidate for the next start pass.
                    for &entry in &waiting_on[r.index()] {
                        candidates.insert(entry);
                    }
                }
                bytes.record(&kind, class);
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEntry {
                        op: op_id,
                        kind: kind.clone(),
                        tag,
                        start,
                        finish: now,
                    });
                }
                makespan = makespan.max(now);
                completed += 1;

                let dependents = self.ops[op_id.index()].dependents.clone();
                for dep in dependents {
                    let d = &mut self.ops[dep.index()];
                    d.unmet_deps -= 1;
                    if d.unmet_deps == 0 {

                        candidates.insert((ready_seq, dep));
                        ready_seq += 1;
                    }
                }
            }
        }


        if completed != self.ops.len() {
            // All deps are acyclic by construction and ops need one slot
            // per distinct resource, so this indicates an engine bug.
            let stuck: Vec<OpId> = is_waiting
                .iter()
                .enumerate()
                .filter(|&(_, &w)| w)
                .map(|(i, _)| OpId(i as u32))
                .collect();
            return Err(SimError::Stuck { ready: stuck });
        }

        let critical_path = self.critical_path();
        let usage = self
            .resources
            .iter()
            .zip(busy)
            .map(|(r, b)| ResourceUsage {
                name: r.name.clone(),
                capacity: r.capacity,
                busy: b,
            })
            .collect();

        Ok(SimReport {
            makespan: makespan.since(SimTime::ZERO),
            critical_path,
            op_count: self.ops.len(),
            resources: usage,
            bytes,
            trace: self.trace,
        })
    }

    /// Longest dependency chain through the DAG, ignoring resource
    /// contention — a lower bound on the makespan.
    fn critical_path(&self) -> SimDuration {
        let mut longest: Vec<SimDuration> = vec![SimDuration::ZERO; self.ops.len()];
        let mut best = SimDuration::ZERO;
        for (i, op) in self.ops.iter().enumerate() {
            let start: SimDuration = op
                .spec
                .deps
                .iter()
                .map(|d| longest[d.index()])
                .max()
                .unwrap_or(SimDuration::ZERO);
            longest[i] = start + op.spec.duration;
            best = best.max(longest[i]);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpKind, TransferClass};

    fn compute(node: u32, d: u64) -> OpSpec {
        OpSpec::new(OpKind::Compute { node, units: 1 }).duration(SimDuration::from_nanos(d))
    }

    #[test]
    fn empty_simulation_reports_zero() {
        let report = Simulator::new().run().unwrap();
        assert_eq!(report.makespan, SimDuration::ZERO);
        assert_eq!(report.op_count, 0);
    }

    #[test]
    fn serial_chain_sums_durations() {
        let mut sim = Simulator::new();
        let cpu = sim.add_resource("cpu", 1);
        let a = sim.add_op(compute(0, 10).uses(cpu));
        let b = sim.add_op(compute(0, 20).uses(cpu).after(a));
        let _c = sim.add_op(compute(0, 30).uses(cpu).after(b));
        let report = sim.run().unwrap();
        assert_eq!(report.makespan, SimDuration::from_nanos(60));
        assert_eq!(report.critical_path, SimDuration::from_nanos(60));
    }

    #[test]
    fn independent_ops_run_in_parallel_up_to_capacity() {
        // Four 10ns ops on a capacity-2 resource: two waves of two.
        let mut sim = Simulator::new();
        let cpu = sim.add_resource("cpu", 2);
        for _ in 0..4 {
            sim.add_op(compute(0, 10).uses(cpu));
        }
        let report = sim.run().unwrap();
        assert_eq!(report.makespan, SimDuration::from_nanos(20));
        // Critical path ignores contention.
        assert_eq!(report.critical_path, SimDuration::from_nanos(10));
    }

    #[test]
    fn fifo_with_skip_lets_unblocked_ops_pass() {
        // op0 occupies cpu for 100; op1 (ready second) needs cpu; op2
        // needs only the nic and must not wait behind op1.
        let mut sim = Simulator::new();
        let cpu = sim.add_resource("cpu", 1);
        let nic = sim.add_resource("nic", 1);
        let _hog = sim.add_op(compute(0, 100).uses(cpu));
        let _blocked = sim.add_op(compute(0, 10).uses(cpu));
        let free = sim.add_op(
            OpSpec::new(OpKind::NetTransfer { src: 0, dst: 1, bytes: 8 })
                .duration(SimDuration::from_nanos(5))
                .uses(nic)
                .class(TransferClass::ClientServer),
        );
        let mut sim2 = Simulator::new();
        // Rebuild with trace to inspect start times.
        let cpu2 = sim2.add_resource("cpu", 1);
        let nic2 = sim2.add_resource("nic", 1);
        sim2.enable_trace();
        let _ = sim2.add_op(compute(0, 100).uses(cpu2));
        let _ = sim2.add_op(compute(0, 10).uses(cpu2));
        let free2 = sim2.add_op(
            OpSpec::new(OpKind::NetTransfer { src: 0, dst: 1, bytes: 8 })
                .duration(SimDuration::from_nanos(5))
                .uses(nic2)
                .class(TransferClass::ClientServer),
        );
        let report = sim2.run().unwrap();
        let trace = report.trace.as_ref().unwrap();
        let entry = trace.entries().iter().find(|e| e.op == free2).unwrap();
        assert_eq!(entry.start, SimTime::ZERO, "nic op must not queue behind cpu");
        assert_eq!(report.makespan, SimDuration::from_nanos(110));
        let _ = (free, cpu, nic);
    }

    #[test]
    fn multi_resource_ops_acquire_atomically() {
        // A transfer occupying both NICs overlaps with nothing on either.
        let mut sim = Simulator::new();
        let nic0 = sim.add_resource("nic0", 1);
        let nic1 = sim.add_resource("nic1", 1);
        let t01 = sim.add_op(
            OpSpec::new(OpKind::NetTransfer { src: 0, dst: 1, bytes: 1 })
                .duration(SimDuration::from_nanos(10))
                .uses(nic0)
                .uses(nic1),
        );
        let _t10 = sim.add_op(
            OpSpec::new(OpKind::NetTransfer { src: 1, dst: 0, bytes: 1 })
                .duration(SimDuration::from_nanos(10))
                .uses(nic0)
                .uses(nic1),
        );
        let report = sim.run().unwrap();
        assert_eq!(report.makespan, SimDuration::from_nanos(20));
        let _ = t01;
    }

    #[test]
    fn byte_counters_split_by_class() {
        let mut sim = Simulator::new();
        let nic = sim.add_resource("nic", 4);
        sim.add_op(
            OpSpec::new(OpKind::NetTransfer { src: 0, dst: 1, bytes: 100 })
                .uses(nic)
                .class(TransferClass::ClientServer),
        );
        sim.add_op(
            OpSpec::new(OpKind::NetTransfer { src: 1, dst: 2, bytes: 40 })
                .uses(nic)
                .class(TransferClass::ServerServer),
        );
        sim.add_op(OpSpec::new(OpKind::DiskRead { node: 0, bytes: 7 }));
        sim.add_op(OpSpec::new(OpKind::DiskWrite { node: 0, bytes: 3 }));
        let report = sim.run().unwrap();
        assert_eq!(report.bytes.net_client_server, 100);
        assert_eq!(report.bytes.net_server_server, 40);
        assert_eq!(report.bytes.disk_read, 7);
        assert_eq!(report.bytes.disk_write, 3);
        assert_eq!(report.bytes.net_total(), 140);
    }

    #[test]
    fn zero_duration_ops_complete_immediately() {
        let mut sim = Simulator::new();
        let a = sim.add_op(OpSpec::new(OpKind::Barrier));
        let b = sim.add_op(OpSpec::new(OpKind::Barrier).after(a));
        let _ = b;
        let report = sim.run().unwrap();
        assert_eq!(report.makespan, SimDuration::ZERO);
        assert_eq!(report.op_count, 2);
    }

    #[test]
    fn duplicate_resources_collapse() {
        // An op listing the same resource twice needs one slot, not two.
        let mut sim = Simulator::new();
        let r = sim.add_resource("r", 1);
        sim.add_op(compute(0, 5).uses(r).uses(r));
        let report = sim.run().unwrap();
        assert_eq!(report.makespan, SimDuration::from_nanos(5));
    }

    #[test]
    fn resource_busy_time_accumulates() {
        let mut sim = Simulator::new();
        let cpu = sim.add_resource("cpu", 1);
        sim.add_op(compute(0, 10).uses(cpu));
        sim.add_op(compute(0, 15).uses(cpu));
        let report = sim.run().unwrap();
        assert_eq!(report.resources[0].busy, SimDuration::from_nanos(25));
        assert!((report.resources[0].utilization(report.makespan) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "depends on not-yet-added")]
    fn forward_dependency_rejected() {
        let mut sim = Simulator::new();
        sim.add_op(OpSpec::new(OpKind::Barrier).after(OpId(5)));
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_rejected() {
        let mut sim = Simulator::new();
        sim.add_op(OpSpec::new(OpKind::Barrier).uses(ResourceId(3)));
    }

    #[test]
    fn diamond_dag_critical_path() {
        //    a(10)
        //   /     \
        // b(5)   c(20)
        //   \     /
        //    d(1)
        let mut sim = Simulator::new();
        let a = sim.add_op(compute(0, 10));
        let b = sim.add_op(compute(0, 5).after(a));
        let c = sim.add_op(compute(0, 20).after(a));
        let _d = sim.add_op(compute(0, 1).after(b).after(c));
        let report = sim.run().unwrap();
        assert_eq!(report.critical_path, SimDuration::from_nanos(31));
        assert_eq!(report.makespan, SimDuration::from_nanos(31));
    }
}
