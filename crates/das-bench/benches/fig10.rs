//! Fig. 10 — Comparison of Execution Time for NAS and TS Schemes.
//!
//! The paper's first experiment (24 nodes, 12 storage + 12 compute;
//! data 24–60 GB, here 24–60 MiB): existing active storage (NAS) is
//! *slower* than traditional storage on dependence-heavy kernels,
//! because of strip re-fetching and request-service load.

use das_bench::{header, improvement_pct, row, FIG_SEED, PAPER_SIZES, TABLE1_KERNELS};
use das_runtime::{size_sweep, ClusterConfig, SchemeKind};

fn main() {
    let cfg = ClusterConfig::paper_default(); // 12 + 12 nodes
    header(
        "Fig. 10 — execution time, NAS vs TS (24 nodes, 12 storage)",
        "size (MiB)",
    );

    let mut nas_slower_everywhere = true;
    for kernel in TABLE1_KERNELS {
        for &mib in &PAPER_SIZES {
            let nas = &size_sweep(&cfg, SchemeKind::Nas, kernel, &[mib], FIG_SEED)[0].report;
            let ts = &size_sweep(&cfg, SchemeKind::Ts, kernel, &[mib], FIG_SEED)[0].report;
            row(mib, nas);
            row(mib, ts);
            let pct = improvement_pct(nas.exec_secs(), ts.exec_secs());
            println!(
                "{:<14} -> TS faster than NAS by {pct:.1}% (paper: NAS \"much lower than TS\")",
                ""
            );
            if ts.exec_secs() >= nas.exec_secs() {
                nas_slower_everywhere = false;
            }
        }
        println!();
    }
    assert!(
        nas_slower_everywhere,
        "paper shape violated: NAS must be slower than TS at every point"
    );
    println!("shape check: NAS slower than TS at every (kernel, size) point ✔");
}
