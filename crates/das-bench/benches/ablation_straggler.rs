//! Ablation A9 — straggler sensitivity.
//!
//! One storage server runs at a fraction of full speed (thermal
//! throttling, a failing disk's retries, a noisy co-tenant — routine
//! on real clusters). The measured shape: **offloading pins work to
//! data**, so both NAS's and DAS's makespans stretch with the slowest
//! server, while TS — computing on the healthy clients — is immune.
//! Throttle far enough and TS overtakes DAS, a regime the paper's
//! placement-arithmetic decision rule cannot see: it argues for the
//! *load-managed* active storage of Wickremesinghe et al. (the
//! paper's own citation [30]) as a complement to dependence-aware
//! placement.

use das_bench::FIG_SEED;
use das_runtime::{size_sweep, ClusterConfig, SchemeKind};

fn main() {
    println!("\n================================================================");
    println!("Ablation A9 — one slow storage server (flow-routing, 24 MiB)");
    println!("================================================================");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "server0 speed", "NAS (s)", "DAS (s)", "TS (s)", "NAS slowdn", "DAS slowdn"
    );

    let mut base: Option<(f64, f64)> = None;
    for speed in [1.0f64, 0.75, 0.5, 0.25] {
        let mut cfg = ClusterConfig::paper_default();
        if speed < 1.0 {
            // Server 0 throttled; the rest at full speed.
            let mut speeds = vec![1.0; cfg.storage_nodes as usize];
            speeds[0] = speed;
            cfg.server_speed = Some(speeds);
        }
        let nas = &size_sweep(&cfg, SchemeKind::Nas, "flow-routing", &[24], FIG_SEED)[0].report;
        let das = &size_sweep(&cfg, SchemeKind::Das, "flow-routing", &[24], FIG_SEED)[0].report;
        let ts = &size_sweep(&cfg, SchemeKind::Ts, "flow-routing", &[24], FIG_SEED)[0].report;
        let (nas0, das0) = *base.get_or_insert((nas.exec_secs(), das.exec_secs()));
        println!(
            "{:<14} {:>12.4} {:>12.4} {:>12.4} {:>11.2}x {:>11.2}x",
            format!("{speed:.2}x"),
            nas.exec_secs(),
            das.exec_secs(),
            ts.exec_secs(),
            nas.exec_secs() / nas0,
            das.exec_secs() / das0,
        );
    }

    println!("\nobservation: offloaded work is pinned to the data, so a straggling");
    println!("server stretches NAS and DAS alike (the slow node's strips set the");
    println!("makespan), while TS on the healthy clients is flat. Throttled far");
    println!("enough, TS overtakes DAS — a blind spot of any decision rule that");
    println!("only sees placement, arguing for load-aware offloading (the");
    println!("paper's citation [30]) on top of dependence-aware placement.");
}
