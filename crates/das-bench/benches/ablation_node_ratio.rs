//! Ablation A3 — storage:compute node ratio.
//!
//! The paper fixes the ratio at 1:1 "so NAS, DAS and TS would have the
//! same computation capability". This sweep frees that choice at a
//! fixed 24-node budget: TS benefits from more compute nodes, active
//! storage from more storage nodes — quantifying how much of DAS's win
//! is architecture and how much is node placement.

use das_bench::{improvement_pct, FIG_SEED};
use das_kernels::kernel_by_name;
use das_runtime::{run_scheme, sweep::figure_workload, ClusterConfig, SchemeKind};

fn main() {
    let input = figure_workload(24, FIG_SEED);
    let kernel = kernel_by_name("flow-routing").unwrap();

    println!("\n================================================================");
    println!("Ablation A3 — storage:compute ratio (24 nodes total, 24 MiB)");
    println!("================================================================");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>14}",
        "storage:compute", "NAS (s)", "DAS (s)", "TS (s)", "DAS vs TS (%)"
    );

    for (d, c) in [(6u32, 18u32), (8, 16), (12, 12), (16, 8), (18, 6)] {
        let mut cfg = ClusterConfig::paper_default();
        cfg.storage_nodes = d;
        cfg.compute_nodes = c;
        let nas = run_scheme(&cfg, SchemeKind::Nas, kernel.as_ref(), &input);
        let das = run_scheme(&cfg, SchemeKind::Das, kernel.as_ref(), &input);
        let ts = run_scheme(&cfg, SchemeKind::Ts, kernel.as_ref(), &input);
        assert_eq!(nas.output_fingerprint, ts.output_fingerprint);
        assert_eq!(das.output_fingerprint, ts.output_fingerprint);
        println!(
            "{:<16} {:>12.4} {:>12.4} {:>12.4} {:>14.1}",
            format!("{d}:{c}"),
            nas.exec_secs(),
            das.exec_secs(),
            ts.exec_secs(),
            improvement_pct(ts.exec_secs(), das.exec_secs()),
        );
    }
    println!("\nobservation: active storage gains as the storage share grows (its");
    println!("compute lives there); TS prefers compute-heavy splits. At the");
    println!("paper's 1:1 split every scheme has equal compute capability.");
}
