//! Table I — Description of Data Analysis Kernels.
//!
//! Regenerates the paper's kernel inventory, extended with the
//! dependence pattern (from the Kernel Features descriptors), the
//! calibrated per-element cost, and a functional self-check of each
//! kernel on a small raster.

use das_bench::TABLE1_KERNELS;
use das_core::FeatureRegistry;
use das_kernels::{kernel_by_name, kernel_names, workload};

fn describe(name: &str) -> &'static str {
    match name {
        "flow-routing" => {
            "Basic operation of terrain analysis (GIS): spatial patterns from \
             the maximum number of downslope cells flow can be directed to"
        }
        "flow-accumulation" => {
            "Terrain analysis (GIS): accumulated weight of all cells flowing \
             into each downslope cell of the output raster"
        }
        "gaussian-filter" => {
            "Signal / medical image processing: smooths the raw input into a \
             same-size output raster"
        }
        "median-filter" => "Medical image processing: impulse-noise removal (extension)",
        "slope-analysis" => "Terrain analysis: steepest-descent surface slope (extension)",
        "sobel-edge" => "Image processing: Sobel gradient-magnitude edge detection (extension)",
        "gaussian-filter-5x5" => {
            "Image processing: radius-2 smoothing — 24 dependence offsets \
             spanning two rows each way (extension)"
        }
        "local-variance" => "Texture analysis: 3x3 windowed variance (extension)",
        "laplacian-4" => "4-neighbor (von Neumann) Laplacian — the paper's other common pattern (extension)",
        "pointwise-scale" => {
            "Dependence-free affine transform — the paper's ideal offloading case (extension)"
        }
        _ => "",
    }
}

fn main() {
    println!("\nTABLE I — DESCRIPTION OF DATA ANALYSIS KERNELS");
    println!("{}", "=".repeat(72));

    let registry = FeatureRegistry::with_builtin();
    let probe = workload::fbm_dem(64, 64, 1);

    for &name in kernel_names() {
        let kernel = kernel_by_name(name).expect("registered");
        let features = registry.get(name).expect("descriptor");
        let paper = if TABLE1_KERNELS.contains(&name) { "(paper Table I)" } else { "(extension)" };
        println!("\n{name} {paper}");
        println!("  {}", describe(name));
        println!(
            "  dependence: {} offsets, pattern {:?} at width 64",
            features.dependence.len(),
            features.offsets(64),
        );
        println!("  calibrated cost: {} ns/element", kernel.cost_per_element());

        // Self-check: the kernel runs and matches its descriptor.
        let out = kernel.apply(&probe);
        assert_eq!(out.cells(), probe.cells());
        let mut a = features.offsets(64);
        let mut b = kernel.dependence_offsets(64);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{name}: descriptor matches implementation");
        println!("  self-check: output {}x{}, descriptor consistent ✔", out.width(), out.height());
    }
    println!();
}
