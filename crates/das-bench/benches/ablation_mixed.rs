//! Ablation A8 — mixed workloads: the externality of each scheme.
//!
//! Production clusters run jobs concurrently; the paper evaluates one
//! at a time. This sweep co-runs a fixed "victim" TS job with a
//! neighbor served by each scheme and measures how much the neighbor's
//! choice of scheme costs the victim — DAS's freed network is worth
//! real time to everyone else on the cluster.

use das_bench::FIG_SEED;
use das_kernels::{FlowRouting, GaussianFilter};
use das_runtime::{run_mixed, run_scheme, sweep::figure_workload, ClusterConfig, JobSpec,
    SchemeKind};

fn main() {
    let cfg = ClusterConfig::paper_default();
    let victim_input = figure_workload(24, FIG_SEED);
    let neighbor_input = figure_workload(24, FIG_SEED + 1);

    println!("\n================================================================");
    println!("Ablation A8 — mixed workloads (24 MiB victim TS job + neighbor)");
    println!("================================================================");

    let solo = run_scheme(&cfg, SchemeKind::Ts, &GaussianFilter, &victim_input);
    println!(
        "{:<22} {:>14} {:>14} {:>16}",
        "neighbor scheme", "victim TS (s)", "neighbor (s)", "victim slowdown"
    );
    println!(
        "{:<22} {:>14.4} {:>14} {:>16}",
        "(none — solo)",
        solo.exec_secs(),
        "-",
        "1.00x"
    );

    let mut victim_times = Vec::new();
    for neighbor in [SchemeKind::Das, SchemeKind::Ts, SchemeKind::Nas] {
        let report = run_mixed(
            &cfg,
            &[
                JobSpec { scheme: SchemeKind::Ts, kernel: &GaussianFilter, input: &victim_input },
                JobSpec { scheme: neighbor, kernel: &FlowRouting, input: &neighbor_input },
            ],
        );
        let victim = report.jobs[0].completion.as_secs_f64();
        let other = report.jobs[1].completion.as_secs_f64();
        println!(
            "{:<22} {:>14.4} {:>14.4} {:>15.2}x",
            neighbor.name(),
            victim,
            other,
            victim / solo.exec_secs(),
        );
        victim_times.push((neighbor, victim));
    }

    let das_victim = victim_times[0].1;
    let ts_victim = victim_times[1].1;
    let nas_victim = victim_times[2].1;
    assert!(
        das_victim < ts_victim && das_victim < nas_victim,
        "a DAS neighbor must be the cheapest to co-run with"
    );
    println!("\nobservation: offloading is not only faster for the job that");
    println!("offloads — it returns network and client CPU to everyone else.");
    println!("The DAS neighbor costs the victim the least by a clear margin.");
}
