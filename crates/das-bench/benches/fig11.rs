//! Fig. 11 — Comparison of Execution Time for NAS, DAS and TS Schemes.
//!
//! 24 size units (GB→MiB), 24 nodes (12 storage + 12 compute). The
//! paper's headline: DAS achieves the best performance, with over 30%
//! improvement over TS and 60% over NAS.

use das_bench::{header, improvement_pct, row, FIG_SEED, TABLE1_KERNELS};
use das_runtime::{size_sweep, ClusterConfig, SchemeKind};

fn main() {
    let cfg = ClusterConfig::paper_default();
    let mib = 24;
    header("Fig. 11 — execution time, NAS / DAS / TS (24 MiB, 24 nodes)", "");

    for kernel in TABLE1_KERNELS {
        let nas = &size_sweep(&cfg, SchemeKind::Nas, kernel, &[mib], FIG_SEED)[0].report;
        let das = &size_sweep(&cfg, SchemeKind::Das, kernel, &[mib], FIG_SEED)[0].report;
        let ts = &size_sweep(&cfg, SchemeKind::Ts, kernel, &[mib], FIG_SEED)[0].report;
        row("", nas);
        row("", das);
        row("", ts);
        assert_eq!(nas.output_fingerprint, das.output_fingerprint);
        assert_eq!(ts.output_fingerprint, das.output_fingerprint);

        let vs_ts = improvement_pct(ts.exec_secs(), das.exec_secs());
        let vs_nas = improvement_pct(nas.exec_secs(), das.exec_secs());
        println!(
            "  -> DAS improvement: {vs_ts:.1}% over TS (paper: >30%), \
             {vs_nas:.1}% over NAS (paper: ~60%)\n"
        );
        assert!(
            das.exec_secs() < ts.exec_secs() && ts.exec_secs() < nas.exec_secs(),
            "{kernel}: expected DAS < TS < NAS"
        );
    }
    println!("shape check: DAS fastest, NAS slowest, on every kernel ✔");
}
