//! Criterion micro-benchmarks of the building blocks: the bandwidth
//! predictor, the distribution planner, layout mapping, descriptor
//! parsing, the analysis kernels, and the discrete-event engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use das_core::{plan_distribution, KernelFeatures, OffsetExpr, PlanOptions, StripingParams};
use das_kernels::{workload, FlowRouting, GaussianFilter, Kernel};
use das_pfs::{Layout, LayoutPolicy, StripId};
use das_sim::{OpKind, OpSpec, SimDuration, Simulator};

fn eight(w: i64) -> Vec<i64> {
    vec![-w + 1, -w, -w - 1, -1, 1, w - 1, w, w + 1]
}

fn bench_predictor(c: &mut Criterion) {
    let params = StripingParams {
        element_size: 4,
        strip_size: 64 * 1024,
        layout: Layout::new(LayoutPolicy::GroupedReplicated { group: 8 }, 12),
    };
    let offsets = eight(2048);
    // 60 MiB file: the largest figure size.
    c.bench_function("predict_file_60MiB", |b| {
        b.iter(|| black_box(params.predict_file(black_box(&offsets), 60 << 20)))
    });
    c.bench_function("predict_nas_fetches_60MiB", |b| {
        b.iter(|| black_box(params.predict_nas_fetches(black_box(&offsets), 60 << 20)))
    });
}

fn bench_planner(c: &mut Criterion) {
    let offsets = eight(2048);
    c.bench_function("plan_distribution_60MiB", |b| {
        b.iter(|| {
            black_box(plan_distribution(
                black_box(&offsets),
                4,
                64 * 1024,
                12,
                60 << 20,
                PlanOptions::default(),
            ))
        })
    });
}

fn bench_layout(c: &mut Criterion) {
    let layout = Layout::new(LayoutPolicy::GroupedReplicated { group: 8 }, 12);
    c.bench_function("layout_holders_1k_strips", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for s in 0..1_000u64 {
                acc += layout.holders(StripId(s)).len() as u64;
            }
            black_box(acc)
        })
    });
}

fn bench_descriptors(c: &mut Criterion) {
    let text = "Name:flow-routing\nDependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1, imgWidth-1, imgWidth, imgWidth+1";
    c.bench_function("parse_descriptor_record", |b| {
        b.iter(|| black_box(KernelFeatures::parse_text(black_box(text)).unwrap()))
    });
    let expr = "-(2*imgWidth+1)-imgWidth*3";
    c.bench_function("parse_offset_expression", |b| {
        b.iter(|| black_box(OffsetExpr::parse(black_box(expr)).unwrap()))
    });
}

fn bench_kernels(c: &mut Criterion) {
    let dem = workload::fbm_dem(256, 256, 42);
    c.bench_function("flow_routing_256sq", |b| {
        b.iter(|| black_box(FlowRouting.apply(black_box(&dem))))
    });
    c.bench_function("gaussian_256sq", |b| {
        b.iter(|| black_box(GaussianFilter.apply(black_box(&dem))))
    });
    c.bench_function("fbm_dem_256sq", |b| {
        b.iter(|| black_box(workload::fbm_dem(256, 256, black_box(42))))
    });
}

fn bench_pfs(c: &mut Criterion) {
    use das_pfs::{PfsCluster, StripeSpec};
    let data: Vec<u8> = (0..1usize << 20).map(|i| (i % 251) as u8).collect(); // 1 MiB

    c.bench_function("pfs_create_1MiB_replicated", |b| {
        b.iter_batched(
            || data.clone(),
            |data| {
                let mut pfs = PfsCluster::new(8);
                black_box(
                    pfs.create(
                        "f",
                        &data,
                        StripeSpec::new(64 * 1024),
                        LayoutPolicy::GroupedReplicated { group: 8 },
                    )
                    .unwrap(),
                )
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("pfs_redistribute_1MiB", |b| {
        b.iter_batched(
            || {
                let mut pfs = PfsCluster::new(8);
                let f = pfs
                    .create("f", &data, StripeSpec::new(64 * 1024), LayoutPolicy::RoundRobin)
                    .unwrap();
                (pfs, f)
            },
            |(mut pfs, f)| {
                black_box(
                    pfs.redistribute(f, LayoutPolicy::GroupedReplicated { group: 8 }).unwrap(),
                )
            },
            BatchSize::SmallInput,
        )
    });

    let mut pfs = PfsCluster::new(8);
    let f = pfs
        .create("f", &data, StripeSpec::new(64 * 1024), LayoutPolicy::RoundRobin)
        .unwrap();
    c.bench_function("pfs_read_256KiB", |b| {
        b.iter(|| black_box(pfs.read(f, 123_456, 256 * 1024).unwrap()))
    });
}

fn bench_engine(c: &mut Criterion) {
    // 10k-op pipeline over 32 contended resources.
    c.bench_function("des_engine_10k_ops", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::new();
                let res: Vec<_> = (0..32).map(|i| sim.add_resource(format!("r{i}"), 1)).collect();
                let mut prev = None;
                for i in 0..10_000u32 {
                    let mut spec = OpSpec::new(OpKind::Compute { node: i % 32, units: 1 })
                        .duration(SimDuration::from_nanos(u64::from(i % 97) + 1))
                        .uses(res[(i % 32) as usize]);
                    if let Some(p) = prev {
                        if i % 3 == 0 {
                            spec = spec.after(p);
                        }
                    }
                    prev = Some(sim.add_op(spec));
                }
                sim
            },
            |sim| black_box(sim.run().unwrap()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_predictor,
    bench_planner,
    bench_layout,
    bench_descriptors,
    bench_kernels,
    bench_pfs,
    bench_engine
);
criterion_main!(benches);
