//! Fig. 12 — Execution time of NAS, TS and DAS as data size increases.
//!
//! All three schemes × the Table I kernels over 24–60 size units,
//! 24 nodes. The paper's claim: DAS has "the lowest increase of
//! execution time when the data size was increased".

use das_bench::{header, row, FIG_SEED, PAPER_SIZES, TABLE1_KERNELS};
use das_runtime::{size_sweep, ClusterConfig, SchemeKind, SweepPoint};

fn growth_per_step(points: &[SweepPoint]) -> Vec<f64> {
    points
        .windows(2)
        .map(|w| (w[1].report.exec_secs() / w[0].report.exec_secs() - 1.0) * 100.0)
        .collect()
}

fn main() {
    let cfg = ClusterConfig::paper_default();
    header("Fig. 12 — scalability with data size (24 nodes)", "size (MiB)");

    for kernel in TABLE1_KERNELS {
        let mut per_scheme = Vec::new();
        for scheme in [SchemeKind::Nas, SchemeKind::Das, SchemeKind::Ts] {
            let points = size_sweep(&cfg, scheme, kernel, &PAPER_SIZES, FIG_SEED);
            for p in &points {
                row(p.axis, &p.report);
            }
            let growth = growth_per_step(&points);
            let avg = growth.iter().sum::<f64>() / growth.len() as f64;
            println!(
                "  -> {} avg growth per +12 MiB: {avg:.1}% (paper: DAS ~15%, NAS/TS >30%)\n",
                scheme.name()
            );
            per_scheme.push((scheme, points, avg));
        }

        // Shape: DAS pays the least *additional* time per step.
        let delta = |points: &[SweepPoint]| {
            points.last().unwrap().report.exec_secs() - points[0].report.exec_secs()
        };
        let d_nas = delta(&per_scheme[0].1);
        let d_das = delta(&per_scheme[1].1);
        let d_ts = delta(&per_scheme[2].1);
        assert!(
            d_das <= d_ts && d_das <= d_nas,
            "{kernel}: DAS Δt {d_das:.4}s must be the smallest (NAS {d_nas:.4}s, TS {d_ts:.4}s)"
        );
        println!("  shape check ({kernel}): DAS absolute growth smallest ✔\n");
    }
}
