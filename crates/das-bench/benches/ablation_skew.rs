//! Ablation A6 — launch-skew sensitivity.
//!
//! Real clusters never start jobs in lockstep, and NAS's synchronous
//! cross-server fetching makes its schedule *couple* neighboring
//! servers. The measured result is a scheduling subtlety: the fetch
//! dependences form a ring convoy that re-synchronizes whatever the
//! initial skew, so NAS's steady-state cost barely moves (large skew
//! can even help by overlapping one server's fetch phase with its
//! neighbor's compute), while DAS and TS — with no cross-server
//! coupling — degrade only by the one-time launch offset.

use das_bench::FIG_SEED;
use das_runtime::{size_sweep, ClusterConfig, SchemeKind};
use das_sim::SimDuration;

fn main() {
    println!("\n================================================================");
    println!("Ablation A6 — launch skew sensitivity (flow-routing, 24 MiB)");
    println!("================================================================");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14}",
        "skew (ms)", "NAS (s)", "DAS (s)", "TS (s)", "NAS penalty (%)"
    );

    let mut nas_base = None;
    for skew_ms in [0u64, 1, 2, 4, 8] {
        let mut cfg = ClusterConfig::paper_default();
        cfg.start_skew = SimDuration::from_millis(skew_ms);
        let nas = &size_sweep(&cfg, SchemeKind::Nas, "flow-routing", &[24], FIG_SEED)[0].report;
        let das = &size_sweep(&cfg, SchemeKind::Das, "flow-routing", &[24], FIG_SEED)[0].report;
        let ts = &size_sweep(&cfg, SchemeKind::Ts, "flow-routing", &[24], FIG_SEED)[0].report;
        let base = *nas_base.get_or_insert(nas.exec_secs());
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>12.4} {:>14.1}",
            skew_ms,
            nas.exec_secs(),
            das.exec_secs(),
            ts.exec_secs(),
            (nas.exec_secs() / base - 1.0) * 100.0,
        );
    }
    println!("\nobservation: the NAS fetch ring re-synchronizes into a convoy, so");
    println!("its steady-state cost is nearly skew-independent (large skew can even");
    println!("overlap fetch phases with neighbor compute); DAS and TS pay the");
    println!("launch offset exactly once.");
}
