//! Ablation A2 — replication group size `r`.
//!
//! Paper Section III-D: the improved distribution stores `r`
//! successive strips per server and replicates each group's boundary
//! strips, costing `2/r` extra capacity. Small `r` buys nothing but
//! overhead (more replica strips to write and store); oversized `r`
//! coarsens placement until some servers hold whole extra groups.
//! This sweep forces each `r` through the real executor and also
//! reports what the planner would have picked.

use das_bench::FIG_SEED;
use das_core::{plan_distribution, PlanOptions};
use das_pfs::LayoutPolicy;
use das_runtime::{run_das_with_policy, sweep::figure_workload, ClusterConfig};
use das_kernels::FlowRouting;

fn main() {
    let cfg = ClusterConfig::paper_default();
    let input = figure_workload(24, FIG_SEED);

    println!("\n================================================================");
    println!("Ablation A2 — replication group size r (flow-routing, 24 MiB)");
    println!("================================================================");
    println!(
        "{:<6} {:>10} {:>14} {:>16} {:>16}",
        "r", "time (s)", "overhead (2/r)", "replica MiB", "stored copies x"
    );

    let strips = input.byte_len().div_ceil(cfg.strip_size as u64);
    for r in [1u64, 2, 4, 8, 16, 32] {
        let policy = LayoutPolicy::GroupedReplicated { group: r };
        let report = run_das_with_policy(&cfg, &FlowRouting, &input, policy);
        let das = report.das.as_ref().expect("outcome");
        assert!(das.offloaded, "r={r} still beats normal I/O");
        // Stored-copy factor from the layout itself.
        let layout = das_pfs::Layout::new(policy, cfg.storage_nodes);
        let copies = layout.total_copies(strips) as f64 / strips as f64;
        println!(
            "{:<6} {:>10.4} {:>14.3} {:>16.1} {:>16.3}",
            r,
            report.exec_secs(),
            2.0 / r as f64,
            report.bytes.net_server_server as f64 / (1024.0 * 1024.0),
            copies,
        );
    }

    let plan = plan_distribution(
        &{
            let w = input.width() as i64;
            vec![-w + 1, -w, -w - 1, -1, 1, w - 1, w, w + 1]
        },
        4,
        cfg.strip_size as u64,
        cfg.storage_nodes,
        input.byte_len(),
        PlanOptions::default(),
    );
    println!(
        "\nplanner's choice: {:?} (satisfied={}, overhead={:.3})",
        plan.policy, plan.satisfied, plan.capacity_overhead
    );
    println!("observation: larger r cuts replica traffic and storage linearly;");
    println!("the planner stops where placement balance would start to suffer.");
}
