//! Fig. 13 — Execution time as the number of nodes increases.
//!
//! DAS and TS at a fixed 60 size units over 24–60 total nodes (half
//! storage, half compute). The paper: "both DAS and TS schemes are
//! scalable … execution time reduced by about 15% when the number of
//! nodes was increased with 12 nodes", with DAS below TS throughout.

use das_bench::{header, row, FIG_SEED, PAPER_NODES};
use das_runtime::{node_sweep, ClusterConfig, SchemeKind};

fn main() {
    let cfg = ClusterConfig::paper_default();
    let mib = 60;
    header("Fig. 13 — scalability with node count (60 MiB)", "nodes");

    for scheme in [SchemeKind::Das, SchemeKind::Ts] {
        let points = node_sweep(&cfg, scheme, "flow-routing", mib, &PAPER_NODES, FIG_SEED);
        for p in &points {
            row(p.axis, &p.report);
        }
        for w in points.windows(2) {
            let drop = (1.0 - w[1].report.exec_secs() / w[0].report.exec_secs()) * 100.0;
            println!(
                "  -> {} {} → {} nodes: {drop:.1}% faster (paper: ~15% per +12 nodes)",
                scheme.name(),
                w[0].axis,
                w[1].axis
            );
            assert!(
                w[1].report.exec_secs() < w[0].report.exec_secs(),
                "{}: adding nodes must not slow the run",
                scheme.name()
            );
        }
        println!();
    }

    // DAS below TS at every node count.
    let das = node_sweep(&cfg, SchemeKind::Das, "flow-routing", mib, &PAPER_NODES, FIG_SEED);
    let ts = node_sweep(&cfg, SchemeKind::Ts, "flow-routing", mib, &PAPER_NODES, FIG_SEED);
    for (d, t) in das.iter().zip(&ts) {
        assert!(
            d.report.exec_secs() < t.report.exec_secs(),
            "DAS must beat TS at {} nodes",
            d.axis
        );
    }
    println!("shape check: both schemes scale; DAS below TS at every point ✔");
}
