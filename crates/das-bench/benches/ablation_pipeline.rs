//! Ablation A5 — successive-operation pipelines and redistribution
//! amortization.
//!
//! The paper's Fig. 3 reconfigures the layout whenever "there is a
//! successive operation", without quantifying when that pays. This
//! sweep runs 1–4-stage pipelines (the flow-routing → flow-accumulation
//! chain extended with filter passes) with DAS *charged the full
//! redistribution from round-robin*, against TS and NAS — exposing the
//! break-even pipeline depth.

use das_bench::FIG_SEED;
use das_kernels::{FlowAccumulationStep, FlowRouting, GaussianFilter, Kernel, MedianFilter};
use das_runtime::{run_pipeline, sweep::figure_workload, ClusterConfig, SchemeKind};

fn main() {
    let cfg = ClusterConfig::paper_default();
    let input = figure_workload(24, FIG_SEED);
    let chain: Vec<&dyn Kernel> =
        vec![&FlowRouting, &FlowAccumulationStep, &GaussianFilter, &MedianFilter];

    println!("\n================================================================");
    println!("Ablation A5 — pipeline depth vs redistribution amortization");
    println!("(24 MiB, 24 nodes; DAS pays full reconfiguration from round-robin)");
    println!("================================================================");
    println!(
        "{:<8} {:>14} {:>12} {:>12} {:>12} {:>16}",
        "stages", "DAS redist (s)", "DAS (s)", "NAS (s)", "TS (s)", "DAS wins by (%)"
    );

    for depth in 1..=chain.len() {
        let stages = &chain[..depth];
        let das = run_pipeline(&cfg, SchemeKind::Das, stages, &input);
        let nas = run_pipeline(&cfg, SchemeKind::Nas, stages, &input);
        let ts = run_pipeline(&cfg, SchemeKind::Ts, stages, &input);
        assert_eq!(das.final_fingerprint, ts.final_fingerprint);
        assert_eq!(das.final_fingerprint, nas.final_fingerprint);

        let redist = das.redistribution.map(|r| r.time.as_secs_f64()).unwrap_or(0.0);
        let win = (1.0 - das.total_secs() / ts.total_secs()) * 100.0;
        println!(
            "{:<8} {:>14.4} {:>12.4} {:>12.4} {:>12.4} {:>16.1}",
            depth,
            redist,
            das.total_secs(),
            nas.total_secs(),
            ts.total_secs(),
            win,
        );
    }
    println!("\nobservation: even charged the full reconfiguration, DAS amortizes");
    println!("it across stages; the margin over TS widens with pipeline depth —");
    println!("the paper's successive-operation argument, quantified.");
}
