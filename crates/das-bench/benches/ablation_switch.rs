//! Ablation A7 — core-switch congestion.
//!
//! The paper's motivation (Section I): "the bandwidth between the
//! compute nodes and the storage nodes has not improved at the same
//! rate as the storage capacity … and data requirements". This sweep
//! caps the number of concurrent full-rate transfers the fabric
//! sustains: TS (all data crosses the core) and NAS (all dependence
//! crosses it) degrade as the switch saturates, while DAS — whose
//! remaining traffic is only boundary-replica maintenance — barely
//! notices. The more congested the interconnect, the stronger the
//! active-storage argument.

use das_bench::{improvement_pct, FIG_SEED};
use das_runtime::{size_sweep, ClusterConfig, SchemeKind};

fn main() {
    println!("\n================================================================");
    println!("Ablation A7 — core-switch concurrency (flow-routing, 24 MiB)");
    println!("================================================================");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>14}",
        "switch cap", "NAS (s)", "DAS (s)", "TS (s)", "DAS vs TS (%)"
    );

    let mut das_times = Vec::new();
    for cap in [None, Some(8u32), Some(4), Some(2)] {
        let mut cfg = ClusterConfig::paper_default();
        cfg.switch_capacity = cap;
        let nas = &size_sweep(&cfg, SchemeKind::Nas, "flow-routing", &[24], FIG_SEED)[0].report;
        let das = &size_sweep(&cfg, SchemeKind::Das, "flow-routing", &[24], FIG_SEED)[0].report;
        let ts = &size_sweep(&cfg, SchemeKind::Ts, "flow-routing", &[24], FIG_SEED)[0].report;
        println!(
            "{:<12} {:>12.4} {:>12.4} {:>12.4} {:>14.1}",
            cap.map(|c| c.to_string()).unwrap_or_else(|| "unlimited".into()),
            nas.exec_secs(),
            das.exec_secs(),
            ts.exec_secs(),
            improvement_pct(ts.exec_secs(), das.exec_secs()),
        );
        das_times.push(das.exec_secs());
        assert!(das.exec_secs() < ts.exec_secs(), "DAS must win under congestion too");
    }

    // DAS is nearly flat across the sweep.
    let spread = das_times.iter().cloned().fold(f64::MIN, f64::max)
        / das_times.iter().cloned().fold(f64::MAX, f64::min);
    println!("\nDAS max/min across the sweep: {spread:.3} (≈1 = congestion-immune)");
    assert!(spread < 1.25, "DAS must be nearly unaffected by switch capacity");
    println!("observation: the tighter the fabric, the larger DAS's advantage —");
    println!("the paper's core motivation, reproduced as a sweep.");
}
