//! Ablation A4 — decision quality of the Fig. 3 workflow.
//!
//! Sweep operators by vertical stride length and grade two decision
//! rules by **regret** against measured ground truth (a forced offload
//! on the planned layout vs traditional service):
//!
//! * the **paper's byte criterion** (Eq. 5 / strip-fetch bytes vs
//!   normal-I/O bytes) — which has a blind spot: when fetches are
//!   synchronous per-strip RPCs, per-request latency and service
//!   serialization can make an offload lose while moving *fewer*
//!   bytes than TS;
//! * the **latency-aware extension** (`das_core::decide_timed`), which
//!   the DAS executor deploys.
//!
//! A decision is *good* when the side it picked runs within 10% of the
//! better side.

use das_core::{decide, decide_timed, DecisionInput, KernelFeatures, LinkCost, OffsetExpr,
    PlanOptions};
use das_kernels::{workload, ElemSource, Kernel};
use das_pfs::{PfsCluster, StripeSpec};
use das_runtime::{run_das_forced_offload, run_scheme, ClusterConfig, SchemeKind};

/// Parametric vertical-stride operator: depends on rows ±stride.
#[derive(Debug, Clone, Copy)]
struct Stride(i64);

impl Kernel for Stride {
    fn name(&self) -> &'static str {
        "stride-op"
    }
    fn dependence_offsets(&self, img_width: u64) -> Vec<i64> {
        let w = img_width as i64;
        vec![-self.0 * w, self.0 * w]
    }
    fn cost_per_element(&self) -> f64 {
        80.0
    }
    fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
        let mut acc = src.get(row as i64, col as i64).expect("center");
        for dr in [-self.0, self.0] {
            if let Some(v) = src.get(row as i64 + dr, col as i64) {
                acc += v;
            }
        }
        acc
    }
}

fn main() {
    // One-row strips make stride locality depend sharply on the stride
    // length — the interesting regime for the decision engine.
    let mut cfg = ClusterConfig::paper_default();
    cfg.storage_nodes = 8;
    cfg.compute_nodes = 8;
    cfg.strip_size = 2048 * 4; // one 2048-element row per strip
    let input = workload::fbm_dem(2048, 1024, 7);

    println!("\n================================================================");
    println!("Ablation A4 — decision quality across stride lengths (8 MiB)");
    println!("================================================================");
    println!(
        "{:<8} {:>10} {:>10} {:>13} {:>10} {:>9} {:>9}",
        "stride", "byte-rule", "timed-rule", "offload (s)", "TS (s)", "byte", "timed"
    );

    let link = LinkCost {
        bytes_per_sec: cfg.nic.bytes_per_sec,
        per_request_secs: (cfg.serve_cpu_overhead + cfg.nic.latency * 2).as_secs_f64(),
        per_message_secs: cfg.nic.latency.as_secs_f64(),
        compute_nodes: cfg.compute_nodes,
    };

    let grade = |picked_offload: bool, offload_secs: f64, ts_secs: f64| -> bool {
        let picked = if picked_offload { offload_secs } else { ts_secs };
        picked <= offload_secs.min(ts_secs) * 1.10
    };

    let (mut byte_good, mut timed_good, mut total) = (0usize, 0usize, 0usize);
    for stride in [1i64, 2, 3, 5, 9, 17, 33] {
        let k = Stride(stride);
        let offsets = k.dependence_offsets(input.width());

        // What each rule decides on the planner's layout.
        let plan = das_core::plan_distribution(
            &offsets,
            4,
            cfg.strip_size as u64,
            cfg.storage_nodes,
            input.byte_len(),
            PlanOptions::default(),
        );
        let mut pfs = PfsCluster::new(cfg.storage_nodes);
        let file = pfs
            .create("f", &input.to_bytes(), StripeSpec::new(cfg.strip_size), plan.policy)
            .unwrap();
        let dist = pfs.distribution_info(file).unwrap();
        let features = KernelFeatures {
            name: "stride-op".into(),
            dependence: offsets.iter().map(|&o| OffsetExpr::Const(o)).collect(),
        };
        let base = DecisionInput {
            features: &features,
            dist,
            element_size: 4,
            img_width: input.width(),
            output_bytes: dist.file_len,
            successive: false,
            plan_opts: PlanOptions::default(),
        };
        let byte_rule = decide(&base).is_offload();
        let timed_rule = decide_timed(&base, &link).is_offload();

        // Ground truth: force both sides through the simulator.
        let forced = run_das_forced_offload(&cfg, &k, &input, plan.policy);
        let ts = run_scheme(&cfg, SchemeKind::Ts, &k, &input);
        assert_eq!(forced.output_fingerprint, ts.output_fingerprint);

        let b = grade(byte_rule, forced.exec_secs(), ts.exec_secs());
        let t = grade(timed_rule, forced.exec_secs(), ts.exec_secs());
        total += 1;
        byte_good += usize::from(b);
        timed_good += usize::from(t);

        println!(
            "{:<8} {:>10} {:>10} {:>13.4} {:>10.4} {:>9} {:>9}",
            stride,
            if byte_rule { "offload" } else { "reject" },
            if timed_rule { "offload" } else { "reject" },
            forced.exec_secs(),
            ts.exec_secs(),
            if b { "good" } else { "BAD" },
            if t { "good" } else { "BAD" },
        );
    }

    println!("\ndecision quality (≤10% regret): byte rule {byte_good}/{total}, timed rule {timed_good}/{total}");
    println!("observation: the paper's byte criterion over-accepts offloads whose");
    println!("cost is latency/service-bound rather than byte-bound; the timed");
    println!("extension (deployed by the DAS executor) closes that gap.");
    assert!(
        timed_good >= byte_good,
        "the timed rule must not be worse than the byte rule"
    );
    assert_eq!(timed_good, total, "the timed rule must pick a near-best side everywhere");
}
