//! Fig. 14 — Normalized Sustained Bandwidth Improvement.
//!
//! Flow-routing under all three schemes over 24–48 size units,
//! bandwidth normalized to TS at each size (the paper plots TS = 1).
//! Paper: DAS highest ("improved the sustained bandwidth by nearly one
//! fold … compared to the TS scheme"), NAS lowest. EXPERIMENTS.md
//! discusses the tension between the paper's "one fold" quote and its
//! own Fig. 11 execution-time gains.

use das_bench::FIG_SEED;
use das_runtime::{size_sweep, ClusterConfig, SchemeKind};

fn main() {
    let cfg = ClusterConfig::paper_default();
    let sizes = [24u64, 36, 48];

    println!("\n================================================================");
    println!("Fig. 14 — normalized sustained bandwidth, flow-routing");
    println!("================================================================");
    println!("{:<12} {:>10} {:>10} {:>10}", "size (MiB)", "NAS", "DAS", "TS");

    for &mib in &sizes {
        let nas = &size_sweep(&cfg, SchemeKind::Nas, "flow-routing", &[mib], FIG_SEED)[0].report;
        let das = &size_sweep(&cfg, SchemeKind::Das, "flow-routing", &[mib], FIG_SEED)[0].report;
        let ts = &size_sweep(&cfg, SchemeKind::Ts, "flow-routing", &[mib], FIG_SEED)[0].report;
        let base = ts.sustained_bandwidth_mib();
        let (n, d, t) = (
            nas.sustained_bandwidth_mib() / base,
            das.sustained_bandwidth_mib() / base,
            1.0,
        );
        println!("{mib:<12} {n:>10.2} {d:>10.2} {t:>10.2}");
        assert!(d > t && t > n, "{mib} MiB: expected DAS > TS > NAS bandwidth");
    }
    println!("\nshape check: DAS highest, NAS lowest at every size ✔");
    println!("(paper quotes DAS ≈ 2× TS; our calibration, which matches the");
    println!(" Fig. 11 execution-time gains exactly, yields ≈ 1.4–1.5× — the");
    println!(" two paper claims are mutually inconsistent; see EXPERIMENTS.md)");
}
