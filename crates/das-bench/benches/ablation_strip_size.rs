//! Ablation A1 — strip-size sensitivity.
//!
//! The paper's Eqs. 1–2 make the strip size the denominator of every
//! placement decision. Sweeping it shows the regimes: tiny strips make
//! the 8-neighbor dependence span multiple strips (even replication
//! cannot cover it and NAS amplification explodes); huge strips shrink
//! the remote fraction but coarsen parallelism.

use das_bench::{improvement_pct, FIG_SEED};
use das_core::StripingParams;
use das_pfs::{Layout, LayoutPolicy};
use das_runtime::{size_sweep, sweep::figure_workload, ClusterConfig, SchemeKind};

fn main() {
    let mib = 24u64;
    println!("\n================================================================");
    println!("Ablation A1 — strip size (flow-routing, 24 MiB, 24 nodes)");
    println!("================================================================");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "strip", "NAS (s)", "DAS (s)", "TS (s)", "DAS vs TS (%)", "NAS amp (x)"
    );

    for strip_kib in [16usize, 64, 256, 1024] {
        let mut cfg = ClusterConfig::paper_default();
        cfg.strip_size = strip_kib * 1024;

        let nas = &size_sweep(&cfg, SchemeKind::Nas, "flow-routing", &[mib], FIG_SEED)[0].report;
        let das = &size_sweep(&cfg, SchemeKind::Das, "flow-routing", &[mib], FIG_SEED)[0].report;
        let ts = &size_sweep(&cfg, SchemeKind::Ts, "flow-routing", &[mib], FIG_SEED)[0].report;

        // Predicted NAS strip-fetch amplification at this strip size.
        let input = figure_workload(mib, FIG_SEED);
        let params = StripingParams {
            element_size: 4,
            strip_size: cfg.strip_size as u64,
            layout: Layout::new(LayoutPolicy::RoundRobin, cfg.storage_nodes),
        };
        let offsets: Vec<i64> = {
            let w = input.width() as i64;
            vec![-w + 1, -w, -w - 1, -1, 1, w - 1, w, w + 1]
        };
        let pred = params.predict_nas_fetches(&offsets, input.byte_len());
        let amp = if pred.distinct_strips == 0 {
            0.0
        } else {
            pred.fetches as f64 / pred.distinct_strips as f64
        };

        println!(
            "{:<12} {:>12.4} {:>12.4} {:>12.4} {:>14.1} {:>14.2}",
            format!("{strip_kib} KiB"),
            nas.exec_secs(),
            das.exec_secs(),
            ts.exec_secs(),
            improvement_pct(ts.exec_secs(), das.exec_secs()),
            amp,
        );
        assert!(das.exec_secs() < ts.exec_secs(), "{strip_kib} KiB: DAS must win");
    }
    println!("\nobservation: DAS wins at every strip size; NAS amplification and");
    println!("the DAS margin both shrink as strips grow (fewer boundary rows).");
}
