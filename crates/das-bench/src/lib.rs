//! # das-bench — figure/table regeneration harnesses
//!
//! Every table and figure of the paper's evaluation (Section IV) has a
//! `cargo bench` target that regenerates it, plus ablations over the
//! design choices DESIGN.md calls out. The harnesses print the same
//! rows/series the paper reports; EXPERIMENTS.md records paper-vs-
//! measured for each.
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table I — the analysis kernels and their dependence patterns |
//! | `fig10` | Fig. 10 — NAS vs TS execution time, 3 kernels × 24–60 size units |
//! | `fig11` | Fig. 11 — NAS/DAS/TS at 24 units, 24 nodes |
//! | `fig12` | Fig. 12 — scalability with data size, all schemes × kernels |
//! | `fig13` | Fig. 13 — scalability with node count, DAS & TS |
//! | `fig14` | Fig. 14 — normalized sustained bandwidth |
//! | `ablation_strip_size` | strip-size sensitivity (Eqs. 1–2 regimes) |
//! | `ablation_group_size` | replication group `r`: overhead vs balance |
//! | `ablation_node_ratio` | storage:compute ratio (paper fixes 1:1) |
//! | `ablation_decision` | decision quality across a stride sweep |
//! | `ablation_skew` | launch-skew sensitivity (NAS fragility, DAS immunity) |
//! | `micro` | criterion micro-benchmarks of predictor/planner/kernels/engine |
//!
//! Run all of them with `cargo bench`, or one with
//! `cargo bench --bench fig11`.

use das_runtime::RunReport;

/// Percent improvement of `new` over `base` (positive = faster).
pub fn improvement_pct(base: f64, new: f64) -> f64 {
    (1.0 - new / base) * 100.0
}

/// Format a standard figure-table header.
pub fn header(title: &str, axis: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
    println!(
        "{axis:<14} {:<18} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "kernel", "scheme", "time (s)", "bw (MiB/s)", "c/s (MiB)", "s/s (MiB)"
    );
}

/// Print one data row in the standard format.
pub fn row(axis: impl std::fmt::Display, r: &RunReport) {
    println!(
        "{axis:<14} {:<18} {:>6} {:>12.4} {:>12.1} {:>12.1} {:>12.1}",
        r.kernel,
        r.scheme.name(),
        r.exec_secs(),
        r.sustained_bandwidth_mib(),
        r.bytes.net_client_server as f64 / (1024.0 * 1024.0),
        r.bytes.net_server_server as f64 / (1024.0 * 1024.0),
    );
}

/// The three kernels of the paper's Table I, in paper order.
pub const TABLE1_KERNELS: [&str; 3] = ["flow-routing", "flow-accumulation", "gaussian-filter"];

/// The paper's data-size sweep (GB in the paper, MiB here; DESIGN.md
/// documents the scaling).
pub const PAPER_SIZES: [u64; 4] = [24, 36, 48, 60];

/// The paper's node-count sweep.
pub const PAPER_NODES: [u32; 4] = [24, 36, 48, 60];

/// Seed used by every figure harness (determinism across reruns).
pub const FIG_SEED: u64 = 2012;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_pct(100.0, 70.0), 30.000000000000004);
        assert!(improvement_pct(100.0, 130.0) < 0.0);
    }
}
