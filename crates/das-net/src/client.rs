//! The `das` client library: one connection per storage server, the
//! striped data plane (client-side gather/scatter), and drivers for
//! the paper's three evaluation schemes over real sockets.
//!
//! The client is the top of the fault-tolerance stack. Every call
//! carries the cluster's [`RetryPolicy`] (timeouts + bounded
//! deterministic backoff, reconnecting on transport errors); a server
//! that exhausts its retry budget is marked **down** and routed
//! around. On top of that sit three recovery layers, each recorded as
//! a [`DegradeEvent`] in the run's report:
//!
//! 1. **Replica failover** — [`DasCluster::read_file`] walks each
//!    strip's holders primary-first, so a dead primary costs one
//!    failed call, not the read.
//! 2. **Tolerant writes** — [`DasCluster::put_file`] succeeds if at
//!    least one holder of each strip stores it, noting the reduced
//!    redundancy.
//! 3. **Scheme degradation** — [`run_net_scheme`] descends the ladder
//!    DAS → NAS → normal I/O when offloading is impossible (e.g. a
//!    dead server cannot compute the strips only it holds), so a
//!    request is served in degraded form rather than failed, whenever
//!    the data is still reachable.

use std::io;
use std::net::TcpStream;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use das_core::{ActiveStorageClient, Decision, RequestOptions};
use das_kernels::kernel_by_name;
use das_kernels::Raster;
use das_pfs::{DistributionInfo, Layout, LayoutPolicy, StripId, StripeSpec};
use das_runtime::DegradeEvent;

use crate::codec::{read_message, write_message, write_message_opts, CountingStream, NetError};
use crate::hedge::LoadTracker;
use crate::proto::{
    ErrorCode, Message, Role, WireStats, CAP_DEADLINE, CAP_SPANS, CAP_TRACE, LOCAL_CAPS,
};
use crate::retry::RetryPolicy;

struct ClientConn {
    addr: String,
    stream: Option<CountingStream<TcpStream>>,
    /// Whether this server's `HelloOk` advertised [`CAP_TRACE`] —
    /// trace ids are only put on the wire for servers that did.
    traced: bool,
    /// Whether it advertised [`CAP_DEADLINE`] — deadline budgets are
    /// only put on the wire for servers that did, so a legacy server
    /// keeps seeing bit-identical frames.
    deadline_ok: bool,
    /// Whether it advertised [`CAP_SPANS`] — the `TraceDump`/`SlowLog`
    /// opcodes are never sent to a server that did not, so a legacy
    /// daemon is never shown an opcode it cannot parse.
    spans_ok: bool,
}

impl ClientConn {
    /// Move this slot's live stream (and negotiated flags) into an
    /// owned connection a hedge racer thread can drive, leaving a
    /// redialable placeholder behind.
    fn take(&mut self) -> ClientConn {
        ClientConn {
            addr: self.addr.clone(),
            stream: self.stream.take(),
            traced: self.traced,
            deadline_ok: self.deadline_ok,
            spans_ok: self.spans_ok,
        }
    }
}

/// Connections to every `dasd` of a cluster, indexed by server id.
pub struct DasCluster {
    conns: Vec<ClientConn>,
    down: Vec<bool>,
    events: Vec<DegradeEvent>,
    policy: RetryPolicy,
    metrics: Arc<das_obs::Registry>,
    /// Trace id stamped on outgoing requests (to CAP_TRACE servers)
    /// until the next [`DasCluster::begin_trace`].
    trace: Option<u64>,
    /// Per-server latency EWMAs (shared with hedge racer threads):
    /// replica walks demote stragglers, and the hedge delay is derived
    /// from the chosen server's estimate.
    load: Arc<LoadTracker>,
    /// Every racer thread ever spawned reports here. The receiver is
    /// drained at request-path entry points so a *stale* racer (one
    /// that outlived its race) still gets its connection restored.
    racer_tx: mpsc::Sender<RacerDone>,
    racer_rx: mpsc::Receiver<RacerDone>,
    /// Id of the next hedge race, to tell current results from stale.
    next_race: u64,
}

/// What one hedge racer thread reports back: its (restorable)
/// connection and the outcome of the strip fetch it raced.
struct RacerDone {
    race: u64,
    server: usize,
    conn: ClientConn,
    result: Result<Message, NetError>,
}

/// One server's execution summary (from [`Message::ExecuteOk`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecSummary {
    /// Primary strips computed.
    pub strips_computed: u64,
    /// Dependence fetches the server issued to peers.
    pub dep_fetches: u64,
    /// Payload bytes those fetches moved.
    pub dep_fetch_bytes: u64,
}

/// Whether an error should push the scheme ladder down a rung: a
/// transport/transient failure, or a call that was refused because the
/// target server is marked down. Typed application errors (bad
/// request, unknown kernel, …) are not degradable — retrying them
/// elsewhere would return the same answer.
fn degradable(e: &NetError) -> bool {
    e.is_transient() || matches!(e, NetError::Remote { code: ErrorCode::NoSuchServer, .. })
}

/// Ensure `conn` holds a live, greeted connection. Free function (not
/// a method) so hedge racer threads can drive an owned [`ClientConn`]
/// without borrowing the whole cluster.
fn conn_dial(conn: &mut ClientConn, policy: &RetryPolicy) -> Result<(), NetError> {
    if conn.stream.is_some() {
        return Ok(());
    }
    let raw = policy.connect(&conn.addr)?;
    let mut stream = CountingStream::new(raw);
    write_message(
        &mut stream,
        &Message::Hello { role: Role::Client, peer_id: 0, caps: LOCAL_CAPS },
    )?;
    match read_message(&mut stream)? {
        Some(Message::HelloOk { caps, .. }) => {
            conn.traced = caps & CAP_TRACE != 0;
            conn.deadline_ok = caps & CAP_DEADLINE != 0;
            conn.spans_ok = caps & CAP_SPANS != 0;
        }
        Some(other) => return Err(NetError::Unexpected { opcode: other.opcode() }),
        None => {
            return Err(NetError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed during handshake",
            )))
        }
    }
    conn.stream = Some(stream);
    Ok(())
}

/// One attempt against one connection: dial if needed, write, read.
/// Transport errors evict the stream so the next attempt redials
/// instead of reusing a socket in an unknown state.
///
/// When the server advertised [`CAP_DEADLINE`], the request carries a
/// budget equal to the reply deadline this client itself enforces (the
/// policy's read timeout, stretched for long operations) — a server
/// that cannot answer within it may shed the request instead of doing
/// work nobody is waiting for.
fn conn_call_once(
    conn: &mut ClientConn,
    policy: &RetryPolicy,
    msg: &Message,
    trace: Option<u64>,
) -> Result<Message, NetError> {
    conn_dial(conn, policy)?;
    // Offloaded executes and redistribution phases do real work
    // (kernel compute, bulk strip movement) before replying — give
    // them a far longer reply deadline than the per-frame read
    // timeout, or a busy server looks dead.
    let long_op = matches!(
        msg,
        Message::Execute { .. } | Message::RedistPrepare { .. } | Message::RedistCommit { .. }
    );
    let base_timeout = policy.read_timeout;
    let reply_deadline =
        if long_op { base_timeout.saturating_mul(10) } else { base_timeout };
    let budget_ms = if conn.deadline_ok {
        Some(reply_deadline.as_millis().clamp(1, u128::from(u32::MAX)) as u32)
    } else {
        None
    };
    let trace = if conn.traced { trace } else { None };
    let stream = conn.stream.as_mut().expect("dial just succeeded"); // das-lint: allow(DA402) conn_dial filled the slot on the line above
    if long_op {
        let _ = stream.get_ref().set_read_timeout(Some(reply_deadline));
    }
    let result = (|| {
        write_message_opts(stream, msg, trace, budget_ms)?;
        match read_message(stream)? {
            Some(Message::Error { code, message }) => Err(NetError::Remote { code, message }),
            Some(reply) => Ok(reply),
            None => Err(NetError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-call",
            ))),
        }
    })();
    if long_op {
        let _ = stream.get_ref().set_read_timeout(Some(base_timeout));
    }
    if result.as_ref().is_err_and(NetError::is_transport) {
        conn.stream = None;
    }
    result
}

impl DasCluster {
    /// Connect to every server and shake hands, with the default
    /// retry policy.
    pub fn connect(addrs: &[String]) -> Result<Self, NetError> {
        DasCluster::connect_with(addrs, RetryPolicy::default())
    }

    /// [`DasCluster::connect`] with an explicit retry/timeout policy.
    /// Servers that stay unreachable through the retry budget are
    /// marked down (and recorded as [`DegradeEvent::ServerUnavailable`])
    /// rather than failing the whole connect; only a cluster with *no*
    /// reachable server is an error.
    pub fn connect_with(addrs: &[String], policy: RetryPolicy) -> Result<Self, NetError> {
        let (racer_tx, racer_rx) = mpsc::channel();
        let mut cluster = DasCluster {
            conns: addrs
                .iter()
                .map(|a| ClientConn {
                    addr: a.clone(),
                    stream: None,
                    traced: false,
                    deadline_ok: false,
                    spans_ok: false,
                })
                .collect(),
            down: vec![false; addrs.len()],
            events: Vec::new(),
            policy,
            metrics: Arc::new(das_obs::Registry::new()),
            trace: None,
            load: Arc::new(LoadTracker::new(addrs.len())),
            racer_tx,
            racer_rx,
            next_race: 0,
        };
        let mut last = None;
        let mut reachable = 0usize;
        for s in 0..cluster.conns.len() {
            let policy = cluster.policy.clone();
            match policy.retry(|| conn_dial(&mut cluster.conns[s], &policy)) {
                Ok(()) => reachable += 1,
                Err(e) => {
                    last = Some(e);
                    cluster.mark_down(s);
                }
            }
        }
        if reachable == 0 {
            return Err(last.unwrap_or_else(|| NetError::Protocol("empty cluster".into())));
        }
        Ok(cluster)
    }

    /// Number of servers (reachable or not).
    pub fn servers(&self) -> u32 {
        self.conns.len() as u32
    }

    /// Servers currently marked unreachable.
    pub fn down_servers(&self) -> Vec<u32> {
        (0..self.down.len() as u32).filter(|&s| self.down[s as usize]).collect()
    }

    /// Drain the fault-tolerance events recorded since the last call.
    pub fn take_events(&mut self) -> Vec<DegradeEvent> {
        self.drain_racers();
        std::mem::take(&mut self.events)
    }

    /// The client-side metrics registry: degradation events keyed by
    /// tag, retry totals. Draining [`DasCluster::take_events`] does
    /// not reset these, so the registry and the per-run reports can be
    /// cross-checked.
    pub fn metrics(&self) -> &Arc<das_obs::Registry> {
        &self.metrics
    }

    /// Mint a fresh trace id and stamp it on every subsequent request
    /// to servers that advertised [`CAP_TRACE`]. Returns the id so
    /// callers can correlate client logs with daemon-side traces.
    pub fn begin_trace(&mut self) -> u64 {
        let id = das_obs::next_trace_id();
        self.trace = Some(id);
        id
    }

    /// Every degradation goes through here so the report's event list
    /// and the live `das_client_degrade_events_total{event}` counters
    /// can never disagree.
    fn record_event(&mut self, ev: DegradeEvent) {
        self.metrics.counter("das_client_degrade_events_total", &[("event", ev.tag())]).inc();
        self.events.push(ev);
    }

    fn mark_down(&mut self, s: usize) {
        if !self.down[s] {
            self.down[s] = true;
            self.conns[s].stream = None;
            self.record_event(DegradeEvent::ServerUnavailable { server: s as u32 });
        }
    }

    fn down_error(s: usize) -> NetError {
        NetError::Remote {
            code: ErrorCode::NoSuchServer,
            message: format!("server {s} is marked unavailable"),
        }
    }

    /// First reachable server (metadata requests go here).
    fn any_up(&self) -> Result<usize, NetError> {
        self.down
            .iter()
            .position(|&d| !d)
            .ok_or_else(|| NetError::Protocol("no reachable servers".into()))
    }

    fn up_servers(&self) -> Vec<usize> {
        (0..self.conns.len()).filter(|&s| !self.down[s]).collect()
    }

    /// One attempt: dial if needed, write, read. Transport errors
    /// evict the connection so the next attempt redials instead of
    /// reusing a socket in an unknown state. The attempt's wall time
    /// feeds the server's latency EWMA (down servers fail fast and
    /// are not scored).
    fn call_once(&mut self, s: usize, msg: &Message) -> Result<Message, NetError> {
        if self.down[s] {
            return Err(Self::down_error(s));
        }
        let started = Instant::now();
        let result = conn_call_once(&mut self.conns[s], &self.policy, msg, self.trace);
        // Only successes feed the estimate — a refused connection
        // fails in microseconds and would make a dead server score as
        // the fastest holder in every walk.
        if result.is_ok() {
            self.load.observe(s, started.elapsed());
        }
        result
    }

    /// One request/response exchange with server `s`, with transparent
    /// reconnect-and-retry for transient failures. Exhausting the
    /// budget on transport errors marks the server down; calls to a
    /// down server fail fast with a typed error.
    pub fn call(&mut self, s: usize, msg: &Message) -> Result<Message, NetError> {
        let policy = self.policy.clone();
        let mut attempts = 0u64;
        let result = policy.retry(|| {
            attempts += 1;
            self.call_once(s, msg)
        });
        if attempts > 1 {
            self.metrics.counter("das_client_retries_total", &[]).add(attempts - 1);
        }
        if result.as_ref().is_err_and(NetError::is_transport) {
            self.mark_down(s);
        }
        result
    }

    /// Send `msg` to every reachable server, collecting the replies.
    fn call_all(&mut self, msg: &Message) -> Result<Vec<Message>, NetError> {
        let ups = self.up_servers();
        if ups.is_empty() {
            return Err(NetError::Protocol("no reachable servers".into()));
        }
        ups.into_iter().map(|s| self.call(s, msg)).collect()
    }

    /// Ping every reachable server.
    pub fn ping_all(&mut self) -> Result<(), NetError> {
        for reply in self.call_all(&Message::Ping)? {
            if reply != Message::Pong {
                return Err(NetError::Unexpected { opcode: reply.opcode() });
            }
        }
        Ok(())
    }

    /// Register a file on every reachable server; returns the
    /// (cluster-agreed) file id.
    pub fn create_file(
        &mut self,
        name: &str,
        file_len: u64,
        strip_size: u32,
        policy: LayoutPolicy,
    ) -> Result<u32, NetError> {
        let servers = self.servers();
        let msg = Message::CreateFile {
            name: name.to_string(),
            file_len,
            strip_size,
            policy,
            servers,
        };
        let mut id = None;
        for reply in self.call_all(&msg)? {
            match reply {
                Message::CreateFileOk { file } => match id {
                    None => id = Some(file),
                    Some(prev) if prev == file => {}
                    Some(prev) => {
                        return Err(NetError::Protocol(format!(
                            "servers disagree on file id ({prev} vs {file}) — metadata drift"
                        )))
                    }
                },
                other => return Err(NetError::Unexpected { opcode: other.opcode() }),
            }
        }
        id.ok_or_else(|| NetError::Protocol("no reachable servers to register the file".into()))
    }

    /// Resolve a name to `(file id, distribution)`. Falls over to the
    /// next reachable server if the asked one dies mid-call.
    pub fn lookup(&mut self, name: &str) -> Result<(u32, DistributionInfo), NetError> {
        loop {
            let s = self.any_up()?;
            match self.call(s, &Message::Lookup { name: name.to_string() }) {
                Ok(Message::LookupOk { file, dist }) => return Ok((file, dist)),
                Ok(other) => return Err(NetError::Unexpected { opcode: other.opcode() }),
                Err(e) if e.is_transport() => continue, // `s` was just marked down; ask the next
                Err(e) => return Err(e),
            }
        }
    }

    /// Query a file's distribution information.
    pub fn distribution(&mut self, file: u32) -> Result<DistributionInfo, NetError> {
        loop {
            let s = self.any_up()?;
            match self.call(s, &Message::GetDistribution { file }) {
                Ok(Message::DistributionResp { dist }) => return Ok(dist),
                Ok(other) => return Err(NetError::Unexpected { opcode: other.opcode() }),
                Err(e) if e.is_transport() => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Look up `name`, creating it (with `dist`'s geometry) if no
    /// server knows it yet — the idempotent output-file registration
    /// the degradation ladder needs when a rung may already have
    /// created the file.
    fn ensure_out_file(&mut self, name: &str, dist: &DistributionInfo) -> Result<u32, NetError> {
        match self.lookup(name) {
            Ok((id, _)) => Ok(id),
            Err(NetError::Remote { code: ErrorCode::NoSuchFile, .. }) => {
                self.create_file(name, dist.file_len, dist.strip_size as u32, dist.policy)
            }
            Err(e) => Err(e),
        }
    }

    /// Scatter `data` over the cluster: each strip goes to every
    /// server that holds it under the file's layout. The write is
    /// **tolerant**: a strip succeeds if at least one of its holders
    /// stores it (missed holders are recorded as
    /// [`DegradeEvent::DegradedWrite`]); it fails only when *no*
    /// holder is reachable.
    pub fn put_file(&mut self, file: u32, data: &[u8]) -> Result<(), NetError> {
        let dist = self.distribution(file)?;
        if data.len() as u64 != dist.file_len {
            return Err(NetError::Protocol(format!(
                "payload is {} bytes, file is {}",
                data.len(),
                dist.file_len
            )));
        }
        let spec = StripeSpec::new(dist.strip_size);
        let layout = Layout::new(dist.policy, dist.servers);
        for s in 0..spec.strip_count(dist.file_len) {
            let sid = StripId(s);
            let start = spec.strip_start(sid) as usize;
            let end = start + spec.strip_len(sid, dist.file_len);
            let mut stored = 0u32;
            let mut missed = 0u32;
            let mut last = None;
            for holder in layout.holders(sid) {
                match self.call(
                    holder.index(),
                    &Message::PutStrip { file, strip: s, payload: data[start..end].to_vec() },
                ) {
                    Ok(Message::PutStripOk) => stored += 1,
                    Ok(other) => return Err(NetError::Unexpected { opcode: other.opcode() }),
                    Err(e) => {
                        missed += 1;
                        last = Some(e);
                    }
                }
            }
            if stored == 0 {
                return Err(last.unwrap_or_else(|| {
                    NetError::Protocol(format!("strip {s}: no holders under the layout"))
                }));
            }
            if missed > 0 {
                self.record_event(DegradeEvent::DegradedWrite { file, strip: s, missed });
            }
        }
        Ok(())
    }

    /// Gather a whole file (the "normal I/O" read path). Each strip's
    /// holders are walked **lightest-first** by observed latency (a
    /// cold tracker preserves primary-first placement order), failing
    /// over to the next holder on error
    /// ([`DegradeEvent::ReplicaFailover`]); a strip fails only when no
    /// holder can serve it. When the first choice has a latency
    /// estimate and a second holder exists, the fetch is **hedged**: if
    /// no reply lands within the EWMA-derived delay, the same request
    /// races on the next-best holder and the first valid reply wins.
    pub fn read_file(&mut self, file: u32) -> Result<Vec<u8>, NetError> {
        let dist = self.distribution(file)?;
        let spec = StripeSpec::new(dist.strip_size);
        let layout = Layout::new(dist.policy, dist.servers);
        // Cap the preallocation hint: `file_len` arrived over the
        // wire, and a corrupt daemon must not be able to make the
        // client reserve 16 EiB up front. The Vec still grows to the
        // true size strip by strip.
        let mut out = Vec::with_capacity(dist.file_len.min(crate::proto::MAX_PAYLOAD as u64) as usize);
        for s in 0..spec.strip_count(dist.file_len) {
            let sid = StripId(s);
            let placement = layout.placement(sid);
            let want = spec.strip_len(sid, dist.file_len);
            let mut walk: Vec<u32> = placement.holders().into_iter().map(|h| h.0).collect();
            self.load.order_by_load(&mut walk, |&h| h as usize);
            let payload =
                self.fetch_strip(file, s, want, placement.primary_server.0, &walk)?;
            out.extend_from_slice(&payload);
        }
        Ok(out)
    }

    /// Fetch one strip from the holders in `walk` order: hedged race
    /// between the two best holders when possible, otherwise (or when
    /// the race yields nothing usable) a sequential failover walk.
    fn fetch_strip(
        &mut self,
        file: u32,
        strip: u64,
        want: usize,
        primary: u32,
        walk: &[u32],
    ) -> Result<Vec<u8>, NetError> {
        self.drain_racers();
        if let [a, b, ..] = *walk {
            let (a, b) = (a as usize, b as usize);
            if !self.down[a] && !self.down[b] {
                // `hedge_delay` is None until the first choice has
                // enough samples — no estimate, no race.
                if let Some(delay) = self.load.hedge_delay(a) {
                    if let Some(payload) =
                        self.hedged_get_strip(file, strip, want, primary, a, b, delay)?
                    {
                        return Ok(payload);
                    }
                }
            }
        }
        let mut last = None;
        for (pos, &h) in walk.iter().enumerate() {
            match self.call(h as usize, &Message::GetStrip { file, strip }) {
                Ok(Message::StripData { payload }) => {
                    if payload.len() != want {
                        return Err(NetError::Protocol(format!(
                            "strip {strip}: wanted {want} bytes, got {}",
                            payload.len()
                        )));
                    }
                    // A replica serving because it was *ordered* first
                    // is load balancing, not degradation — only record
                    // a failover when an earlier attempt actually
                    // failed.
                    if pos > 0 && h != primary {
                        das_obs::event_limited(
                            das_obs::Level::Debug,
                            "das.client",
                            "replica walk",
                            &[
                                ("strip", strip.to_string()),
                                ("primary", primary.to_string()),
                                ("served_by", h.to_string()),
                                ("hops", pos.to_string()),
                            ],
                        );
                        self.record_event(DegradeEvent::ReplicaFailover {
                            file,
                            strip,
                            primary,
                            replica: h,
                        });
                    }
                    return Ok(payload);
                }
                Ok(other) => return Err(NetError::Unexpected { opcode: other.opcode() }),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            NetError::Protocol(format!("strip {strip}: no holders under the layout"))
        }))
    }

    /// Settle one racer report: put its connection back in the slot
    /// table (unless a fresh one was dialed there meanwhile). Racer
    /// connections are always frame-aligned — the racer either read a
    /// whole reply or evicted the stream on a transport error — so
    /// restoring one can never desynchronize the slot.
    fn settle_racer(&mut self, done: RacerDone) {
        if self.conns[done.server].stream.is_none() {
            self.conns[done.server] = done.conn;
        }
    }

    /// Collect every racer report that has landed since the last
    /// drain, so stale racers' connections return to the pool.
    fn drain_racers(&mut self) {
        while let Ok(done) = self.racer_rx.try_recv() {
            self.settle_racer(done);
        }
    }

    /// Move server `server`'s connection out of the slot table and
    /// drive `msg` against it on a detached thread, reporting back on
    /// the cluster's racer channel. The thread owns the connection:
    /// the main thread never blocks on the slow racer, which is the
    /// entire point of hedging.
    ///
    /// A racer retries *remote* transient errors through the policy's
    /// budget (counting retries like [`DasCluster::call`] would, so
    /// fault accounting is identical either way), but gives up
    /// immediately on transport errors: a dead server should fail the
    /// race fast and deterministically fall through to the sequential
    /// walk, whose full retry-and-mark-down machinery owns that case.
    ///
    /// Each racer carries a **distinct hedge sub-trace id** derived
    /// from the run's trace id and the racer's lane (0 = first choice,
    /// 1 = hedge). Racing both lanes under the parent id would alias
    /// winner and loser in every server-side flight recorder — same
    /// trace, same stages, double-counted; with per-lane sub-ids a
    /// hedge loser's server-side spans stay attributable on their own.
    /// `das trace <parent>` does not auto-join the sub-ids; the
    /// rate-limited `hedge lane` event records the parent↔child link.
    fn spawn_racer(&mut self, race: u64, server: usize, lane: u32, msg: &Message) {
        let mut conn = self.conns[server].take();
        let policy = self.policy.clone();
        let load = Arc::clone(&self.load);
        let metrics = Arc::clone(&self.metrics);
        let trace = self.trace.map(|parent| {
            let child = das_obs::hedge_sub_id(parent, lane);
            das_obs::event_limited(
                das_obs::Level::Debug,
                "das.client",
                "hedge lane",
                &[
                    ("parent", format!("{parent:016x}")),
                    ("child", format!("{child:016x}")),
                    ("lane", lane.to_string()),
                    ("server", server.to_string()),
                ],
            );
            child
        });
        let msg = msg.clone();
        let tx = self.racer_tx.clone();
        std::thread::spawn(move || {
            let attempts = policy.max_attempts.max(1);
            let mut attempt = 0u32;
            let result = loop {
                attempt += 1;
                let started = Instant::now();
                let r = conn_call_once(&mut conn, &policy, &msg, trace);
                if r.is_ok() {
                    load.observe(server, started.elapsed());
                }
                match r {
                    Err(e)
                        if matches!(e, NetError::Remote { .. })
                            && e.is_transient()
                            && attempt < attempts =>
                    {
                        policy.sleep_before_retry(attempt)
                    }
                    other => break other,
                }
            };
            if attempt > 1 {
                metrics.counter("das_client_retries_total", &[]).add(u64::from(attempt - 1));
            }
            // A send failure means the cluster itself was dropped; the
            // connection just closes with it.
            let _ = tx.send(RacerDone { race, server, conn, result });
        });
    }

    /// Race a strip fetch: fire at `a`; if no reply lands within
    /// `delay`, fire the identical request at `b` and take the first
    /// length-valid [`Message::StripData`]. Returns `Ok(None)` when
    /// neither racer produced a usable payload, so the caller can fall
    /// back to the plain sequential walk.
    #[allow(clippy::too_many_arguments)]
    fn hedged_get_strip(
        &mut self,
        file: u32,
        strip: u64,
        want: usize,
        primary: u32,
        a: usize,
        b: usize,
        delay: Duration,
    ) -> Result<Option<Vec<u8>>, NetError> {
        let msg = Message::GetStrip { file, strip };
        let race = self.next_race;
        self.next_race += 1;
        self.spawn_racer(race, a, 0, &msg);
        let mut outstanding = 1u32;
        let mut hedged = false;
        // Once hedged, wait well past the per-frame read timeout: the
        // racers' retry loops need room to conclude before we give up
        // on the race entirely.
        let patience = self.policy.read_timeout.saturating_mul(12);
        while outstanding > 0 {
            let done = match self.racer_rx.recv_timeout(if hedged { patience } else { delay }) {
                Ok(done) => done,
                Err(_) => {
                    if hedged {
                        // Both racers stuck past the generous window:
                        // abandon the race (their slots redial later).
                        break;
                    }
                    self.metrics.counter("das_client_hedges_total", &[]).inc();
                    self.spawn_racer(race, b, 1, &msg);
                    outstanding += 1;
                    hedged = true;
                    continue;
                }
            };
            if done.race != race {
                // A straggler from an earlier race: restore its
                // connection, it does not decide this strip.
                self.settle_racer(done);
                continue;
            }
            outstanding -= 1;
            let RacerDone { server, conn, result, .. } = done;
            if self.conns[server].stream.is_none() {
                self.conns[server] = conn;
            }
            match result {
                Ok(Message::StripData { payload }) => {
                    if payload.len() != want {
                        return Err(NetError::Protocol(format!(
                            "strip {strip}: wanted {want} bytes, got {}",
                            payload.len()
                        )));
                    }
                    if hedged && server == b {
                        self.metrics.counter("das_client_hedge_wins_total", &[]).inc();
                        das_obs::event_limited(
                            das_obs::Level::Debug,
                            "das.client",
                            "hedge win",
                            &[
                                ("strip", strip.to_string()),
                                ("winner", server.to_string()),
                                ("loser", a.to_string()),
                            ],
                        );
                        // The first choice did not answer inside its
                        // latency envelope and the hedge served the
                        // strip from a replica: that is a replica
                        // failover in the report's vocabulary, just a
                        // proactive one.
                        if server as u32 != primary {
                            self.record_event(DegradeEvent::ReplicaFailover {
                                file,
                                strip,
                                primary,
                                replica: server as u32,
                            });
                        }
                    }
                    return Ok(Some(payload));
                }
                Ok(other) => return Err(NetError::Unexpected { opcode: other.opcode() }),
                // This racer lost; the other may still deliver, and if
                // not the sequential walk below retries everything.
                Err(_) => {}
            }
        }
        Ok(None)
    }

    /// Two-phase redistribution to `policy`: every server prepares
    /// (pulling its new strips from the old layout's primaries), then
    /// every server commits. Returns total bytes pulled between
    /// servers. Requires the **full** cluster: redistribution rewrites
    /// every server's strip set, so running it around a dead server
    /// would silently lose placement — the caller should degrade to a
    /// scheme that keeps the current layout instead.
    pub fn redistribute(&mut self, file: u32, policy: LayoutPolicy) -> Result<u64, NetError> {
        if let Some(s) = self.down.iter().position(|&d| d) {
            return Err(Self::down_error(s));
        }
        let mut moved = 0u64;
        for reply in self.call_all(&Message::RedistPrepare { file, policy })? {
            match reply {
                Message::RedistPrepareOk { fetched_bytes, .. } => moved += fetched_bytes,
                other => return Err(NetError::Unexpected { opcode: other.opcode() }),
            }
        }
        for reply in self.call_all(&Message::RedistCommit { file, policy })? {
            match reply {
                Message::RedistCommitOk => {}
                other => return Err(NetError::Unexpected { opcode: other.opcode() }),
            }
        }
        Ok(moved)
    }

    /// Offload `kernel` over `file` on every server. `Ok(Err(reason))`
    /// means a server's decision workflow rejected the request
    /// ([`ErrorCode::FallbackToNormalIo`]) and the caller must run the
    /// normal-I/O path instead.
    #[allow(clippy::type_complexity)]
    pub fn execute(
        &mut self,
        file: u32,
        out_file: u32,
        kernel: &str,
        img_width: u64,
        successive: bool,
        force: bool,
    ) -> Result<Result<Vec<ExecSummary>, String>, NetError> {
        let msg = Message::Execute {
            file,
            out_file,
            kernel: kernel.to_string(),
            img_width,
            element_size: 4,
            successive,
            force,
        };
        let mut summaries = Vec::with_capacity(self.conns.len());
        for s in 0..self.conns.len() {
            match self.call(s, &msg) {
                Ok(Message::ExecuteOk { strips_computed, dep_fetches, dep_fetch_bytes }) => {
                    summaries.push(ExecSummary { strips_computed, dep_fetches, dep_fetch_bytes })
                }
                Ok(other) => return Err(NetError::Unexpected { opcode: other.opcode() }),
                Err(NetError::Remote { code: ErrorCode::FallbackToNormalIo, message }) => {
                    // All servers share the metadata and decide
                    // identically; the first rejection settles it.
                    return Ok(Err(message));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(Ok(summaries))
    }

    /// Per-server traffic counters (reachable servers only).
    pub fn stats(&mut self) -> Result<Vec<WireStats>, NetError> {
        self.call_all(&Message::Stats)?
            .into_iter()
            .map(|reply| match reply {
                Message::StatsResp(s) => Ok(s),
                other => Err(NetError::Unexpected { opcode: other.opcode() }),
            })
            .collect()
    }

    /// Dump server `s`'s live metrics registry in Prometheus text
    /// exposition format (see [`Message::MetricsDump`]).
    pub fn metrics_dump(&mut self, s: usize) -> Result<String, NetError> {
        match self.call(s, &Message::MetricsDump)? {
            Message::MetricsText { text } => Ok(text),
            other => Err(NetError::Unexpected { opcode: other.opcode() }),
        }
    }

    /// [`DasCluster::metrics_dump`] from every reachable server,
    /// paired with its server id.
    pub fn metrics_dump_all(&mut self) -> Result<Vec<(u32, String)>, NetError> {
        self.up_servers()
            .into_iter()
            .map(|s| self.metrics_dump(s).map(|text| (s as u32, text)))
            .collect()
    }

    /// Dump the spans server `s` retains for `trace` from its flight
    /// recorder (see [`Message::TraceDump`]). Fails with a typed
    /// [`ErrorCode::BadRequest`]-shaped error client-side when the
    /// server did not advertise [`CAP_SPANS`] — the opcode is never
    /// put on a legacy server's wire.
    pub fn trace_dump(&mut self, s: usize, trace: u64) -> Result<Vec<das_obs::SpanRecord>, NetError> {
        if !self.conns[s].spans_ok {
            return Err(NetError::Remote {
                code: ErrorCode::BadRequest,
                message: format!("server {s} did not negotiate CAP_SPANS"),
            });
        }
        match self.call(s, &Message::TraceDump { trace })? {
            Message::TraceDumpResp { spans } => das_obs::decode_spans(&spans)
                .ok_or_else(|| NetError::Protocol(format!("server {s}: malformed span blob"))),
            other => Err(NetError::Unexpected { opcode: other.opcode() }),
        }
    }

    /// [`DasCluster::trace_dump`] from every reachable server that
    /// negotiated [`CAP_SPANS`], paired with its server id. Legacy
    /// servers are skipped, not errored: a mixed fleet still renders a
    /// (partial) waterfall.
    pub fn trace_dump_all(
        &mut self,
        trace: u64,
    ) -> Result<Vec<(u32, Vec<das_obs::SpanRecord>)>, NetError> {
        let capable: Vec<usize> =
            self.up_servers().into_iter().filter(|&s| self.conns[s].spans_ok).collect();
        capable
            .into_iter()
            .map(|s| self.trace_dump(s, trace).map(|spans| (s as u32, spans)))
            .collect()
    }

    /// Server `s`'s slowest-roots reservoir: up to `per_class` slowest
    /// requests per op class with their retained sub-spans (see
    /// [`Message::SlowLog`]). Same [`CAP_SPANS`] gating as
    /// [`DasCluster::trace_dump`].
    pub fn slow_log(
        &mut self,
        s: usize,
        per_class: u32,
    ) -> Result<Vec<das_obs::SpanRecord>, NetError> {
        if !self.conns[s].spans_ok {
            return Err(NetError::Remote {
                code: ErrorCode::BadRequest,
                message: format!("server {s} did not negotiate CAP_SPANS"),
            });
        }
        match self.call(s, &Message::SlowLog { per_class })? {
            Message::SlowLogResp { spans } => das_obs::decode_spans(&spans)
                .ok_or_else(|| NetError::Protocol(format!("server {s}: malformed span blob"))),
            other => Err(NetError::Unexpected { opcode: other.opcode() }),
        }
    }

    /// [`DasCluster::slow_log`] from every reachable [`CAP_SPANS`]
    /// server, paired with its server id (legacy servers skipped).
    pub fn slow_log_all(
        &mut self,
        per_class: u32,
    ) -> Result<Vec<(u32, Vec<das_obs::SpanRecord>)>, NetError> {
        let capable: Vec<usize> =
            self.up_servers().into_iter().filter(|&s| self.conns[s].spans_ok).collect();
        capable
            .into_iter()
            .map(|s| self.slow_log(s, per_class).map(|spans| (s as u32, spans)))
            .collect()
    }

    /// Zero every reachable server's traffic counters.
    pub fn reset_stats(&mut self) -> Result<(), NetError> {
        for reply in self.call_all(&Message::ResetStats)? {
            if reply != Message::ResetStatsOk {
                return Err(NetError::Unexpected { opcode: reply.opcode() });
            }
        }
        Ok(())
    }

    /// Ask every daemon to exit. Best-effort by design: a daemon that
    /// is already dead (or rendered unreachable by fault injection)
    /// must not block teardown of the rest, so each server gets one
    /// attempt and errors are swallowed.
    pub fn shutdown_all(&mut self) -> Result<(), NetError> {
        for s in 0..self.conns.len() {
            let _ = self.call_once(s, &Message::Shutdown);
        }
        Ok(())
    }
}

/// Which of the paper's three evaluation schemes to run over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetScheme {
    /// Traditional storage: gather to the client, compute there,
    /// scatter the output back.
    Ts,
    /// Naive active storage: offload unconditionally on the current
    /// layout.
    Nas,
    /// Dynamic active storage: decide, optionally redistribute, then
    /// offload — or fall back to TS on rejection.
    Das,
}

impl NetScheme {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            NetScheme::Ts => "TS",
            NetScheme::Nas => "NAS",
            NetScheme::Das => "DAS",
        }
    }
}

/// What a networked scheme run did and moved.
#[derive(Debug, Clone)]
pub struct NetRunReport {
    /// The scheme.
    pub scheme: NetScheme,
    /// Kernel name.
    pub kernel: String,
    /// Whether the work ran on the storage servers.
    pub offloaded: bool,
    /// The input file's layout when execution ran.
    pub layout: LayoutPolicy,
    /// Raw output bytes (row-major little-endian `f32`).
    pub output: Vec<u8>,
    /// Bit-exact fingerprint of the output raster.
    pub output_fingerprint: u64,
    /// Measured client↔server wire bytes (sum over servers, both
    /// directions).
    pub client_bytes: u64,
    /// Measured server↔server wire bytes (sum of per-server sends, so
    /// each transfer counts once).
    pub server_bytes: u64,
    /// Bytes moved by redistribution (DAS only; included in
    /// `server_bytes`).
    pub redistribution_bytes: u64,
    /// Per-server execution summaries (empty for TS).
    pub exec: Vec<ExecSummary>,
    /// Fault-tolerance actions taken while serving this run, in
    /// order: failed servers, replica failovers, degraded writes, and
    /// any rungs of the DAS → NAS → normal-I/O ladder descended.
    /// Empty on a healthy cluster.
    pub degradations: Vec<DegradeEvent>,
}

/// Run one scheme end-to-end over the wire: the input file (already
/// ingested under round-robin) is processed by `kernel_name`, the
/// output lands in a new file `out_name`, and traffic counters are
/// reset before and read after, so the report's byte counts cover
/// exactly this run.
///
/// When servers fail mid-run the driver degrades instead of erroring,
/// as long as every input strip is still reachable on some holder:
/// a DAS offload that cannot redistribute or execute falls back to an
/// unconditional offload on the current layout (NAS rung), and an
/// offload that cannot run at all is served as normal I/O with
/// replica-failover reads and tolerant writes. Every rung descended
/// is recorded in [`NetRunReport::degradations`]. Only when data is
/// genuinely unreachable (a dead server holding unreplicated strips)
/// does the run return a typed error — within the retry policy's
/// bounded time, never a hang.
pub fn run_net_scheme(
    cluster: &mut DasCluster,
    scheme: NetScheme,
    file: u32,
    out_name: &str,
    kernel_name: &str,
    img_width: u64,
) -> Result<NetRunReport, NetError> {
    run_net_scheme_opts(cluster, scheme, file, out_name, kernel_name, img_width, true)
}

/// [`run_net_scheme`] with the Fig. 3 "successive operation?" answer
/// exposed. `successive: true` (the [`run_net_scheme`] default) takes
/// the reconfigure-and-accept branch — redistribution amortizes over
/// the operations that follow. `successive: false` is a one-shot
/// request: the client predicts the bandwidth cost on the layout as it
/// stands and **rejects** the offload when dependence fetches would
/// exceed normal service, serving the run as normal I/O instead (the
/// daemons' identical double-check records the rejection as a `ts`
/// decision outcome in their metrics registries).
#[allow(clippy::too_many_arguments)]
pub fn run_net_scheme_opts(
    cluster: &mut DasCluster,
    scheme: NetScheme,
    file: u32,
    out_name: &str,
    kernel_name: &str,
    img_width: u64,
    successive: bool,
) -> Result<NetRunReport, NetError> {
    // One trace id per scheme run: every RPC this run issues (and,
    // server-side, every peer fetch it causes) carries the same id.
    let trace = cluster.begin_trace();
    das_obs::event(
        das_obs::Level::Debug,
        "das.client",
        "scheme run",
        &[
            ("scheme", scheme.name().to_string()),
            ("kernel", kernel_name.to_string()),
            ("trace", format!("{trace:016x}")),
        ],
    );
    let dist = cluster.distribution(file)?;
    cluster.reset_stats()?;

    let mut redistribution_bytes = 0;
    let mut offloaded = false;
    let mut exec = Vec::new();

    match scheme {
        NetScheme::Ts => {
            run_normal_io(cluster, file, out_name, kernel_name, img_width, &dist)?;
        }
        NetScheme::Nas => {
            match offload_once(cluster, file, out_name, kernel_name, img_width, false, true) {
                Ok(Ok(summaries)) => {
                    offloaded = true;
                    exec = summaries;
                }
                Ok(Err(reason)) => {
                    return Err(NetError::Protocol(format!("forced offload rejected: {reason}")))
                }
                Err(e) if degradable(&e) => {
                    cluster.record_event(DegradeEvent::DegradedToTs { reason: e.to_string() });
                    let out_file = cluster.ensure_out_file(out_name, &dist)?;
                    run_ts_into(cluster, file, out_file, kernel_name, img_width)?;
                }
                Err(e) => return Err(e),
            }
        }
        NetScheme::Das => {
            // Client half of Fig. 3: fetch the distribution, predict,
            // and reconfigure the layout when a successive operation
            // justifies it.
            let as_client = ActiveStorageClient::with_builtin_features();
            let opts = RequestOptions { img_width, successive, ..Default::default() };
            let decision = as_client
                .decide_from_distribution(dist, kernel_name, &opts)
                .map_err(|e| NetError::Protocol(e.to_string()))?;
            match decision {
                Decision::Offload { replan, .. } => {
                    // DAS rung: reconfigure the layout, then offload.
                    let das_rung = (|cluster: &mut DasCluster| {
                        if let Some(plan) = &replan {
                            redistribution_bytes = cluster.redistribute(file, plan.policy)?;
                        }
                        offload_once(cluster, file, out_name, kernel_name, img_width, successive, false)
                    })(cluster);
                    match das_rung {
                        Ok(Ok(summaries)) => {
                            offloaded = true;
                            exec = summaries;
                        }
                        Ok(Err(_reason)) => {
                            // Server-side double-check disagreed — a
                            // decision fallback, not a fault; serve as
                            // normal I/O.
                            let out_file = cluster.ensure_out_file(out_name, &dist)?;
                            run_ts_into(cluster, file, out_file, kernel_name, img_width)?;
                        }
                        Err(e) if degradable(&e) => {
                            // NAS rung: skip reconfiguration, force an
                            // offload on whatever layout is live.
                            cluster.record_event(DegradeEvent::DegradedToNas { reason: e.to_string() });
                            let nas_rung = offload_once(cluster, file, out_name, kernel_name, img_width, false, true);
                            match nas_rung {
                                Ok(Ok(summaries)) => {
                                    offloaded = true;
                                    exec = summaries;
                                }
                                Ok(Err(reason)) => {
                                    cluster.record_event(DegradeEvent::DegradedToTs { reason });
                                    let out_file = cluster.ensure_out_file(out_name, &dist)?;
                                    run_ts_into(cluster, file, out_file, kernel_name, img_width)?;
                                }
                                Err(e2) if degradable(&e2) => {
                                    // TS rung: compute client-side with
                                    // failover reads and tolerant writes.
                                    cluster.record_event(DegradeEvent::DegradedToTs { reason: e2.to_string() });
                                    let out_file = cluster.ensure_out_file(out_name, &dist)?;
                                    run_ts_into(cluster, file, out_file, kernel_name, img_width)?;
                                }
                                Err(e2) => return Err(e2),
                            }
                        }
                        Err(e) => return Err(e),
                    }
                }
                Decision::Reject { .. } => {
                    // Mirror the rejection on the storage side so the
                    // daemons count a "ts" outcome too: the unforced
                    // execute is refused by the server's identical
                    // double-check (FallbackToNormalIo). Advisory —
                    // any disagreement or failure still serves the
                    // request, as an offload or as normal I/O.
                    match offload_once(
                        cluster, file, out_name, kernel_name, img_width, successive, false,
                    ) {
                        Ok(Ok(summaries)) => {
                            offloaded = true;
                            exec = summaries;
                        }
                        _ => run_normal_io(cluster, file, out_name, kernel_name, img_width, &dist)?,
                    }
                }
            }
        }
    }

    // Snapshot the counters before the verification read-back below,
    // which is not part of any scheme's traffic.
    let stats = cluster.stats()?;
    let client_bytes: u64 = stats.iter().map(|s| s.client_in + s.client_out).sum();
    let server_bytes: u64 = stats.iter().map(|s| s.server_out).sum();

    let (out_id, out_dist) = cluster.lookup(out_name)?;
    let output = cluster.read_file(out_id)?;
    let height = out_dist.file_len / (img_width * 4);
    let output_fingerprint = Raster::from_bytes(img_width, height, &output).fingerprint();
    let layout = cluster.distribution(file)?.policy;
    let degradations = cluster.take_events();

    Ok(NetRunReport {
        scheme,
        kernel: kernel_name.to_string(),
        offloaded,
        layout,
        output,
        output_fingerprint,
        client_bytes,
        server_bytes,
        redistribution_bytes,
        exec,
        degradations,
    })
}

/// One offload attempt on the file's *current* layout: resolve the
/// output file (idempotently — an earlier rung may already have
/// registered it) and execute on every server.
#[allow(clippy::type_complexity)]
fn offload_once(
    cluster: &mut DasCluster,
    file: u32,
    out_name: &str,
    kernel_name: &str,
    img_width: u64,
    successive: bool,
    force: bool,
) -> Result<Result<Vec<ExecSummary>, String>, NetError> {
    let dist = cluster.distribution(file)?;
    let out_file = cluster.ensure_out_file(out_name, &dist)?;
    cluster.execute(file, out_file, kernel_name, img_width, successive, force)
}

/// The TS path: gather the input, apply the kernel client-side,
/// register the output file, scatter it back.
fn run_normal_io(
    cluster: &mut DasCluster,
    file: u32,
    out_name: &str,
    kernel_name: &str,
    img_width: u64,
    dist: &DistributionInfo,
) -> Result<(), NetError> {
    let out_file = cluster.ensure_out_file(out_name, dist)?;
    run_ts_into(cluster, file, out_file, kernel_name, img_width)
}

fn run_ts_into(
    cluster: &mut DasCluster,
    file: u32,
    out_file: u32,
    kernel_name: &str,
    img_width: u64,
) -> Result<(), NetError> {
    let kernel = kernel_by_name(kernel_name)
        .ok_or_else(|| NetError::Protocol(format!("no kernel {kernel_name:?}")))?;
    let input = cluster.read_file(file)?;
    let height = input.len() as u64 / (img_width * 4);
    let raster = Raster::from_bytes(img_width, height, &input);
    let output = kernel.apply(&raster);
    cluster.put_file(out_file, &output.to_bytes())
}
