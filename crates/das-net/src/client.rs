//! The `das` client library: one connection per storage server, the
//! striped data plane (client-side gather/scatter), and drivers for
//! the paper's three evaluation schemes over real sockets.

use std::net::TcpStream;
use std::time::Duration;

use das_core::{ActiveStorageClient, Decision, RequestOptions};
use das_kernels::kernel_by_name;
use das_kernels::Raster;
use das_pfs::{DistributionInfo, Layout, LayoutPolicy, StripId, StripeSpec};

use crate::codec::{read_message, write_message, CountingStream, NetError};
use crate::proto::{ErrorCode, Message, Role, WireStats};

/// Connections to every `dasd` of a cluster, indexed by server id.
pub struct DasCluster {
    conns: Vec<CountingStream<TcpStream>>,
}

/// One server's execution summary (from [`Message::ExecuteOk`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecSummary {
    /// Primary strips computed.
    pub strips_computed: u64,
    /// Dependence fetches the server issued to peers.
    pub dep_fetches: u64,
    /// Payload bytes those fetches moved.
    pub dep_fetch_bytes: u64,
}

impl DasCluster {
    /// Connect to every server and shake hands.
    pub fn connect(addrs: &[String]) -> Result<Self, NetError> {
        let mut conns = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let raw = TcpStream::connect(addr)?;
            let _ = raw.set_nodelay(true);
            let _ = raw.set_read_timeout(Some(Duration::from_secs(60)));
            let mut stream = CountingStream::new(raw);
            write_message(&mut stream, &Message::Hello { role: Role::Client, peer_id: 0 })?;
            match read_message(&mut stream)? {
                Some(Message::HelloOk { .. }) => {}
                Some(other) => return Err(NetError::Unexpected { opcode: other.opcode() }),
                None => return Err(NetError::Protocol("server closed during handshake".into())),
            }
            conns.push(stream);
        }
        Ok(DasCluster { conns })
    }

    /// Number of servers.
    pub fn servers(&self) -> u32 {
        self.conns.len() as u32
    }

    /// One request/response exchange with server `s`.
    pub fn call(&mut self, s: usize, msg: &Message) -> Result<Message, NetError> {
        let stream = &mut self.conns[s];
        write_message(stream, msg)?;
        match read_message(stream)? {
            Some(Message::Error { code, message }) => Err(NetError::Remote { code, message }),
            Some(reply) => Ok(reply),
            None => Err(NetError::Protocol("server closed mid-call".into())),
        }
    }

    fn call_all(&mut self, msg: &Message) -> Result<Vec<Message>, NetError> {
        (0..self.conns.len()).map(|s| self.call(s, msg)).collect()
    }

    /// Ping every server.
    pub fn ping_all(&mut self) -> Result<(), NetError> {
        for reply in self.call_all(&Message::Ping)? {
            if reply != Message::Pong {
                return Err(NetError::Unexpected { opcode: reply.opcode() });
            }
        }
        Ok(())
    }

    /// Register a file on every server; returns the (cluster-agreed)
    /// file id.
    pub fn create_file(
        &mut self,
        name: &str,
        file_len: u64,
        strip_size: u32,
        policy: LayoutPolicy,
    ) -> Result<u32, NetError> {
        let servers = self.servers();
        let msg = Message::CreateFile {
            name: name.to_string(),
            file_len,
            strip_size,
            policy,
            servers,
        };
        let mut id = None;
        for reply in self.call_all(&msg)? {
            match reply {
                Message::CreateFileOk { file } => match id {
                    None => id = Some(file),
                    Some(prev) if prev == file => {}
                    Some(prev) => {
                        return Err(NetError::Protocol(format!(
                            "servers disagree on file id ({prev} vs {file}) — metadata drift"
                        )))
                    }
                },
                other => return Err(NetError::Unexpected { opcode: other.opcode() }),
            }
        }
        Ok(id.expect("at least one server"))
    }

    /// Resolve a name to `(file id, distribution)`.
    pub fn lookup(&mut self, name: &str) -> Result<(u32, DistributionInfo), NetError> {
        match self.call(0, &Message::Lookup { name: name.to_string() })? {
            Message::LookupOk { file, dist } => Ok((file, dist)),
            other => Err(NetError::Unexpected { opcode: other.opcode() }),
        }
    }

    /// Query a file's distribution information.
    pub fn distribution(&mut self, file: u32) -> Result<DistributionInfo, NetError> {
        match self.call(0, &Message::GetDistribution { file })? {
            Message::DistributionResp { dist } => Ok(dist),
            other => Err(NetError::Unexpected { opcode: other.opcode() }),
        }
    }

    /// Scatter `data` over the cluster: each strip goes to every
    /// server that holds it under the file's layout.
    pub fn put_file(&mut self, file: u32, data: &[u8]) -> Result<(), NetError> {
        let dist = self.distribution(file)?;
        if data.len() as u64 != dist.file_len {
            return Err(NetError::Protocol(format!(
                "payload is {} bytes, file is {}",
                data.len(),
                dist.file_len
            )));
        }
        let spec = StripeSpec::new(dist.strip_size);
        let layout = Layout::new(dist.policy, dist.servers);
        for s in 0..spec.strip_count(dist.file_len) {
            let sid = StripId(s);
            let start = spec.strip_start(sid) as usize;
            let end = start + spec.strip_len(sid, dist.file_len);
            for holder in layout.holders(sid) {
                match self.call(
                    holder.index(),
                    &Message::PutStrip { file, strip: s, payload: data[start..end].to_vec() },
                )? {
                    Message::PutStripOk => {}
                    other => return Err(NetError::Unexpected { opcode: other.opcode() }),
                }
            }
        }
        Ok(())
    }

    /// Gather a whole file from the primaries (client-side scatter
    /// read — the "normal I/O" read path).
    pub fn read_file(&mut self, file: u32) -> Result<Vec<u8>, NetError> {
        let dist = self.distribution(file)?;
        let spec = StripeSpec::new(dist.strip_size);
        let layout = Layout::new(dist.policy, dist.servers);
        let mut out = Vec::with_capacity(dist.file_len as usize);
        for s in 0..spec.strip_count(dist.file_len) {
            let sid = StripId(s);
            let primary = layout.primary(sid);
            match self.call(primary.index(), &Message::GetStrip { file, strip: s })? {
                Message::StripData { payload } => {
                    if payload.len() != spec.strip_len(sid, dist.file_len) {
                        return Err(NetError::Protocol(format!(
                            "strip {s}: wanted {} bytes, got {}",
                            spec.strip_len(sid, dist.file_len),
                            payload.len()
                        )));
                    }
                    out.extend_from_slice(&payload);
                }
                other => return Err(NetError::Unexpected { opcode: other.opcode() }),
            }
        }
        Ok(out)
    }

    /// Two-phase redistribution to `policy`: every server prepares
    /// (pulling its new strips from the old layout's primaries), then
    /// every server commits. Returns total bytes pulled between
    /// servers.
    pub fn redistribute(&mut self, file: u32, policy: LayoutPolicy) -> Result<u64, NetError> {
        let mut moved = 0u64;
        for reply in self.call_all(&Message::RedistPrepare { file, policy })? {
            match reply {
                Message::RedistPrepareOk { fetched_bytes, .. } => moved += fetched_bytes,
                other => return Err(NetError::Unexpected { opcode: other.opcode() }),
            }
        }
        for reply in self.call_all(&Message::RedistCommit { file, policy })? {
            match reply {
                Message::RedistCommitOk => {}
                other => return Err(NetError::Unexpected { opcode: other.opcode() }),
            }
        }
        Ok(moved)
    }

    /// Offload `kernel` over `file` on every server. `Ok(Err(reason))`
    /// means a server's decision workflow rejected the request
    /// ([`ErrorCode::FallbackToNormalIo`]) and the caller must run the
    /// normal-I/O path instead.
    #[allow(clippy::type_complexity)]
    pub fn execute(
        &mut self,
        file: u32,
        out_file: u32,
        kernel: &str,
        img_width: u64,
        successive: bool,
        force: bool,
    ) -> Result<Result<Vec<ExecSummary>, String>, NetError> {
        let msg = Message::Execute {
            file,
            out_file,
            kernel: kernel.to_string(),
            img_width,
            element_size: 4,
            successive,
            force,
        };
        let mut summaries = Vec::with_capacity(self.conns.len());
        for s in 0..self.conns.len() {
            match self.call(s, &msg) {
                Ok(Message::ExecuteOk { strips_computed, dep_fetches, dep_fetch_bytes }) => {
                    summaries.push(ExecSummary { strips_computed, dep_fetches, dep_fetch_bytes })
                }
                Ok(other) => return Err(NetError::Unexpected { opcode: other.opcode() }),
                Err(NetError::Remote { code: ErrorCode::FallbackToNormalIo, message }) => {
                    // All servers share the metadata and decide
                    // identically; the first rejection settles it.
                    return Ok(Err(message));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(Ok(summaries))
    }

    /// Per-server traffic counters.
    pub fn stats(&mut self) -> Result<Vec<WireStats>, NetError> {
        self.call_all(&Message::Stats)?
            .into_iter()
            .map(|reply| match reply {
                Message::StatsResp(s) => Ok(s),
                other => Err(NetError::Unexpected { opcode: other.opcode() }),
            })
            .collect()
    }

    /// Zero every server's traffic counters.
    pub fn reset_stats(&mut self) -> Result<(), NetError> {
        for reply in self.call_all(&Message::ResetStats)? {
            if reply != Message::ResetStatsOk {
                return Err(NetError::Unexpected { opcode: reply.opcode() });
            }
        }
        Ok(())
    }

    /// Ask every daemon to exit.
    pub fn shutdown_all(&mut self) -> Result<(), NetError> {
        for reply in self.call_all(&Message::Shutdown)? {
            if reply != Message::ShutdownOk {
                return Err(NetError::Unexpected { opcode: reply.opcode() });
            }
        }
        Ok(())
    }
}

/// Which of the paper's three evaluation schemes to run over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetScheme {
    /// Traditional storage: gather to the client, compute there,
    /// scatter the output back.
    Ts,
    /// Naive active storage: offload unconditionally on the current
    /// layout.
    Nas,
    /// Dynamic active storage: decide, optionally redistribute, then
    /// offload — or fall back to TS on rejection.
    Das,
}

impl NetScheme {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            NetScheme::Ts => "TS",
            NetScheme::Nas => "NAS",
            NetScheme::Das => "DAS",
        }
    }
}

/// What a networked scheme run did and moved.
#[derive(Debug, Clone)]
pub struct NetRunReport {
    /// The scheme.
    pub scheme: NetScheme,
    /// Kernel name.
    pub kernel: String,
    /// Whether the work ran on the storage servers.
    pub offloaded: bool,
    /// The input file's layout when execution ran.
    pub layout: LayoutPolicy,
    /// Raw output bytes (row-major little-endian `f32`).
    pub output: Vec<u8>,
    /// Bit-exact fingerprint of the output raster.
    pub output_fingerprint: u64,
    /// Measured client↔server wire bytes (sum over servers, both
    /// directions).
    pub client_bytes: u64,
    /// Measured server↔server wire bytes (sum of per-server sends, so
    /// each transfer counts once).
    pub server_bytes: u64,
    /// Bytes moved by redistribution (DAS only; included in
    /// `server_bytes`).
    pub redistribution_bytes: u64,
    /// Per-server execution summaries (empty for TS).
    pub exec: Vec<ExecSummary>,
}

/// Run one scheme end-to-end over the wire: the input file (already
/// ingested under round-robin) is processed by `kernel_name`, the
/// output lands in a new file `out_name`, and traffic counters are
/// reset before and read after, so the report's byte counts cover
/// exactly this run.
pub fn run_net_scheme(
    cluster: &mut DasCluster,
    scheme: NetScheme,
    file: u32,
    out_name: &str,
    kernel_name: &str,
    img_width: u64,
) -> Result<NetRunReport, NetError> {
    let dist = cluster.distribution(file)?;
    cluster.reset_stats()?;

    let mut redistribution_bytes = 0;
    let mut offloaded = false;
    let mut exec = Vec::new();

    match scheme {
        NetScheme::Ts => {
            run_normal_io(cluster, file, out_name, kernel_name, img_width, &dist)?;
        }
        NetScheme::Nas => {
            let out_file =
                cluster.create_file(out_name, dist.file_len, dist.strip_size as u32, dist.policy)?;
            match cluster.execute(file, out_file, kernel_name, img_width, false, true)? {
                Ok(summaries) => {
                    offloaded = true;
                    exec = summaries;
                }
                Err(reason) => {
                    return Err(NetError::Protocol(format!("forced offload rejected: {reason}")))
                }
            }
        }
        NetScheme::Das => {
            // Client half of Fig. 3: fetch the distribution, predict,
            // and reconfigure the layout when a successive operation
            // justifies it.
            let as_client = ActiveStorageClient::with_builtin_features();
            let opts = RequestOptions { img_width, successive: true, ..Default::default() };
            let decision = as_client
                .decide_from_distribution(dist, kernel_name, &opts)
                .map_err(|e| NetError::Protocol(e.to_string()))?;
            match decision {
                Decision::Offload { replan, .. } => {
                    if let Some(plan) = replan {
                        redistribution_bytes = cluster.redistribute(file, plan.policy)?;
                    }
                    let dist = cluster.distribution(file)?;
                    let out_file = cluster.create_file(
                        out_name,
                        dist.file_len,
                        dist.strip_size as u32,
                        dist.policy,
                    )?;
                    match cluster.execute(file, out_file, kernel_name, img_width, true, false)? {
                        Ok(summaries) => {
                            offloaded = true;
                            exec = summaries;
                        }
                        Err(_) => {
                            // Server-side double-check disagreed; fall
                            // back to normal I/O (output file already
                            // registered, so reuse it).
                            run_ts_into(cluster, file, out_file, kernel_name, img_width)?;
                        }
                    }
                }
                Decision::Reject { .. } => {
                    run_normal_io(cluster, file, out_name, kernel_name, img_width, &dist)?;
                }
            }
        }
    }

    // Snapshot the counters before the verification read-back below,
    // which is not part of any scheme's traffic.
    let stats = cluster.stats()?;
    let client_bytes: u64 = stats.iter().map(|s| s.client_in + s.client_out).sum();
    let server_bytes: u64 = stats.iter().map(|s| s.server_out).sum();

    let (out_id, out_dist) = cluster.lookup(out_name)?;
    let output = cluster.read_file(out_id)?;
    let height = out_dist.file_len / (img_width * 4);
    let output_fingerprint = Raster::from_bytes(img_width, height, &output).fingerprint();
    let layout = cluster.distribution(file)?.policy;

    Ok(NetRunReport {
        scheme,
        kernel: kernel_name.to_string(),
        offloaded,
        layout,
        output,
        output_fingerprint,
        client_bytes,
        server_bytes,
        redistribution_bytes,
        exec,
    })
}

/// The TS path: gather the input, apply the kernel client-side,
/// register the output file, scatter it back.
fn run_normal_io(
    cluster: &mut DasCluster,
    file: u32,
    out_name: &str,
    kernel_name: &str,
    img_width: u64,
    dist: &DistributionInfo,
) -> Result<(), NetError> {
    let out_file =
        cluster.create_file(out_name, dist.file_len, dist.strip_size as u32, dist.policy)?;
    run_ts_into(cluster, file, out_file, kernel_name, img_width)
}

fn run_ts_into(
    cluster: &mut DasCluster,
    file: u32,
    out_file: u32,
    kernel_name: &str,
    img_width: u64,
) -> Result<(), NetError> {
    let kernel = kernel_by_name(kernel_name)
        .ok_or_else(|| NetError::Protocol(format!("no kernel {kernel_name:?}")))?;
    let input = cluster.read_file(file)?;
    let height = input.len() as u64 / (img_width * 4);
    let raster = Raster::from_bytes(img_width, height, &input);
    let output = kernel.apply(&raster);
    cluster.put_file(out_file, &output.to_bytes())
}
